//! Elastic scheduling walkthrough: the paper's §5 worked examples driven
//! through the real allocator, and one live scheduling epoch.
//!
//! ```text
//! cargo run --release --example elastic_scheduling
//! ```

use lyra::core::job::ModelFamily;
use lyra::core::policies::{JobScheduler, LyraScheduler};
use lyra::core::snapshot::{PendingJobView, PoolKind, ServerView, Snapshot};
use lyra::core::{
    solve_mckp, two_phase_allocate, AllocationConfig, GpuType, JobSpec, McKnapsackGroup,
    McKnapsackItem,
};
use lyra::elastic::family_curve;

fn main() {
    // ---- Table 2: two elastic jobs share 8 workers. ----
    let a = JobSpec::elastic(0, 0.0, 2, 6, 1, 50.0);
    let b = JobSpec::elastic(1, 0.0, 2, 6, 1, 20.0);
    println!("Table 2's jobs: A [2,6] min-rt 50s, B [2,6] min-rt 20s, 8 workers total");
    for (wa, wb) in [(6u32, 2u32), (2, 6), (4, 4)] {
        println!(
            "  A={wa} B={wb}: JCT_A {:.1}s JCT_B {:.1}s",
            a.running_time(wa),
            b.running_time(wb)
        );
    }

    // ---- Table 4 / Figure 6: the SJF counterexample as an MCKP. ----
    let a4 = JobSpec::elastic(0, 0.0, 2, 3, 2, 100.0);
    let b4 = JobSpec::elastic(1, 0.0, 2, 6, 1, 20.0);
    let group = |spec: &JobSpec| McKnapsackGroup {
        key: spec.id.0,
        items: (1..=spec.w_max() - spec.w_min())
            .map(|k| McKnapsackItem {
                weight: k * spec.gpus_per_worker,
                value: spec.base_running_time() - spec.running_time(spec.w_min() + k),
            })
            .collect(),
    };
    let solution = solve_mckp(&[group(&a4), group(&b4)], 2);
    println!(
        "\nFigure 6: with 2 leftover GPUs the knapsack picks total JCT reduction {:.0}s \
         (favouring the long job A, beating shortest-job-first)",
        solution.total_value
    );

    // ---- The full two-phase allocator on the same instance. ----
    let snapshot = Snapshot {
        time_s: 0.0,
        servers: vec![ServerView::idle(0, PoolKind::Training, GpuType::V100, 8)],
        pending: vec![PendingJobView::fresh(a4), PendingJobView::fresh(b4)],
        running: vec![],
    };
    let outcome = two_phase_allocate(&snapshot, AllocationConfig::default());
    println!("two-phase allocation: launches {:?}", outcome.launches);

    // ---- A realistic epoch: empirical ResNet/BERT scaling curves. ----
    let resnet = JobSpec::elastic(10, 0.0, 2, 8, 2, 3600.0)
        .with_model(ModelFamily::ResNet50)
        .with_curve(family_curve(ModelFamily::ResNet50, 8));
    let bert = JobSpec::elastic(11, 0.0, 2, 8, 2, 1800.0)
        .with_model(ModelFamily::Bert)
        .with_curve(family_curve(ModelFamily::Bert, 8));
    let small = JobSpec::inelastic(12, 0.0, 4, 1, 600.0);
    let servers: Vec<ServerView> = (0..4)
        .map(|i| ServerView::idle(i, PoolKind::Training, GpuType::V100, 8))
        .collect();
    let snapshot = Snapshot {
        time_s: 0.0,
        servers,
        pending: vec![
            PendingJobView::fresh(resnet),
            PendingJobView::fresh(bert),
            PendingJobView::fresh(small),
        ],
        running: vec![],
    };
    let mut scheduler = LyraScheduler::default();
    let actions = scheduler.schedule(&snapshot);
    println!("\none Lyra epoch over a 32-GPU cluster:");
    for action in &actions {
        println!("  {action:?}");
    }
    println!(
        "(bases gang-scheduled first — phase 1 — then leftover GPUs split \
         by marginal JCT reduction — phase 2)"
    );
}
