//! Ablation walkthrough: sweep registered policies across the scenario
//! zoo, then extend the registry with a custom policy.
//!
//! ```text
//! cargo run --release --example ablation
//! ```
//!
//! The CLI equivalent of the sweep below is `lyra-bench ablate`
//! (`--smoke` for the CI-sized subset, `--policy <name>` for one
//! column, `--seed <s>` to move the traces).

use lyra::core::policies::{LyraConfig, LyraScheduler, PolicyRegistry};
use lyra::core::allocation::Phase1Order;
use lyra::core::{AllocationConfig, PlacementConfig};
use lyra::sim::{run_scenario, zoo};

fn main() {
    // Every built-in policy, under the names scenario configs use.
    let registry = PolicyRegistry::builtin();
    println!("registered policies:");
    for entry in registry.entries() {
        println!("  {:22} {}", entry.name, entry.summary);
    }

    // Sweep three representative policies across every zoo cell. Each
    // cell pins its own traces and transforms (heterogeneous speed
    // factors, malleable resize costs, SLO deadlines), so one sweep
    // covers every scheduling regime the reproduction models.
    println!();
    println!(
        "{:15} {:10} {:>10} {:>10} {:>14}",
        "policy", "scenario", "completed", "JCT mean", "deadline miss"
    );
    for policy in ["fifo-backfill", "gandiva", "lyra"] {
        for cell in zoo::cases() {
            let (mut scenario, jobs, inference) = cell.build();
            scenario.policy = policy.to_string();
            scenario.name = format!("ablation-{policy}-{}", cell.name);
            let r = run_scenario(&scenario, &jobs, &inference).expect("cell runs");
            println!(
                "{:15} {:10} {:>10} {:>10.1} {:>11}/{}",
                policy,
                cell.name,
                r.completed,
                r.jct.mean,
                r.deadlines.missed,
                r.deadlines.with_deadline
            );
        }
    }

    // The registry is open: a custom entry slots a new trait-object
    // scheduler in next to the built-ins (registering an existing name
    // replaces it in place, keeping the sweep order stable). Here a
    // least-attained-service Lyra variant joins under its own name.
    let mut custom = PolicyRegistry::builtin();
    custom.register_fn(
        "my-las",
        "Lyra with LAS phase-1 ordering (custom entry)",
        false,
        |_| {
            Box::new(LyraScheduler::new(LyraConfig {
                allocation: AllocationConfig {
                    phase1: Phase1Order::Las,
                    ..AllocationConfig::default()
                },
                placement: PlacementConfig::default(),
            }))
        },
    );
    let entry = custom.get("my-las").expect("just registered");
    println!();
    println!(
        "custom registry: {} policies, my-las resolves to {:?}",
        custom.names().len(),
        entry.name
    );
    assert!(custom.get_checked("no-such").is_err(), "typos stay loud");
}
