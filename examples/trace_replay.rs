//! Trace replay: export a generated trace to CSV, read it back, and
//! replay it through the simulator — the workflow the paper uses with its
//! production traces.
//!
//! ```text
//! cargo run --release --example trace_replay [path/to/trace.csv]
//! ```
//!
//! With a path argument the example replays that CSV instead of
//! generating one (useful for replaying your own traces through Lyra).

use lyra::sim::{run_scenario, Scenario};
use lyra::trace::io::{jobs_from_csv, jobs_to_csv};
use lyra::trace::{InferenceTrace, InferenceTraceConfig, JobTrace, TraceConfig};
use lyra_cluster::state::ClusterConfig;

fn main() {
    let config = TraceConfig {
        days: 1,
        training_gpus: 16 * 8,
        seed: 7,
        ..TraceConfig::default()
    };

    let trace = match std::env::args().nth(1) {
        Some(path) => {
            let csv = std::fs::read_to_string(&path).expect("read trace CSV");
            let trace = jobs_from_csv(&csv, config).expect("parse trace CSV");
            println!("replaying {} jobs from {path}", trace.jobs.len());
            trace
        }
        None => {
            let trace = JobTrace::generate(config);
            let csv = jobs_to_csv(&trace);
            let path = std::env::temp_dir().join("lyra-quickstart-trace.csv");
            std::fs::write(&path, &csv).expect("write trace CSV");
            println!(
                "generated {} jobs, exported to {} ({} bytes)",
                trace.jobs.len(),
                path.display(),
                csv.len()
            );
            // Round-trip through the codec to prove the export is
            // faithful.
            let parsed = jobs_from_csv(&csv, config).expect("parse own export");
            assert_eq!(parsed.jobs, trace.jobs, "CSV round-trip is lossless");
            parsed
        }
    };

    let stats = trace.stats();
    println!(
        "trace stats: offered load {:.2}, median runtime {:.0}s, elastic share {:.0}%",
        stats.offered_load,
        stats.median_running_time_s,
        stats.elastic_resource_share * 100.0
    );

    let inference = InferenceTrace::generate(InferenceTraceConfig {
        days: trace.config.days + 2,
        total_gpus: 18 * 8,
        seed: 8,
        ..InferenceTraceConfig::default()
    });
    let mut scenario = Scenario::basic();
    scenario.cluster = ClusterConfig {
        training_servers: 16,
        inference_servers: 18,
        gpus_per_server: 8,
        speed: lyra::core::gpu::SpeedFactors::default(),
    };
    let report = run_scenario(&scenario, &trace, &inference).expect("replay runs");
    println!(
        "replay complete: {}/{} jobs finished, mean JCT {:.0}s, mean queuing {:.0}s, \
         {} loans / {} reclaims / {} scaling ops",
        report.completed,
        report.submitted,
        report.jct.mean,
        report.queuing.mean,
        report.loan_ops,
        report.reclaim_ops,
        report.scaling_ops,
    );
}
