//! Quickstart: generate a small workload, run Lyra against the FIFO
//! baseline, and print the headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lyra::sim::{run_scenario, Scenario};
use lyra::trace::{InferenceTrace, InferenceTraceConfig, JobTrace, TraceConfig};
use lyra_cluster::state::ClusterConfig;

fn main() {
    // A two-day workload for a 32-server training cluster, calibrated to
    // the paper's trace statistics (§7.1): heavy-tailed runtimes, 21 %
    // fungible jobs, ~5 % large elastic jobs.
    let jobs = JobTrace::generate(TraceConfig {
        days: 2,
        training_gpus: 32 * 8,
        seed: 42,
        ..TraceConfig::default()
    });
    let stats = jobs.stats();
    println!(
        "workload: {} jobs, {:.0}% fungible, {:.0}% elastic (holding {:.0}% of load)",
        stats.num_jobs,
        stats.frac_fungible * 100.0,
        stats.frac_elastic * 100.0,
        stats.elastic_resource_share * 100.0,
    );

    // The neighbouring inference cluster's diurnal utilisation (Figure 1).
    let inference = InferenceTrace::generate(InferenceTraceConfig {
        days: 4,
        total_gpus: 36 * 8,
        seed: 43,
        ..InferenceTraceConfig::default()
    });
    println!(
        "inference cluster: mean utilisation {:.0}%, trough/peak {:.0}%/{:.0}%",
        inference.mean() * 100.0,
        inference.trough_peak().0 * 100.0,
        inference.trough_peak().1 * 100.0,
    );

    let cluster = ClusterConfig {
        training_servers: 32,
        inference_servers: 36,
        gpus_per_server: 8,
        speed: lyra::core::gpu::SpeedFactors::default(),
    };

    // Baseline: FIFO, no loaning, no scaling. Lyra: capacity loaning +
    // elastic scaling with the two-phase scheduler.
    let mut baseline = Scenario::baseline();
    baseline.cluster = cluster;
    let mut lyra = Scenario::basic();
    lyra.cluster = cluster;

    let rb = run_scenario(&baseline, &jobs, &inference).expect("baseline runs");
    let rl = run_scenario(&lyra, &jobs, &inference).expect("lyra runs");

    println!(
        "\n{:<12} {:>12} {:>12} {:>10} {:>10}",
        "scheme", "queuing(s)", "JCT(s)", "usage", "preempt"
    );
    for r in [&rb, &rl] {
        println!(
            "{:<12} {:>12.0} {:>12.0} {:>9.0}% {:>9.2}%",
            r.name,
            r.queuing.mean,
            r.jct.mean,
            r.overall_usage * 100.0,
            r.preemption_ratio * 100.0,
        );
    }
    println!(
        "\nLyra reduces mean queuing {:.2}x and mean JCT {:.2}x \
         (the paper reports 1.53x and 1.48x at full scale).",
        rb.queuing.mean / rl.queuing.mean.max(1e-9),
        rb.jct.mean / rl.jct.mean.max(1e-9),
    );
}
