//! Capacity loaning walkthrough: drive the orchestrator by hand through a
//! loan / fill / reclaim cycle and watch §4's heuristic pick servers.
//!
//! ```text
//! cargo run --release --example capacity_loaning
//! ```

use lyra::cluster::orchestrator::{Orchestrator, OrchestratorDecision, ReclaimPolicy};
use lyra::cluster::state::{ClusterConfig, ClusterState};
use lyra::core::reclaim::{reclaim_random, reclaim_scf, reclaim_servers, CostModel};
use lyra::core::snapshot::ServerGroup;
use lyra::core::JobId;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A toy cluster: 4 training + 6 inference servers of 8 GPUs.
    let mut state = ClusterState::new(ClusterConfig {
        training_servers: 4,
        inference_servers: 6,
        gpus_per_server: 8,
        speed: lyra::core::gpu::SpeedFactors::default(),
    });
    let mut orchestrator = Orchestrator::new(ReclaimPolicy::Lyra, 7);

    // Inference traffic is low: 5 servers become available; take them.
    let decision = orchestrator.execute_loan(&mut state, 5).expect("loan");
    let loaned = match decision {
        OrchestratorDecision::Loaned(ids) => ids,
        other => panic!("unexpected decision {other:?}"),
    };
    println!("loaned servers: {loaned:?}");

    // Place training jobs on the loaned servers the way Lyra's placement
    // would: inelastic bases on one group, elastic flexible workers on a
    // separate group (§5.3).
    // - job 0 spans loaned servers 0 and 1 (base demand, 4 GPUs each);
    // - job 1 fills loaned server 2 alone;
    // - job 2's *flexible* workers sit on loaned server 3.
    state
        .allocate(
            JobId(0),
            &[(loaned[0], 1), (loaned[1], 1)],
            4,
            ServerGroup::Base,
        )
        .expect("job 0 placed");
    state
        .allocate(JobId(1), &[(loaned[2], 2)], 4, ServerGroup::Base)
        .expect("job 1 placed");
    state
        .allocate(JobId(2), &[(loaned[3], 2)], 4, ServerGroup::Flexible)
        .expect("job 2 flexible workers placed");
    // Loaned server 4 stays idle.

    // Peek at the §4 cost table for the occupied servers.
    let request = state.reclaim_request(3);
    println!("\npreemption-cost view of the on-loan servers:");
    for s in &request.servers {
        let jobs: Vec<String> = s.jobs.iter().map(|(j, g)| format!("{j}×{g}gpu")).collect();
        println!("  {}: [{}]", s.id, jobs.join(", "));
    }

    // Inference traffic rises: 3 servers must come back. Watch the
    // two-phase reclaim: idle first, flexible group next (scale-in, no
    // preemption), then the cheapest preemption.
    let decision = orchestrator
        .execute_reclaim(&mut state, 3)
        .expect("reclaim");
    match &decision {
        OrchestratorDecision::Reclaimed {
            flex_releases,
            returned_flex,
            returned_idle,
            outcome,
        } => {
            println!("\nreclaiming 3 servers:");
            println!("  idle returned:       {returned_idle:?}");
            println!("  flex-group returned: {returned_flex:?} (scale-ins: {flex_releases:?})");
            println!("  preempted jobs:      {:?}", outcome.preempted);
            println!("  preemption returns:  {:?}", outcome.returned);
        }
        other => panic!("unexpected decision {other:?}"),
    }
    println!("servers still on loan: {:?}", state.loaned_ids());

    // Compare the three reclaiming policies on the same standalone
    // request (fresh copies, 2 servers of demand against jobs 0 and 1).
    println!("\npolicy comparison on the remaining instance:");
    let request = state.reclaim_request(2);
    let lyra = reclaim_servers(&request, CostModel::ServerFraction);
    let scf = reclaim_scf(&request);
    let mut rng = StdRng::seed_from_u64(1);
    let random = reclaim_random(&request, &mut rng);
    for (name, out) in [("lyra", &lyra), ("scf", &scf), ("random", &random)] {
        println!(
            "  {name:<7} preempts {} job(s), returns {:?}, collateral {} GPUs",
            out.preempted.len(),
            out.returned,
            out.collateral_gpus
        );
    }
}
