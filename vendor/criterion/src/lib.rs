//! Minimal stand-in for `criterion`: wall-clock timing with mean /
//! min / max per iteration, no statistics, no HTML reports. Keeps the
//! `criterion_group!`/`criterion_main!` harness shape so `cargo bench`
//! works unchanged.
//!
//! When the binary is invoked with `--test` (as `cargo test` does for
//! `harness = false` targets) every benchmark body runs exactly once,
//! untimed, so test runs stay fast while still exercising the code.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark driver; collects settings and runs registered functions.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets the target number of timed samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; CLI flags other than `--test`
    /// are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self);
        f(&mut bencher);
        bencher.report(id);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// No-op; kept for API compatibility.
    pub fn final_summary(&self) {}
}

/// A named set of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            repr: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Times one routine; handed to benchmark bodies.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(config: &Criterion) -> Self {
        Bencher {
            sample_size: config.sample_size,
            warm_up_time: config.warm_up_time,
            measurement_time: config.measurement_time,
            test_mode: config.test_mode,
            samples: Vec::new(),
        }
    }

    /// Calls `routine` repeatedly and records per-call wall time.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        self.samples.clear();
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Measurement: up to `sample_size` samples within the budget
        // (always at least one).
        let bench_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
            if bench_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.test_mode {
            println!("test {id} ... ok (ran once, untimed)");
            return;
        }
        if self.samples.is_empty() {
            println!("{id:<48} (no samples — did the body call iter()?)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        let max = self.samples.iter().max().copied().unwrap_or_default();
        println!(
            "{id:<48} mean {:>12} min {:>12} max {:>12} ({} samples)",
            fmt_duration(mean),
            fmt_duration(min),
            fmt_duration(max),
            self.samples.len(),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions. Both the `name = …; config
/// = …; targets = …` form and the positional form are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export matching the real crate's `criterion::black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("lyra", 8).to_string(), "lyra/8");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }

    #[test]
    fn bencher_runs_routine() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut count = 0u64;
        c.bench_function("counting", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }
}
