//! Minimal, deterministic stand-in for `proptest`.
//!
//! Provides the macro surface (`proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`) and the
//! strategy combinators this workspace uses: numeric ranges, tuples,
//! `prop::collection::vec`, `prop::bool::ANY`, `any::<T>()` and
//! `prop_map`. Unlike the real crate there is no shrinking and no
//! persisted failure seeds: every case's RNG is derived from the case
//! index, so runs are fully reproducible without state files.

#![warn(missing_docs)]

use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};
use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

/// The RNG handed to strategies (the vendored `StdRng`).
pub type TestRng = StdRng;

/// Builds the deterministic RNG for one test case.
pub fn rng_for_case(case: u32) -> TestRng {
    StdRng::seed_from_u64(0x7072_6f70_7465_7374 ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// Assertion failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejection: the inputs don't apply; skipped.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T> Strategy for Range<T>
where
    Range<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

/// Types with a canonical full-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

/// See [`any`].
#[derive(Debug)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(PhantomData)
    }
}

/// Strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use core::ops::Range;
    use rand::Rng;

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// The type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Fair coin flip.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// The crate itself, for `prop::collection::vec` etc.
    pub use crate as prop;
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)+),
            __l,
            __r
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

/// Declares property tests. Mirrors the real crate's syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u32..10, flag in prop::bool::ANY) {
///         prop_assert!(x < 10 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr); $($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __strategy = ($($strategy,)+);
                let mut __rejected: u32 = 0;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::rng_for_case(__case);
                    let ($($arg,)+) = $crate::Strategy::generate(&__strategy, &mut __rng);
                    let __result: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match __result {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            __rejected += 1;
                        }
                        ::core::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest `{}` failed at case {}: {}",
                                stringify!($name),
                                __case,
                                __msg
                            );
                        }
                    }
                }
                if __rejected > 0 && __rejected == __config.cases {
                    panic!(
                        "proptest `{}`: every case was rejected by prop_assume!",
                        stringify!($name)
                    );
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in 1u32..=8, y in 0usize..5, f in 0.25f64..0.75) {
            prop_assert!((1..=8).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.25..0.75).contains(&f), "f={f}");
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec((0u32..10, prop::bool::ANY), 0..6).prop_map(|pairs| {
                pairs.into_iter().map(|(n, b)| if b { n + 100 } else { n }).collect::<Vec<_>>()
            }),
            seed in any::<u64>(),
        ) {
            let _ = seed;
            prop_assert!(v.len() < 6);
            for n in &v {
                prop_assert!(*n < 10 || (100..110).contains(n));
            }
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            if x == 4 {
                return Ok(());
            }
            prop_assert_ne!(x, 5);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::rng_for_case(3);
        let mut b = crate::rng_for_case(3);
        let s = (0u64..100, 0.0f64..1.0);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
