//! Minimal, dependency-free stand-in for `serde`.
//!
//! Instead of the real crate's visitor-based (de)serializer pair, this
//! facade converts every value through one in-memory [`Value`] tree:
//! [`Serialize`] renders a value *to* the tree, [`Deserialize`] rebuilds
//! a value *from* it. `serde_json` then prints/parses that tree. The
//! derive macros are re-exported from `serde_derive` and generate code
//! against exactly these two traits.
//!
//! Representation choices (shared with the derives and `serde_json`):
//! - structs → objects keyed by field name
//! - tuple structs with one field → transparent; more fields → arrays
//! - unit enum variants → a string of the variant name; data-carrying
//!   variants → a single-key object `{ "Variant": payload }`
//! - maps/sets → sorted arrays (of `[key, value]` pairs for maps), so
//!   output is deterministic even for hash containers

#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasher, Hash};

pub use serde_derive::{Deserialize, Serialize};

/// The in-memory data tree every value serializes through. Mirrors the
/// JSON data model with integers kept exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (negative or within `i64`).
    Int(i64),
    /// Unsigned integer (used for values above `i64::MAX` and all
    /// unsigned sources).
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// String-keyed object with preserved field order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a field of an object by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Short human-readable kind label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Total order used to sort map entries for deterministic output.
    fn canonical_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::UInt(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
                Value::Array(_) => 4,
                Value::Object(_) => 5,
            }
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) if rank(a) == 2 && rank(b) == 2 => {
                let fa = a.as_f64_lossy();
                let fb = b.as_f64_lossy();
                fa.partial_cmp(&fb).unwrap_or(Ordering::Equal)
            }
            (Value::Array(a), Value::Array(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let c = x.canonical_cmp(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    fn as_f64_lossy(&self) -> f64 {
        match self {
            Value::Int(i) => *i as f64,
            Value::UInt(u) => *u as f64,
            Value::Float(f) => *f,
            _ => f64::NAN,
        }
    }
}

/// Deserialization error: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an "expected X, found Y" error for `value`.
    pub fn expected(what: &str, value: &Value) -> Self {
        DeError(format!("expected {what}, found {}", value.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion of a value into the [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruction of a value from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from `value`.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Helper used by derived code: reads struct field `name` out of an
/// object. A missing field is treated as `null` (tolerates added
/// optional fields when reading older archives).
pub fn field<T: Deserialize>(value: &Value, name: &str) -> Result<T, DeError> {
    let Value::Object(_) = value else {
        return Err(DeError::expected("object", value));
    };
    match value.get(name) {
        Some(v) => T::from_value(v).map_err(|e| DeError(format!("field `{name}`: {e}"))),
        None => {
            T::from_value(&Value::Null).map_err(|_| DeError(format!("missing field `{name}`")))
        }
    }
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: u64 = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let wide: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| DeError(format!("{u} out of range for i64")))?,
                    Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => *f as i64,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(intern(s)),
            other => Err(DeError::expected("string", other)),
        }
    }
}

/// Interns a string, leaking each *distinct* value once. This is how
/// the facade supports `&'static str` fields (the real crate borrows
/// from the input instead); label-like fields only, by design.
fn intern(s: &str) -> &'static str {
    use std::sync::{Mutex, OnceLock};
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(HashSet::new()));
    let mut guard = pool.lock().expect("intern pool poisoned");
    if let Some(&found) = guard.get(s) {
        return found;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    guard.insert(leaked);
    leaked
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string_lossy().into_owned())
    }
}

impl Deserialize for std::path::PathBuf {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(std::path::PathBuf::from(s)),
            other => Err(DeError::expected("path string", other)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", other)),
        }
    }
}

// ---------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let items = value
                    .as_array()
                    .ok_or_else(|| DeError::expected("tuple array", value))?;
                if items.len() != LEN {
                    return Err(DeError(format!(
                        "expected array of {LEN}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut pairs: Vec<Value> = entries
        .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
        .collect();
    pairs.sort_by(|a, b| a.canonical_cmp(b));
    Value::Array(pairs)
}

fn map_from_value<K: Deserialize, V: Deserialize>(
    value: &Value,
) -> Result<Vec<(K, V)>, DeError> {
    let items = value
        .as_array()
        .ok_or_else(|| DeError::expected("map as array of pairs", value))?;
    items
        .iter()
        .map(<(K, V)>::from_value)
        .collect()
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(map_from_value(value)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(map_from_value(value)?.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(value).map(|v| v.into_iter().collect())
    }
}

impl<T: Serialize, S: BuildHasher> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by(|a, b| a.canonical_cmp(b));
        Value::Array(items)
    }
}

impl<T: Deserialize + Eq + Hash, S: BuildHasher + Default> Deserialize for HashSet<T, S> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(value).map(|v| v.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn numbers_cross_convert() {
        // A float-encoded integer reads back as an integer type.
        assert_eq!(u32::from_value(&Value::Float(5.0)), Ok(5));
        assert_eq!(f64::from_value(&Value::Int(3)), Ok(3.0));
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(Option::<f64>::from_value(&Value::Null), Ok(None));
        let v = Some(2.0f64).to_value();
        assert_eq!(Option::<f64>::from_value(&v), Ok(Some(2.0)));
    }

    #[test]
    fn maps_round_trip_sorted() {
        let mut m = HashMap::new();
        m.insert(3u32, "c".to_string());
        m.insert(1u32, "a".to_string());
        let v = m.to_value();
        // Deterministic order regardless of hash order.
        let arr = v.as_array().unwrap();
        assert_eq!(arr[0].as_array().unwrap()[0], Value::UInt(1));
        let back: HashMap<u32, String> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn tuples_and_vecs_round_trip() {
        let x = vec![(1u32, 2.5f64), (3, 4.5)];
        let back: Vec<(u32, f64)> = Deserialize::from_value(&x.to_value()).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn missing_field_reads_as_null() {
        let obj = Value::Object(vec![("a".into(), Value::Int(1))]);
        let got: Option<f64> = field(&obj, "absent").unwrap();
        assert_eq!(got, None);
        assert!(field::<u32>(&obj, "absent").is_err());
    }
}
