//! Minimal JSON printer/parser over the vendored `serde` [`Value`]
//! tree. Supports exactly what the workspace needs: `to_string`,
//! `to_string_pretty` and `from_str`.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value).map_err(|e| Error(e.to_string()))
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{}` on f64 always round-trips and never produces an
                // exponent-only form JSON can't parse.
                out.push_str(&f.to_string());
            } else {
                // JSON has no NaN/Infinity; `null` reads back as NaN.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid utf-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let v: f64 = from_str(&to_string(&1.5f64).unwrap()).unwrap();
        assert_eq!(v, 1.5);
        let v: i64 = from_str("-12").unwrap();
        assert_eq!(v, -12);
        let v: bool = from_str("true").unwrap();
        assert!(v);
        let v: String = from_str("\"a\\nb\\u0041\"").unwrap();
        assert_eq!(v, "a\nbA");
    }

    #[test]
    fn collections_round_trip() {
        let data = vec![("x".to_string(), vec![1.0f64, 2.0]), ("y".to_string(), vec![])];
        let json = to_string_pretty(&data).unwrap();
        let back: Vec<(String, Vec<f64>)> = from_str(&json).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn non_finite_floats_become_null_and_read_as_nan() {
        let json = to_string(&f64::NAN).unwrap();
        assert_eq!(json, "null");
        let back: f64 = from_str(&json).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("{").is_err());
        assert!(from_str::<f64>("1 2").is_err());
        assert!(from_str::<Vec<f64>>("[1,]").is_err());
    }

    #[test]
    fn pretty_output_is_indented() {
        let json = to_string_pretty(&vec![1u32]).unwrap();
        assert_eq!(json, "[\n  1\n]");
    }
}
