//! Minimal, deterministic stand-in for the `rand` crate.
//!
//! Implements exactly the API surface this workspace uses (see
//! `vendor/README.md`): a seedable [`rngs::StdRng`], the [`Rng`]
//! extension trait with `gen`/`gen_range`/`gen_bool`, and
//! [`seq::SliceRandom`] for Fisher–Yates shuffles. Streams are stable
//! across runs and platforms but are *not* bit-compatible with the real
//! crate.

#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator seeded from a single `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their full domain via [`Rng::gen`].
pub trait Rand: Sized {
    /// Draws one uniformly random value.
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Rand for f64 {
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Rand for f32 {
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Rand for bool {
    fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_rand_int {
    ($($t:ty),*) => {$(
        impl Rand for $t {
            fn rand<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_rand_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a uniform distribution over arbitrary sub-ranges.
///
/// One generic [`SampleRange`] impl per range shape ties the output
/// type to the range's element type, which is what lets inference
/// resolve untyped literals like `gen_range(0..3)` from how the result
/// is used (exactly like the real crate).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[start, end)`; panics if empty.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Uniform draw from `[start, end]`; panics if empty.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                let draw = if span == 0 {
                    // Full u64 domain.
                    rng.next_u64()
                } else {
                    rng.next_u64() % span
                };
                start.wrapping_add(draw as $t)
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "cannot sample empty range");
                let span = (end as i64).wrapping_sub(start as i64) as u64;
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start <= end, "cannot sample empty range");
                let span = ((end as i64).wrapping_sub(start as i64) as u64).wrapping_add(1);
                let draw = if span == 0 {
                    rng.next_u64()
                } else {
                    rng.next_u64() % span
                };
                start.wrapping_add(draw as $t)
            }
        }
    )*};
}
impl_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "cannot sample empty range");
                let u = <$t as Rand>::rand(rng);
                start + u * (end - start)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as Rand>::rand(rng);
                start + u * (end - start)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges that can be sampled to produce a `T` (the `gen_range`
/// argument).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// Panics when the range is empty, matching the real crate.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_inclusive(rng, start, end)
    }
}

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly random value over `T`'s full domain (floats:
    /// `[0, 1)`).
    fn gen<T: Rand>(&mut self) -> T
    where
        Self: Sized,
    {
        T::rand(self)
    }

    /// Draws uniformly from `range`; panics if the range is empty.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0, 1]");
        f64::rand(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    /// The workspace's standard seeded generator: SplitMix64. Fast,
    /// well-distributed, and trivially seedable — ideal for
    /// reproducible simulations (not cryptographic).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl StdRng {
        /// Raw generator state for checkpointing. Feeding the returned
        /// value back through [`crate::SeedableRng::seed_from_u64`]
        /// resumes the stream exactly where it left off.
        pub fn state(&self) -> u64 {
            self.state
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    //! Sequence helpers.

    use crate::RngCore;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..10);
            assert!((3..10).contains(&x));
            let y: u32 = rng.gen_range(1..=8);
            assert!((1..=8).contains(&y));
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac={frac}");
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(9);
        for _ in 0..5 {
            a.gen::<u64>();
        }
        let mut b = StdRng::seed_from_u64(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
