//! Derive macros for the vendored `serde` stand-in.
//!
//! Parses the derive input directly from the `proc_macro` token stream
//! (no `syn`/`quote`), which is enough because every serialized type in
//! this workspace is a plain non-generic struct or enum. Generated code
//! targets the `Serialize`/`Deserialize` traits of `vendor/serde` and
//! mirrors its representation rules (structs → objects, one-field tuple
//! structs → transparent, enums → variant-name string or single-key
//! object).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

struct Input {
    name: String,
    data: Data,
}

enum Data {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_serialize(&parsed)
        .parse()
        .expect("derived Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("derived Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Strips a raw-identifier prefix for use as the serialized name.
fn plain_name(ident: &proc_macro::Ident) -> String {
    let s = ident.to_string();
    s.strip_prefix("r#").unwrap_or(&s).to_string()
}

/// Consumes leading attributes (`#[...]`, including doc comments) and a
/// visibility qualifier, returning the next meaningful token.
fn skip_attrs_and_vis(iter: &mut Tokens) -> Option<TokenTree> {
    loop {
        match iter.next()? {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute body: `[...]` (or `![...]`, not expected here).
                match iter.next() {
                    Some(TokenTree::Group(_)) => {}
                    Some(TokenTree::Punct(bang)) if bang.as_char() == '!' => {
                        iter.next();
                    }
                    _ => panic!("malformed attribute in derive input"),
                }
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                // Optional restriction: `pub(crate)` etc.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            other => return Some(other),
        }
    }
}

fn parse(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    let keyword = match skip_attrs_and_vis(&mut iter) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("vendored serde derives do not support generic type `{name}`");
        }
    }
    let data = match keyword.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::UnitStruct,
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        kw => panic!("vendored serde derives support structs and enums, not `{kw}`"),
    };
    Input { name, data }
}

/// Field names of a `{ ... }` body, skipping attributes, visibility and
/// the type (tracking `<...>` depth so nested commas don't split
/// fields).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    while let Some(tok) = skip_attrs_and_vis(&mut iter) {
        let TokenTree::Ident(field) = tok else {
            panic!("expected field name, got {tok:?}");
        };
        fields.push(plain_name(&field));
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{field}`, got {other:?}"),
        }
        // Consume the type up to a top-level comma.
        let mut angle_depth = 0i32;
        for tok in iter.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Number of comma-separated fields in a tuple body.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut fields = 0usize;
    let mut saw_tokens = false;
    let mut last_was_comma = false;
    for tok in stream {
        saw_tokens = true;
        last_was_comma = false;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                fields += 1;
                last_was_comma = true;
            }
            _ => {}
        }
    }
    if saw_tokens && !last_was_comma {
        fields += 1;
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    while let Some(tok) = skip_attrs_and_vis(&mut iter) {
        let TokenTree::Ident(vname) = tok else {
            panic!("expected variant name, got {tok:?}");
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_top_level_fields(g.stream());
                iter.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Consume up to the separating comma (covers discriminants,
        // which this workspace doesn't use).
        for tok in iter.by_ref() {
            if let TokenTree::Punct(p) = tok {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push(Variant {
            name: plain_name(&vname),
            kind,
        });
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
        }
        Data::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Data::UnitStruct => "::serde::Value::Null".to_string(),
        Data::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(vec![\
                             (::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![\
                                 (::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![\
                                 (::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Object(vec![{}]))]),",
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(value, \"{f}\")?,"))
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        Data::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))"
        ),
        Data::TupleStruct(n) => {
            let args: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = value.as_array()\
                 .ok_or_else(|| ::serde::DeError::expected(\"array\", value))?;\n\
                 if __items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::DeError(\
                 format!(\"expected array of {n}, found {{}}\", __items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                args.join(", ")
            )
        }
        Data::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Data::Enum(variants) => gen_enum_deserialize(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                vn = v.name
            )
        })
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            match &v.kind {
                VariantKind::Unit => None,
                VariantKind::Tuple(1) => Some(format!(
                    "\"{vn}\" => ::std::result::Result::Ok(\
                     {name}::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                )),
                VariantKind::Tuple(n) => {
                    let args: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    Some(format!(
                        "\"{vn}\" => {{\n\
                         let __items = __inner.as_array()\
                         .ok_or_else(|| ::serde::DeError::expected(\"array\", __inner))?;\n\
                         if __items.len() != {n} {{\n\
                         return ::std::result::Result::Err(::serde::DeError(\
                         format!(\"variant {vn}: expected array of {n}, found {{}}\", \
                         __items.len())));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}::{vn}({}))\n\
                         }}",
                        args.join(", ")
                    ))
                }
                VariantKind::Struct(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::field(__inner, \"{f}\")?,"))
                        .collect();
                    Some(format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                        inits.join(" ")
                    ))
                }
            }
        })
        .collect();

    let mut arms = String::new();
    if !unit_arms.is_empty() {
        arms.push_str(&format!(
            "::serde::Value::Str(__s) => match __s.as_str() {{\n{}\n\
             __other => ::std::result::Result::Err(::serde::DeError(\
             format!(\"unknown variant `{{__other}}` of {name}\"))),\n}},\n",
            unit_arms.join("\n")
        ));
    }
    if !data_arms.is_empty() {
        arms.push_str(&format!(
            "::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
             let (__tag, __inner) = &__pairs[0];\n\
             match __tag.as_str() {{\n{}\n\
             __other => ::std::result::Result::Err(::serde::DeError(\
             format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}\n}},\n",
            data_arms.join("\n")
        ));
    }
    format!(
        "match value {{\n{arms}\
         __other => ::std::result::Result::Err(\
         ::serde::DeError::expected(\"{name} variant\", __other)),\n}}"
    )
}
