//! Durable crash-recovery checkpoints for the engine.
//!
//! A production scheduler must survive its own death: the paper's
//! deployment keeps Lyra's scheduler state durable so a controller
//! restart resumes planning from where it stopped instead of replaying
//! (or losing) a day of cluster history. This module is that layer for
//! the simulator: a [`SimCheckpoint`] bundles the scenario inputs with
//! the complete [`EngineState`] captured at a crash point, and its
//! save/load path is engineered so a restored run is **byte-identical**
//! to an uninterrupted one (event log, attribution table and report —
//! the crash-storm gate in `lyra-oracle` enforces exactly that).
//!
//! On-disk format (two lines, both JSON):
//!
//! ```text
//! {"magic":"lyra-checkpoint","version":1,"checksum":"<fnv1a64 hex>"}
//! {<payload: SimCheckpoint>}
//! ```
//!
//! The checksum covers the payload bytes exactly. Writes are atomic —
//! the file is staged at `<path>.tmp` and renamed into place, so a crash
//! *during checkpointing* leaves either the previous checkpoint or none,
//! never a torn one. Loads refuse anything suspect with a typed
//! [`CheckpointError`]: wrong magic, mismatched version, checksum
//! failure (truncated or bit-flipped payload) — there is no partial
//! restore.

use crate::engine::{EngineState, RunOutcome, SimError, Simulation};
use crate::scenario::{build_simulation, Scenario};
use lyra_trace::{InferenceTrace, JobTrace};
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// Current checkpoint format version; bumped on any change to
/// [`SimCheckpoint`]'s serialized shape. Version 3 added the cluster
/// state's job-footprint index (`occupancy`); version 4 added per-server
/// speed factors, malleable resize costs and job deadlines; version 5
/// added the observer's decision-provenance tracker (and the
/// provenance-bearing event schema: `ReclaimDemand`, `JobPreempt.
/// decision`, `JobScaleOut.{on_loan,servers}`).
pub const CHECKPOINT_VERSION: u32 = 5;

/// File-type tag in the header line.
const MAGIC: &str = "lyra-checkpoint";

/// Why a checkpoint was refused. Every load failure is typed — a
/// corrupt, truncated or incompatible file is never partially applied.
#[derive(Debug)]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The file is not a checkpoint, or its payload does not decode.
    Malformed(String),
    /// The file is a checkpoint of an incompatible format version.
    VersionMismatch {
        /// Version recorded in the file's header.
        found: u32,
        /// Version this build reads/writes ([`CHECKPOINT_VERSION`]).
        expected: u32,
    },
    /// The payload bytes do not hash to the header's checksum
    /// (truncation or corruption after the header was written).
    ChecksumMismatch {
        /// Checksum the header promises.
        expected: String,
        /// Checksum of the payload actually present.
        found: String,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Malformed(msg) => write!(f, "malformed checkpoint: {msg}"),
            CheckpointError::VersionMismatch { found, expected } => write!(
                f,
                "checkpoint version {found} is not the supported version {expected}"
            ),
            CheckpointError::ChecksumMismatch { expected, found } => write!(
                f,
                "checkpoint payload checksum {found} does not match header {expected} \
                 (truncated or corrupted file)"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Header line of the on-disk format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Header {
    magic: String,
    version: u32,
    checksum: String,
}

/// FNV-1a 64-bit hash of the payload bytes (dependency-free, stable
/// across platforms, and plenty to catch truncation and bit rot — this
/// is an integrity check, not an authenticity one).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// A complete, durable snapshot of a simulation run: the scenario inputs
/// (enough to rebuild the non-serialized machinery — policy,
/// orchestrator, inference scheduler, estimator) plus the captured
/// [`EngineState`] (everything that evolved since tick zero).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimCheckpoint {
    /// The scenario the run was built from.
    pub scenario: Scenario,
    /// The job trace driving the run.
    pub jobs: JobTrace,
    /// The inference-utilisation trace driving loans/reclaims.
    pub inference: InferenceTrace,
    /// The captured engine state.
    pub state: EngineState,
}

impl SimCheckpoint {
    /// Bundles a crash-point state with the inputs that built its run.
    pub fn new(
        scenario: Scenario,
        jobs: JobTrace,
        inference: InferenceTrace,
        state: EngineState,
    ) -> Self {
        SimCheckpoint {
            scenario,
            jobs,
            inference,
            state,
        }
    }

    /// Writes the checkpoint to `path` atomically: the bytes are staged
    /// at `<path>.tmp` and renamed into place, so an interrupted save
    /// never leaves a torn checkpoint behind.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] when the temp file cannot be
    /// written or renamed.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let payload = serde_json::to_string(self)
            .map_err(|e| CheckpointError::Malformed(format!("serializing: {e:?}")))?;
        let header = Header {
            magic: MAGIC.to_string(),
            version: CHECKPOINT_VERSION,
            checksum: format!("{:016x}", fnv1a64(payload.as_bytes())),
        };
        let header_line = serde_json::to_string(&header)
            .map_err(|e| CheckpointError::Malformed(format!("serializing header: {e:?}")))?;
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(header_line.as_bytes())?;
            f.write_all(b"\n")?;
            f.write_all(payload.as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and fully validates a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// Refuses with a typed [`CheckpointError`] — never a partial load:
    /// [`Io`](CheckpointError::Io) when the file cannot be read,
    /// [`Malformed`](CheckpointError::Malformed) when the header or
    /// payload does not decode (including a file cut inside the header),
    /// [`VersionMismatch`](CheckpointError::VersionMismatch) for a
    /// different format version, and
    /// [`ChecksumMismatch`](CheckpointError::ChecksumMismatch) when the
    /// payload bytes were truncated or corrupted.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let raw = std::fs::read_to_string(path)?;
        let (header_line, payload) = match raw.split_once('\n') {
            Some((h, p)) => (h, p.strip_suffix('\n').unwrap_or(p)),
            None => {
                return Err(CheckpointError::Malformed(
                    "missing header/payload separator (file cut inside the header?)".to_string(),
                ))
            }
        };
        let header: Header = serde_json::from_str(header_line)
            .map_err(|e| CheckpointError::Malformed(format!("header does not parse: {e:?}")))?;
        if header.magic != MAGIC {
            return Err(CheckpointError::Malformed(format!(
                "magic `{}` is not `{MAGIC}`",
                header.magic
            )));
        }
        if header.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::VersionMismatch {
                found: header.version,
                expected: CHECKPOINT_VERSION,
            });
        }
        let found = format!("{:016x}", fnv1a64(payload.as_bytes()));
        if found != header.checksum {
            return Err(CheckpointError::ChecksumMismatch {
                expected: header.checksum,
                found,
            });
        }
        serde_json::from_str(payload)
            .map_err(|e| CheckpointError::Malformed(format!("payload does not decode: {e:?}")))
    }

    /// Rebuilds a ready-to-resume [`Simulation`]: the scenario inputs
    /// reconstruct the policy/orchestrator/estimator machinery, then the
    /// captured state overwrites everything that evolves during a run
    /// (including repairing and reopening the event-log file sink, which
    /// may have a torn final line from the crash).
    ///
    /// Drive the result with [`Simulation::run_to_outcome`] (or
    /// [`Simulation::run`]) under the *same* run name as the original.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Malformed`] when the scenario inputs
    /// do not build (e.g. a job trace with non-dense ids) or the log
    /// sink cannot be repaired.
    pub fn into_simulation(self) -> Result<Simulation, CheckpointError> {
        let mut sim = build_simulation(&self.scenario, &self.jobs, &self.inference)
            .map_err(|e| CheckpointError::Malformed(format!("rebuilding the run: {e}")))?;
        sim.restore_state(self.state)
            .map_err(|e| CheckpointError::Malformed(format!("restoring state: {e}")))?;
        Ok(sim)
    }
}

/// Convenience: resumes a saved checkpoint to completion and returns its
/// outcome (a resumed run can itself crash again if further
/// [`crate::faults::FaultKind::SchedulerCrash`] events remain queued).
///
/// # Errors
///
/// Propagates load/rebuild refusals as [`CheckpointError`], and engine
/// inconsistencies as [`CheckpointError::Malformed`].
pub fn resume(path: &Path, name: &str) -> Result<RunOutcome, CheckpointError> {
    SimCheckpoint::load(path)?
        .into_simulation()?
        .run_to_outcome(name)
        .map_err(|e: SimError| CheckpointError::Malformed(format!("resumed run failed: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultEvent, FaultKind, FaultPlan};
    use crate::scenario::generators::{tiny_basic, tiny_traces};

    fn crash_scenario(seed: u64, crash_at_s: f64) -> Scenario {
        let mut s = tiny_basic(seed);
        let mut plan = FaultPlan::none();
        plan.events.push(FaultEvent {
            time_s: crash_at_s,
            kind: FaultKind::SchedulerCrash,
        });
        s.faults = Some(plan);
        s
    }

    fn run_to_crash(scenario: &Scenario) -> EngineState {
        let (jobs, inf) = tiny_traces(scenario.seed);
        let sim = build_simulation(scenario, &jobs, &inf).expect("build");
        match sim.run_to_outcome(&scenario.name).expect("run") {
            RunOutcome::Crashed(state) => *state,
            RunOutcome::Completed(_) => panic!("expected the seeded crash to fire"),
        }
    }

    #[test]
    fn save_load_round_trips_bit_exactly() {
        let scenario = crash_scenario(5, 3_000.0);
        let state = run_to_crash(&scenario);
        let (jobs, inf) = tiny_traces(scenario.seed);
        let ckpt = SimCheckpoint::new(scenario, jobs, inf, state);
        let dir = std::env::temp_dir().join("lyra-ckpt-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.ckpt");
        ckpt.save(&path).expect("save");
        let loaded = SimCheckpoint::load(&path).expect("load");
        // Serialized forms must agree exactly (f64 round-trips included).
        assert_eq!(
            serde_json::to_string(&ckpt).unwrap(),
            serde_json::to_string(&loaded).unwrap()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resumed_run_matches_uninterrupted_report() {
        let seed = 7;
        let (jobs, inf) = tiny_traces(seed);
        // Baseline: the same scenario *without* the crash event.
        let clean = tiny_basic(seed);
        let baseline = build_simulation(&clean, &jobs, &inf)
            .expect("build")
            .run(&clean.name)
            .expect("baseline run");
        // Crashed + resumed.
        let scenario = crash_scenario(seed, 10_000.0);
        let state = run_to_crash(&scenario);
        let dir = std::env::temp_dir().join("lyra-ckpt-resume");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("b.ckpt");
        SimCheckpoint::new(scenario.clone(), jobs, inf, state)
            .save(&path)
            .expect("save");
        let resumed = match resume(&path, &clean.name).expect("resume") {
            RunOutcome::Completed(r) => *r,
            RunOutcome::Crashed(_) => panic!("no second crash is scheduled"),
        };
        assert_eq!(
            serde_json::to_string(&baseline).unwrap(),
            serde_json::to_string(&resumed).unwrap(),
            "resumed run must replay bit-identically to the uninterrupted run"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reclaim_carry_survives_save_restore_and_fires_once() {
        let scenario = crash_scenario(11, 2_000.0);
        let (jobs, inf) = tiny_traces(scenario.seed);
        let sim = build_simulation(&scenario, &jobs, &inf).expect("build");
        let mut state = match sim.run_to_outcome(&scenario.name).expect("run") {
            RunOutcome::Crashed(state) => *state,
            RunOutcome::Completed(_) => panic!("expected the seeded crash to fire"),
        };
        // Plant an outstanding reclaim debt in the captured state via a
        // restore→mutate→capture cycle, then round-trip it through disk.
        let mut sim = build_simulation(&scenario, &jobs, &inf).expect("rebuild");
        sim.restore_state(state).expect("restore");
        let now = 2_000.0;
        sim.reclaim_ledger_mut()
            .note_shortfall(now, 3, false, 300.0, 1_800.0);
        state = sim.capture_state();
        let dir = std::env::temp_dir().join("lyra-ckpt-ledger");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.ckpt");
        SimCheckpoint::new(scenario.clone(), jobs.clone(), inf.clone(), state)
            .save(&path)
            .expect("save");
        let mut restored = SimCheckpoint::load(&path)
            .expect("load")
            .into_simulation()
            .expect("into_simulation");
        let carry = *restored
            .reclaim_ledger()
            .carry()
            .expect("carry must survive the disk round-trip");
        assert_eq!(carry.servers, 3);
        assert_eq!(carry.deadline_s, now + 1_800.0);
        assert_eq!(carry.next_retry_s, now + 300.0);
        assert_eq!(carry.backoff_s, 300.0);
        // The restored deadline state machine fires exactly once.
        let ledger = restored.reclaim_ledger_mut();
        assert_eq!(ledger.take_expired(carry.deadline_s), None);
        assert_eq!(ledger.take_expired(carry.deadline_s + 1.0), Some(3));
        assert_eq!(ledger.take_expired(carry.deadline_s + 2.0), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_and_truncated_checkpoints_are_refused_typed() {
        let scenario = crash_scenario(3, 1_500.0);
        let state = run_to_crash(&scenario);
        let (jobs, inf) = tiny_traces(scenario.seed);
        let dir = std::env::temp_dir().join("lyra-ckpt-refuse");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.ckpt");
        SimCheckpoint::new(scenario, jobs, inf, state)
            .save(&path)
            .expect("save");
        let good = std::fs::read(&path).unwrap();

        // Bit flip in the payload → checksum refusal.
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            SimCheckpoint::load(&path),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));

        // Truncated payload → checksum refusal (the header survived).
        std::fs::write(&path, &good[..good.len() - 64]).unwrap();
        assert!(matches!(
            SimCheckpoint::load(&path),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));

        // File cut inside the header line → malformed.
        std::fs::write(&path, &good[..16]).unwrap();
        assert!(matches!(
            SimCheckpoint::load(&path),
            Err(CheckpointError::Malformed(_))
        ));

        // Version bump → typed version refusal.
        let text = String::from_utf8(good.clone()).unwrap();
        let bumped = text.replacen(
            &format!("\"version\":{CHECKPOINT_VERSION}"),
            &format!("\"version\":{}", CHECKPOINT_VERSION + 1),
            1,
        );
        assert_ne!(text, bumped, "version field must appear in the header");
        std::fs::write(&path, bumped).unwrap();
        assert!(matches!(
            SimCheckpoint::load(&path),
            Err(CheckpointError::VersionMismatch { found, expected })
                if found == CHECKPOINT_VERSION + 1 && expected == CHECKPOINT_VERSION
        ));

        // Not a checkpoint at all → malformed, and a missing file → Io.
        std::fs::write(&path, "{\"magic\":\"something-else\",\"version\":1,\"checksum\":\"0\"}\n{}\n").unwrap();
        assert!(matches!(
            SimCheckpoint::load(&path),
            Err(CheckpointError::Malformed(_))
        ));
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            SimCheckpoint::load(&path),
            Err(CheckpointError::Io(_))
        ));
    }
}
