//! Deterministic fault injection for the simulator.
//!
//! The paper's production setting loses machines — inference servers get
//! pulled back abruptly, nodes die, containers crash, and slow hosts drag
//! synchronous training down. This module turns those failure modes into
//! first-class, *seeded* simulator events so robustness experiments are
//! exactly reproducible: a [`FaultPlan`] is generated once from a
//! [`FaultConfig`] and a seed, carries absolute event times, and is
//! replayed identically on every run.
//!
//! Server selection is deliberately deferred: events carry an opaque
//! `selector` draw that the engine resolves against the set of servers
//! actually eligible *when the event fires* (whitelisted, not already
//! down). A plan generated before the run therefore keeps hitting live
//! servers even as loans and crashes reshape the cluster.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Rates and magnitudes of the injected faults.
///
/// Rates are per *server per day* (crash/straggler) or per cluster per
/// day (worker failures), so experiments scale naturally with cluster
/// size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Expected whole-server crashes per server per day.
    pub server_crash_rate_per_day: f64,
    /// Whether on-loan servers can crash too (they can in production —
    /// the inference fleet is no more reliable than the training one).
    pub include_loaned: bool,
    /// Seconds a crashed server stays down before rejoining its pool.
    pub crash_recovery_s: f64,
    /// Expected single-worker (container) failures per cluster per day.
    pub worker_failure_rate_per_day: f64,
    /// Probability that restoring from a checkpoint fails and the job
    /// restarts from scratch (corrupt/missing checkpoint).
    pub checkpoint_restore_failure_prob: f64,
    /// Expected straggler episodes per server per day.
    pub straggler_rate_per_day: f64,
    /// Throughput factor of a straggling server (e.g. 0.4 = runs at
    /// 40 % speed).
    pub straggler_slowdown: f64,
    /// Seconds one straggler episode lasts.
    pub straggler_duration_s: f64,
    /// Probability that any given orchestrator tick is dropped (control
    /// plane hiccup: the tick's loan/reclaim instruction is lost).
    pub dropped_tick_prob: f64,
    /// Horizon over which events are generated, seconds.
    pub horizon_s: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            server_crash_rate_per_day: 0.0,
            include_loaned: true,
            crash_recovery_s: 3_600.0,
            worker_failure_rate_per_day: 0.0,
            checkpoint_restore_failure_prob: 0.0,
            straggler_rate_per_day: 0.0,
            straggler_slowdown: 0.4,
            straggler_duration_s: 1_800.0,
            dropped_tick_prob: 0.0,
            horizon_s: 2.0 * 86_400.0,
        }
    }
}

impl FaultConfig {
    /// A moderate all-modes preset for tests and demos: crashes,
    /// worker failures, stragglers and occasional dropped ticks over
    /// `horizon_s` seconds.
    pub fn moderate(horizon_s: f64) -> Self {
        FaultConfig {
            server_crash_rate_per_day: 0.05,
            worker_failure_rate_per_day: 4.0,
            checkpoint_restore_failure_prob: 0.1,
            straggler_rate_per_day: 0.05,
            dropped_tick_prob: 0.02,
            horizon_s,
            ..FaultConfig::default()
        }
    }
}

/// One kind of injected fault.
///
/// `selector` fields are uniform `u64` draws fixed at plan-generation
/// time; the engine maps them onto the eligible server (and job) set at
/// fire time, keeping plans meaningful under any cluster evolution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A whole server dies: its workers are lost, it leaves the
    /// whitelist, and it rejoins its pool after `recovery_s`.
    ServerCrash {
        /// Opaque draw resolved against eligible servers at fire time.
        selector: u64,
        /// Seconds until the server comes back.
        recovery_s: f64,
    },
    /// One worker container on one busy server dies.
    WorkerFailure {
        /// Opaque draw resolved against busy servers (and their jobs).
        selector: u64,
    },
    /// A server runs slow for a while, dragging synchronous jobs with
    /// workers there.
    Straggler {
        /// Opaque draw resolved against eligible servers at fire time.
        selector: u64,
        /// Throughput factor while straggling (0 < factor ≤ 1).
        factor: f64,
        /// Episode length, seconds.
        duration_s: f64,
    },
    /// The next orchestrator tick is lost (no loan/reclaim executes).
    DropOrchestratorTick,
    /// The scheduler process itself dies: the engine snapshots its
    /// complete state and aborts the run at this instant. The crash is
    /// invisible to every observable output (event log, counters,
    /// metrics) — the contract is that a resumed run is byte-identical
    /// to an uninterrupted one, so the crash must not perturb either.
    SchedulerCrash,
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Absolute simulation time the fault fires, seconds.
    pub time_s: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// A complete, reproducible fault schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed the plan was generated from; also seeds the engine's
    /// fire-time rolls (checkpoint-restore failures).
    pub seed: u64,
    /// Whether crash/straggler events may target on-loan servers.
    pub include_loaned: bool,
    /// Probability a checkpoint restore fails at fire time.
    pub checkpoint_restore_failure_prob: f64,
    /// All scheduled faults, ascending by time.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults); useful as a neutral default.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            include_loaned: true,
            checkpoint_restore_failure_prob: 0.0,
            events: Vec::new(),
        }
    }

    /// Generates a plan from `config` and `seed`.
    ///
    /// Each fault class is an independent Poisson process: inter-arrival
    /// times are exponential with the configured per-day rate (scaled by
    /// a nominal server count for per-server rates — the caller passes
    /// the cluster size via `servers`). Dropped ticks are Bernoulli per
    /// orchestrator tick and are materialised as events too, so the
    /// whole schedule is visible up front.
    pub fn generate(config: &FaultConfig, servers: u32, seed: u64) -> Self {
        // Inverse-CDF exponential inter-arrivals of one Poisson process.
        fn exp_times(rate_per_s: f64, horizon_s: f64, rng: &mut StdRng) -> Vec<f64> {
            let mut out = Vec::new();
            if rate_per_s <= 0.0 {
                return out;
            }
            let mut t = 0.0;
            loop {
                let u: f64 = rng.gen::<f64>().max(1e-12);
                t += -u.ln() / rate_per_s;
                if t >= horizon_s {
                    break;
                }
                out.push(t);
            }
            out
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA_0175);
        let mut events = Vec::new();
        let day = 86_400.0;
        let horizon = config.horizon_s.max(0.0);
        let crash_rate = config.server_crash_rate_per_day * f64::from(servers.max(1)) / day;
        let recovery = config.crash_recovery_s.max(0.0);
        for t in exp_times(crash_rate, horizon, &mut rng) {
            events.push(FaultEvent {
                time_s: t,
                kind: FaultKind::ServerCrash {
                    selector: rng.gen::<u64>(),
                    recovery_s: recovery,
                },
            });
        }
        let worker_rate = config.worker_failure_rate_per_day / day;
        for t in exp_times(worker_rate, horizon, &mut rng) {
            events.push(FaultEvent {
                time_s: t,
                kind: FaultKind::WorkerFailure {
                    selector: rng.gen::<u64>(),
                },
            });
        }
        let straggler_rate = config.straggler_rate_per_day * f64::from(servers.max(1)) / day;
        let factor = config.straggler_slowdown.clamp(0.01, 1.0);
        let duration = config.straggler_duration_s.max(0.0);
        for t in exp_times(straggler_rate, horizon, &mut rng) {
            events.push(FaultEvent {
                time_s: t,
                kind: FaultKind::Straggler {
                    selector: rng.gen::<u64>(),
                    factor,
                    duration_s: duration,
                },
            });
        }
        if config.dropped_tick_prob > 0.0 {
            // Bernoulli per 5-minute orchestrator tick.
            let mut t = 300.0;
            while t < horizon {
                if rng.gen_bool(config.dropped_tick_prob.clamp(0.0, 1.0)) {
                    events.push(FaultEvent {
                        time_s: t - 1.0, // just before the tick it drops
                        kind: FaultKind::DropOrchestratorTick,
                    });
                }
                t += 300.0;
            }
        }
        events.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
        FaultPlan {
            seed,
            include_loaned: config.include_loaned,
            checkpoint_restore_failure_prob: config.checkpoint_restore_failure_prob.clamp(0.0, 1.0),
            events,
        }
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// A reclaim demand that could not be satisfied at its tick: carried
/// forward and retried with exponential backoff until met, resolved
/// externally, or expired (a counted deadline violation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReclaimCarry {
    /// Servers still owed to the inference cluster.
    pub servers: u32,
    /// Absolute time the debt expires.
    pub deadline_s: f64,
    /// Earliest tick the demand is retried.
    pub next_retry_s: f64,
    /// Current backoff step (doubles per failed retry).
    pub backoff_s: f64,
}

/// What booking a reclaim shortfall did to the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CarryTransition {
    /// A new debt was opened: the caller should count a carryover and
    /// emit the carryover event.
    Opened,
    /// An existing debt shrank to the remainder and doubled its backoff.
    Retried,
    /// A met retried demand cleared the debt it had folded in.
    Cleared,
    /// Nothing changed (no shortfall and no retried debt outstanding).
    Unchanged,
}

/// The deadline + backoff state machine for carried-forward reclaim
/// debt (the graceful-degradation path of §4: inference demanded
/// servers back and the training side could not free enough).
///
/// The engine drives it at orchestrator-tick cadence:
///
/// 1. [`take_expired`](ReclaimLedger::take_expired) first — a debt past
///    its deadline is reported *exactly once* as a violation, then
///    dropped (no further retries).
/// 2. On a `Reclaim(n)` instruction, [`fold_into`](ReclaimLedger::fold_into)
///    raises the fresh demand to cover the carried debt once the retry
///    backoff has elapsed.
/// 3. After the reclaim executes, [`note_shortfall`](ReclaimLedger::note_shortfall)
///    books the unmet remainder: new debts get a deadline and an
///    initial backoff, retried debts shrink to the remainder with a
///    doubled backoff, and a fully met retried demand clears the debt.
/// 4. A `Loan` or `Hold` instruction means the inference side no longer
///    wants the servers: [`clear`](ReclaimLedger::clear).
///
/// The ledger is pure state (no clock, no event sink), so the paths are
/// directly unit-testable; the engine owns event emission and counters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ReclaimLedger {
    carry: Option<ReclaimCarry>,
}

impl ReclaimLedger {
    /// An empty ledger with no outstanding debt.
    pub fn new() -> Self {
        Self::default()
    }

    /// The outstanding debt, if any.
    pub fn carry(&self) -> Option<&ReclaimCarry> {
        self.carry.as_ref()
    }

    /// Drops any outstanding debt (the inference side resolved it:
    /// it is offering servers again, or holding).
    pub fn clear(&mut self) {
        self.carry = None;
    }

    /// Expires a debt whose deadline has passed: returns the owed
    /// server count and clears the debt, so a deadline miss is reported
    /// exactly once no matter how many ticks follow.
    pub fn take_expired(&mut self, now_s: f64) -> Option<u32> {
        match self.carry {
            Some(c) if now_s > c.deadline_s => {
                self.carry = None;
                Some(c.servers)
            }
            _ => None,
        }
    }

    /// Folds the carried debt into a fresh reclaim `demand` once its
    /// retry time has arrived. Returns the (possibly raised) demand and
    /// whether a carry was retried — a met demand uses the flag to know
    /// there is a debt to clear.
    pub fn fold_into(&self, now_s: f64, demand: u32) -> (u32, bool) {
        match self.carry {
            Some(c) if now_s >= c.next_retry_s => (demand.max(c.servers), true),
            _ => (demand, false),
        }
    }

    /// Books the unmet remainder of a reclaim demand. `retried_carry`
    /// is the flag returned by [`fold_into`](ReclaimLedger::fold_into);
    /// `retry_backoff_s` and `deadline_after_s` are the engine's
    /// configured initial backoff and debt lifetime.
    pub fn note_shortfall(
        &mut self,
        now_s: f64,
        unmet: u32,
        retried_carry: bool,
        retry_backoff_s: f64,
        deadline_after_s: f64,
    ) -> CarryTransition {
        if unmet == 0 {
            if retried_carry && self.carry.is_some() {
                self.carry = None;
                return CarryTransition::Cleared;
            }
            return CarryTransition::Unchanged;
        }
        match &mut self.carry {
            Some(carry) => {
                carry.servers = unmet;
                carry.backoff_s *= 2.0;
                carry.next_retry_s = now_s + carry.backoff_s;
                CarryTransition::Retried
            }
            None => {
                self.carry = Some(ReclaimCarry {
                    servers: unmet,
                    deadline_s: now_s + deadline_after_s,
                    next_retry_s: now_s + retry_backoff_s,
                    backoff_s: retry_backoff_s,
                });
                CarryTransition::Opened
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> FaultConfig {
        FaultConfig {
            server_crash_rate_per_day: 0.5,
            worker_failure_rate_per_day: 10.0,
            straggler_rate_per_day: 0.3,
            dropped_tick_prob: 0.05,
            horizon_s: 86_400.0,
            ..FaultConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = FaultPlan::generate(&config(), 20, 7);
        let b = FaultPlan::generate(&config(), 20, 7);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::generate(&config(), 20, 1);
        let b = FaultPlan::generate(&config(), 20, 2);
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn events_are_sorted_and_within_horizon() {
        let plan = FaultPlan::generate(&config(), 20, 3);
        let mut last = 0.0;
        for e in &plan.events {
            assert!(e.time_s >= last, "events out of order");
            assert!(e.time_s < 86_400.0, "event beyond horizon");
            last = e.time_s;
        }
    }

    #[test]
    fn rates_scale_event_counts() {
        let low = FaultPlan::generate(
            &FaultConfig {
                server_crash_rate_per_day: 0.1,
                horizon_s: 10.0 * 86_400.0,
                ..FaultConfig::default()
            },
            20,
            4,
        );
        let high = FaultPlan::generate(
            &FaultConfig {
                server_crash_rate_per_day: 1.0,
                horizon_s: 10.0 * 86_400.0,
                ..FaultConfig::default()
            },
            20,
            4,
        );
        assert!(
            high.events.len() > 3 * low.events.len(),
            "10x the rate should yield far more events: {} vs {}",
            high.events.len(),
            low.events.len()
        );
    }

    #[test]
    fn serde_round_trip_replays_identical_fault_sequence() {
        let cfg = FaultConfig {
            checkpoint_restore_failure_prob: 0.25,
            ..config()
        };
        let plan = FaultPlan::generate(&cfg, 20, 13);
        let json = serde_json::to_string(&plan).expect("serialize plan");
        let restored: FaultPlan = serde_json::from_str(&json).expect("deserialize plan");
        assert_eq!(plan, restored, "round-trip must preserve the schedule exactly");
        // The engine's fire-time rolls (checkpoint-restore failures) are
        // drawn from an RNG seeded off the plan seed; a restored plan must
        // therefore reproduce the identical roll sequence too.
        let mut a = StdRng::seed_from_u64(plan.seed ^ 0x5EED_F417);
        let mut b = StdRng::seed_from_u64(restored.seed ^ 0x5EED_F417);
        for _ in 0..256 {
            assert_eq!(
                a.gen_bool(plan.checkpoint_restore_failure_prob),
                b.gen_bool(restored.checkpoint_restore_failure_prob)
            );
        }
    }

    #[test]
    fn zero_rates_yield_empty_plan() {
        let plan = FaultPlan::generate(&FaultConfig::default(), 100, 9);
        assert!(plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    // --- ReclaimLedger: deadline + backoff state machine ---

    const BACKOFF: f64 = 300.0;
    const DEADLINE: f64 = 1_800.0;

    #[test]
    fn shortfall_opens_one_debt_with_deadline_and_backoff() {
        let mut ledger = ReclaimLedger::new();
        assert!(ledger.carry().is_none());
        let t = ledger.note_shortfall(100.0, 3, false, BACKOFF, DEADLINE);
        assert_eq!(t, CarryTransition::Opened);
        let carry = ledger.carry().unwrap();
        assert_eq!(carry.servers, 3);
        assert_eq!(carry.deadline_s, 100.0 + DEADLINE);
        assert_eq!(carry.next_retry_s, 100.0 + BACKOFF);
        assert_eq!(carry.backoff_s, BACKOFF);
    }

    #[test]
    fn deadline_miss_fires_exactly_once() {
        let mut ledger = ReclaimLedger::new();
        ledger.note_shortfall(0.0, 4, false, BACKOFF, DEADLINE);
        // Not yet expired: the deadline itself is still within budget.
        assert_eq!(ledger.take_expired(DEADLINE), None);
        // One tick past the deadline: the miss fires with the owed count…
        assert_eq!(ledger.take_expired(DEADLINE + 1.0), Some(4));
        // …and never again, even as time keeps advancing.
        assert_eq!(ledger.take_expired(DEADLINE + 2.0), None);
        assert_eq!(ledger.take_expired(1e12), None);
        assert!(ledger.carry().is_none());
    }

    #[test]
    fn backoff_never_underflows_at_tick_zero() {
        // Degenerate config: zero initial backoff, debt opened at t=0.
        let mut ledger = ReclaimLedger::new();
        ledger.note_shortfall(0.0, 2, false, 0.0, 0.0);
        let carry = *ledger.carry().unwrap();
        assert!(carry.next_retry_s >= 0.0 && carry.backoff_s >= 0.0);
        // Retry is immediately due and folds the debt in.
        assert_eq!(ledger.fold_into(0.0, 0), (2, true));
        // A failed retry at t=0 doubles a zero backoff to zero — still
        // non-negative, never NaN, never behind the clock.
        ledger.note_shortfall(0.0, 2, true, 0.0, 0.0);
        let carry = *ledger.carry().unwrap();
        assert!(carry.backoff_s >= 0.0 && carry.backoff_s.is_finite());
        assert!(carry.next_retry_s >= 0.0 && carry.next_retry_s.is_finite());
        // The regular config at tick 0 defers the first retry by the
        // full initial backoff.
        let mut ledger = ReclaimLedger::new();
        ledger.note_shortfall(0.0, 1, false, BACKOFF, DEADLINE);
        assert_eq!(ledger.fold_into(0.0, 5), (5, false));
        assert_eq!(ledger.fold_into(BACKOFF, 5), (5, true));
    }

    #[test]
    fn failed_retries_double_backoff_and_keep_the_deadline() {
        let mut ledger = ReclaimLedger::new();
        ledger.note_shortfall(0.0, 6, false, BACKOFF, DEADLINE);
        let deadline = ledger.carry().unwrap().deadline_s;
        // First retry due at t=300 returns only part of the debt.
        let (demand, retried) = ledger.fold_into(300.0, 1);
        assert_eq!((demand, retried), (6, true));
        assert_eq!(
            ledger.note_shortfall(300.0, 2, retried, BACKOFF, DEADLINE),
            CarryTransition::Retried
        );
        let carry = *ledger.carry().unwrap();
        assert_eq!(carry.servers, 2, "debt shrinks to the remainder");
        assert_eq!(carry.backoff_s, 2.0 * BACKOFF);
        assert_eq!(carry.next_retry_s, 300.0 + 2.0 * BACKOFF);
        assert_eq!(carry.deadline_s, deadline, "retries never extend the deadline");
        // Before the doubled backoff elapses the debt is not folded in.
        assert_eq!(ledger.fold_into(600.0, 0), (0, false));
        assert_eq!(ledger.fold_into(900.0, 0), (2, true));
    }

    #[test]
    fn met_retried_demand_clears_the_debt() {
        let mut ledger = ReclaimLedger::new();
        ledger.note_shortfall(0.0, 2, false, BACKOFF, DEADLINE);
        let (_, retried) = ledger.fold_into(BACKOFF, 0);
        assert!(retried);
        assert_eq!(
            ledger.note_shortfall(BACKOFF, 0, retried, BACKOFF, DEADLINE),
            CarryTransition::Cleared
        );
        assert!(ledger.carry().is_none());
        // With no debt outstanding, a fully met demand is a no-op.
        assert_eq!(
            ledger.note_shortfall(BACKOFF, 0, false, BACKOFF, DEADLINE),
            CarryTransition::Unchanged
        );
    }

    #[test]
    fn loan_or_hold_clears_and_a_new_debt_reopens() {
        let mut ledger = ReclaimLedger::new();
        ledger.note_shortfall(0.0, 5, false, BACKOFF, DEADLINE);
        ledger.clear();
        assert!(ledger.carry().is_none());
        assert_eq!(ledger.take_expired(1e9), None, "cleared debts never expire");
        // A fresh shortfall later opens a brand-new debt (fresh deadline,
        // fresh backoff) and counts as a new carryover.
        let t = ledger.note_shortfall(5_000.0, 1, false, BACKOFF, DEADLINE);
        assert_eq!(t, CarryTransition::Opened);
        let carry = ledger.carry().unwrap();
        assert_eq!(carry.deadline_s, 5_000.0 + DEADLINE);
        assert_eq!(carry.backoff_s, BACKOFF);
    }
}
