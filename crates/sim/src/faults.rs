//! Deterministic fault injection for the simulator.
//!
//! The paper's production setting loses machines — inference servers get
//! pulled back abruptly, nodes die, containers crash, and slow hosts drag
//! synchronous training down. This module turns those failure modes into
//! first-class, *seeded* simulator events so robustness experiments are
//! exactly reproducible: a [`FaultPlan`] is generated once from a
//! [`FaultConfig`] and a seed, carries absolute event times, and is
//! replayed identically on every run.
//!
//! Server selection is deliberately deferred: events carry an opaque
//! `selector` draw that the engine resolves against the set of servers
//! actually eligible *when the event fires* (whitelisted, not already
//! down). A plan generated before the run therefore keeps hitting live
//! servers even as loans and crashes reshape the cluster.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Rates and magnitudes of the injected faults.
///
/// Rates are per *server per day* (crash/straggler) or per cluster per
/// day (worker failures), so experiments scale naturally with cluster
/// size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Expected whole-server crashes per server per day.
    pub server_crash_rate_per_day: f64,
    /// Whether on-loan servers can crash too (they can in production —
    /// the inference fleet is no more reliable than the training one).
    pub include_loaned: bool,
    /// Seconds a crashed server stays down before rejoining its pool.
    pub crash_recovery_s: f64,
    /// Expected single-worker (container) failures per cluster per day.
    pub worker_failure_rate_per_day: f64,
    /// Probability that restoring from a checkpoint fails and the job
    /// restarts from scratch (corrupt/missing checkpoint).
    pub checkpoint_restore_failure_prob: f64,
    /// Expected straggler episodes per server per day.
    pub straggler_rate_per_day: f64,
    /// Throughput factor of a straggling server (e.g. 0.4 = runs at
    /// 40 % speed).
    pub straggler_slowdown: f64,
    /// Seconds one straggler episode lasts.
    pub straggler_duration_s: f64,
    /// Probability that any given orchestrator tick is dropped (control
    /// plane hiccup: the tick's loan/reclaim instruction is lost).
    pub dropped_tick_prob: f64,
    /// Horizon over which events are generated, seconds.
    pub horizon_s: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            server_crash_rate_per_day: 0.0,
            include_loaned: true,
            crash_recovery_s: 3_600.0,
            worker_failure_rate_per_day: 0.0,
            checkpoint_restore_failure_prob: 0.0,
            straggler_rate_per_day: 0.0,
            straggler_slowdown: 0.4,
            straggler_duration_s: 1_800.0,
            dropped_tick_prob: 0.0,
            horizon_s: 2.0 * 86_400.0,
        }
    }
}

impl FaultConfig {
    /// A moderate all-modes preset for tests and demos: crashes,
    /// worker failures, stragglers and occasional dropped ticks over
    /// `horizon_s` seconds.
    pub fn moderate(horizon_s: f64) -> Self {
        FaultConfig {
            server_crash_rate_per_day: 0.05,
            worker_failure_rate_per_day: 4.0,
            checkpoint_restore_failure_prob: 0.1,
            straggler_rate_per_day: 0.05,
            dropped_tick_prob: 0.02,
            horizon_s,
            ..FaultConfig::default()
        }
    }
}

/// One kind of injected fault.
///
/// `selector` fields are uniform `u64` draws fixed at plan-generation
/// time; the engine maps them onto the eligible server (and job) set at
/// fire time, keeping plans meaningful under any cluster evolution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A whole server dies: its workers are lost, it leaves the
    /// whitelist, and it rejoins its pool after `recovery_s`.
    ServerCrash {
        /// Opaque draw resolved against eligible servers at fire time.
        selector: u64,
        /// Seconds until the server comes back.
        recovery_s: f64,
    },
    /// One worker container on one busy server dies.
    WorkerFailure {
        /// Opaque draw resolved against busy servers (and their jobs).
        selector: u64,
    },
    /// A server runs slow for a while, dragging synchronous jobs with
    /// workers there.
    Straggler {
        /// Opaque draw resolved against eligible servers at fire time.
        selector: u64,
        /// Throughput factor while straggling (0 < factor ≤ 1).
        factor: f64,
        /// Episode length, seconds.
        duration_s: f64,
    },
    /// The next orchestrator tick is lost (no loan/reclaim executes).
    DropOrchestratorTick,
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Absolute simulation time the fault fires, seconds.
    pub time_s: f64,
    /// What happens.
    pub kind: FaultKind,
}

/// A complete, reproducible fault schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed the plan was generated from; also seeds the engine's
    /// fire-time rolls (checkpoint-restore failures).
    pub seed: u64,
    /// Whether crash/straggler events may target on-loan servers.
    pub include_loaned: bool,
    /// Probability a checkpoint restore fails at fire time.
    pub checkpoint_restore_failure_prob: f64,
    /// All scheduled faults, ascending by time.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults); useful as a neutral default.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            include_loaned: true,
            checkpoint_restore_failure_prob: 0.0,
            events: Vec::new(),
        }
    }

    /// Generates a plan from `config` and `seed`.
    ///
    /// Each fault class is an independent Poisson process: inter-arrival
    /// times are exponential with the configured per-day rate (scaled by
    /// a nominal server count for per-server rates — the caller passes
    /// the cluster size via `servers`). Dropped ticks are Bernoulli per
    /// orchestrator tick and are materialised as events too, so the
    /// whole schedule is visible up front.
    pub fn generate(config: &FaultConfig, servers: u32, seed: u64) -> Self {
        // Inverse-CDF exponential inter-arrivals of one Poisson process.
        fn exp_times(rate_per_s: f64, horizon_s: f64, rng: &mut StdRng) -> Vec<f64> {
            let mut out = Vec::new();
            if rate_per_s <= 0.0 {
                return out;
            }
            let mut t = 0.0;
            loop {
                let u: f64 = rng.gen::<f64>().max(1e-12);
                t += -u.ln() / rate_per_s;
                if t >= horizon_s {
                    break;
                }
                out.push(t);
            }
            out
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA_0175);
        let mut events = Vec::new();
        let day = 86_400.0;
        let horizon = config.horizon_s.max(0.0);
        let crash_rate = config.server_crash_rate_per_day * f64::from(servers.max(1)) / day;
        let recovery = config.crash_recovery_s.max(0.0);
        for t in exp_times(crash_rate, horizon, &mut rng) {
            events.push(FaultEvent {
                time_s: t,
                kind: FaultKind::ServerCrash {
                    selector: rng.gen::<u64>(),
                    recovery_s: recovery,
                },
            });
        }
        let worker_rate = config.worker_failure_rate_per_day / day;
        for t in exp_times(worker_rate, horizon, &mut rng) {
            events.push(FaultEvent {
                time_s: t,
                kind: FaultKind::WorkerFailure {
                    selector: rng.gen::<u64>(),
                },
            });
        }
        let straggler_rate = config.straggler_rate_per_day * f64::from(servers.max(1)) / day;
        let factor = config.straggler_slowdown.clamp(0.01, 1.0);
        let duration = config.straggler_duration_s.max(0.0);
        for t in exp_times(straggler_rate, horizon, &mut rng) {
            events.push(FaultEvent {
                time_s: t,
                kind: FaultKind::Straggler {
                    selector: rng.gen::<u64>(),
                    factor,
                    duration_s: duration,
                },
            });
        }
        if config.dropped_tick_prob > 0.0 {
            // Bernoulli per 5-minute orchestrator tick.
            let mut t = 300.0;
            while t < horizon {
                if rng.gen_bool(config.dropped_tick_prob.clamp(0.0, 1.0)) {
                    events.push(FaultEvent {
                        time_s: t - 1.0, // just before the tick it drops
                        kind: FaultKind::DropOrchestratorTick,
                    });
                }
                t += 300.0;
            }
        }
        events.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
        FaultPlan {
            seed,
            include_loaned: config.include_loaned,
            checkpoint_restore_failure_prob: config.checkpoint_restore_failure_prob.clamp(0.0, 1.0),
            events,
        }
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> FaultConfig {
        FaultConfig {
            server_crash_rate_per_day: 0.5,
            worker_failure_rate_per_day: 10.0,
            straggler_rate_per_day: 0.3,
            dropped_tick_prob: 0.05,
            horizon_s: 86_400.0,
            ..FaultConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = FaultPlan::generate(&config(), 20, 7);
        let b = FaultPlan::generate(&config(), 20, 7);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::generate(&config(), 20, 1);
        let b = FaultPlan::generate(&config(), 20, 2);
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn events_are_sorted_and_within_horizon() {
        let plan = FaultPlan::generate(&config(), 20, 3);
        let mut last = 0.0;
        for e in &plan.events {
            assert!(e.time_s >= last, "events out of order");
            assert!(e.time_s < 86_400.0, "event beyond horizon");
            last = e.time_s;
        }
    }

    #[test]
    fn rates_scale_event_counts() {
        let low = FaultPlan::generate(
            &FaultConfig {
                server_crash_rate_per_day: 0.1,
                horizon_s: 10.0 * 86_400.0,
                ..FaultConfig::default()
            },
            20,
            4,
        );
        let high = FaultPlan::generate(
            &FaultConfig {
                server_crash_rate_per_day: 1.0,
                horizon_s: 10.0 * 86_400.0,
                ..FaultConfig::default()
            },
            20,
            4,
        );
        assert!(
            high.events.len() > 3 * low.events.len(),
            "10x the rate should yield far more events: {} vs {}",
            high.events.len(),
            low.events.len()
        );
    }

    #[test]
    fn zero_rates_yield_empty_plan() {
        let plan = FaultPlan::generate(&FaultConfig::default(), 100, 9);
        assert!(plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }
}
