//! The discrete-event simulator (§7.1: "We built a discrete-event
//! simulator for evaluating Lyra at scale using job traces from
//! production. It simulates the cluster scale, hardware configuration, and
//! all job events including arrival, completion, scaling, and
//! preemption.").
//!
//! Mechanics:
//!
//! * **Events** — job arrivals, generation-tagged job finishes, periodic
//!   scheduler epochs and orchestrator ticks, ordered by millisecond
//!   timestamps with a sequence tiebreak.
//! * **Progress** — a job's remaining work (reference worker-seconds)
//!   drains at a rate derived from its placement: the scaling curve over
//!   the total worker count, weighted by the GPU capabilities of the
//!   servers hosting it, times the heterogeneous-training penalty when the
//!   device set is mixed and the tuning gain when the scenario enables
//!   Lyra+TunedJobs. Work is synced lazily; allocation changes bump a
//!   generation counter so stale finish events are ignored.
//! * **Overheads** — container launches, elastic rendezvous pauses and
//!   the measured 63 s preemption overhead (§7.5) stall a job's progress
//!   without releasing its GPUs, exactly like the prototype.
//! * **Preemption** — reclaiming evicts jobs per the orchestrator's
//!   decision; checkpointing jobs keep their progress and pay the
//!   overhead, others restart from scratch (§4's conservative default).

use crate::faults::{CarryTransition, FaultKind, FaultPlan, ReclaimLedger};
use crate::metrics::{
    percentiles, DeadlineStats, FaultStats, JobRecord, ReclaimRecord, SimReport, UsageIntegral,
};
use lyra_cluster::inference::{InferenceScheduler, LoanInstruction};
use lyra_cluster::manager::{ResourceManager, RmOp};
use lyra_cluster::orchestrator::{Orchestrator, OrchestratorDecision};
use lyra_cluster::state::ClusterState;
use lyra_core::gpu::GpuType;
use lyra_core::job::{JobId, JobSpec};
use lyra_core::policies::JobScheduler;
use lyra_core::snapshot::{
    Action, PendingJobView, PoolKind, RunningJobView, ServerGroup, ServerId, Snapshot,
};
use lyra_core::tuning::GoodputModel;
use lyra_elastic::controller::ElasticController;
use lyra_elastic::hetero::{hetero_rate_scaled, HeteroGroup};
use lyra_obs::{EventLog, MetricsRegistry, MetricsSnapshot, SchedEvent};
use lyra_predictor::RuntimeEstimator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Engine timing and overhead parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Scheduler epoch length (the job scheduler runs "in a much smaller
    /// interval than the orchestrator", §3).
    pub scheduler_interval_s: f64,
    /// Orchestrator tick length (§7.1: five minutes).
    pub orchestrator_interval_s: f64,
    /// Preemption overhead charged when a preempted job resumes (§7.5's
    /// measured 63 s).
    pub preemption_overhead_s: f64,
    /// Container-launch stall for a fresh (re)launch.
    pub launch_delay_s: f64,
    /// Elastic rendezvous pause per membership change (§6's controller).
    pub rendezvous_pause_s: f64,
    /// Throughput factor for mixed-GPU jobs (§7.1: at most 0.70 of
    /// ideal; 1.0 in the Ideal scenario).
    pub hetero_efficiency: f64,
    /// Apply the tuning agent's goodput gain to elastic jobs
    /// (Lyra+TunedJobs, §7.4).
    pub tuned: bool,
    /// Hard stop this long after the last arrival: jobs that cannot
    /// complete (e.g. opportunistic stragglers at toy scale) are reported
    /// incomplete instead of cycling forever.
    pub drain_horizon_s: f64,
    /// Report cluster usage over `[0, usage_horizon_s]` only (the trace
    /// span), so the post-trace drain does not dilute the utilisation
    /// columns. `0` means the whole run.
    pub usage_horizon_s: f64,
    /// Take every server the inference cluster offers instead of gating
    /// loans on current fungible demand.
    pub loan_all_offered: bool,
    /// Whether the scheduling policy applies §5.3's special elastic
    /// placement. When false (Table 6's ablation) flexible workers are
    /// not segregated, so no server may be labelled `Flexible` — the
    /// orchestrator must reclaim everything via preemption.
    pub special_placement: bool,
    /// Checkpoint interval for jobs with checkpointing, in work units
    /// (reference worker-seconds). Preempted checkpointing jobs resume
    /// from the last completed checkpoint, not the exact preemption
    /// point.
    pub checkpoint_interval_work: f64,
    /// Initial retry backoff for a reclaim demand that could not be
    /// fully satisfied at its tick; the unmet remainder is carried
    /// forward and retried with exponential backoff instead of being
    /// dropped.
    pub reclaim_retry_backoff_s: f64,
    /// Deadline for a carried-forward reclaim demand; missing it is
    /// counted as a reclaim-deadline violation in the report.
    pub reclaim_deadline_s: f64,
    /// Maintain the scheduler snapshot incrementally across epochs
    /// (dirty-tracking the jobs and servers each event touched) instead
    /// of rebuilding it from scratch every tick. Scheduling decisions
    /// are identical either way; `false` keeps the from-scratch path as
    /// the perf baseline and CI divergence gate.
    pub incremental_snapshot: bool,
    /// Run cost-model server reclaims (`Lyra`, `GpuFraction`) through
    /// the orchestrator's incremental preemption-cost engine instead of
    /// the from-scratch greedy. Outcomes are identical either way
    /// (pinned by proptests and the perf harness's divergence gate);
    /// `false` keeps the from-scratch path as the differential
    /// baseline.
    pub incremental_reclaim: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            scheduler_interval_s: 60.0,
            orchestrator_interval_s: 300.0,
            preemption_overhead_s: 63.0,
            launch_delay_s: 10.0,
            rendezvous_pause_s: 15.0,
            hetero_efficiency: 0.70,
            tuned: false,
            drain_horizon_s: 30.0 * 86_400.0,
            usage_horizon_s: 0.0,
            loan_all_offered: false,
            special_placement: true,
            checkpoint_interval_work: 600.0,
            reclaim_retry_backoff_s: 300.0,
            reclaim_deadline_s: 1_800.0,
            incremental_snapshot: true,
            incremental_reclaim: true,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
enum EventKind {
    Arrival(usize),
    Finish(usize, u64),
    SchedulerTick,
    OrchestratorTick,
    /// The `i`-th event of the attached fault plan fires.
    Fault(usize),
    /// A crashed server completes recovery and rejoins its pool.
    ServerRecover(ServerId),
    /// A straggler episode on this server ends.
    StragglerEnd(ServerId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Event {
    time_ms: u64,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time_ms, self.seq).cmp(&(other.time_ms, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum JobState {
    Pending,
    Running,
    Done,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct SimJob {
    spec: JobSpec,
    state: JobState,
    /// Remaining work in reference worker-seconds.
    work_left: f64,
    /// Current workers (0 when pending).
    workers: u32,
    flexible_workers: u32,
    placement: Vec<(ServerId, u32)>,
    flex_placement: Vec<(ServerId, u32)>,
    /// Current service rate, work units per second.
    rate: f64,
    /// Time `work_left` was last synced.
    synced_at_s: f64,
    /// Progress stalls until this absolute time (launch/rendezvous/
    /// preemption overheads).
    stall_until_s: f64,
    /// Pending-side bookkeeping.
    enqueued_at_s: f64,
    resume_overhead_s: f64,
    /// Cause charged to the pending `resume_overhead_s` stall at the
    /// next launch (checkpoint restore vs. full restart vs. preemption).
    resume_cause: Option<lyra_obs::DelayCause>,
    /// Stale-finish guard.
    generation: u64,
    /// §6's per-job controller: coordinates worker join/departure and
    /// accounts the rendezvous pauses.
    controller: Option<ElasticController>,
    record: JobRecord,
}

impl SimJob {
    fn new(spec: JobSpec) -> Self {
        let mut record = JobRecord::new(spec.id, spec.submit_time_s);
        record.deadline_s = spec.deadline_s;
        let work = spec.work();
        let enqueued = spec.submit_time_s;
        SimJob {
            record,
            work_left: work,
            state: JobState::Pending,
            workers: 0,
            flexible_workers: 0,
            placement: Vec::new(),
            flex_placement: Vec::new(),
            rate: 0.0,
            synced_at_s: enqueued,
            stall_until_s: 0.0,
            enqueued_at_s: enqueued,
            resume_overhead_s: 0.0,
            resume_cause: None,
            generation: 0,
            controller: None,
            spec,
        }
    }

    /// Remaining work at `now`, without mutating.
    fn work_left_at(&self, now: f64) -> f64 {
        if self.state != JobState::Running || self.rate <= 0.0 {
            return self.work_left;
        }
        let active_from = self.synced_at_s.max(self.stall_until_s);
        let dt = (now - active_from).max(0.0);
        (self.work_left - self.rate * dt).max(0.0)
    }

    /// Syncs `work_left` to `now`.
    fn sync(&mut self, now: f64) {
        self.work_left = self.work_left_at(now);
        self.synced_at_s = now;
    }

    /// Adds a progress stall of `pause_s` starting at `now`.
    fn stall(&mut self, now: f64, pause_s: f64) {
        self.stall_until_s = self.stall_until_s.max(now) + pause_s;
    }

    /// Absolute finish time from `now` under the current rate.
    fn finish_time(&self, now: f64) -> Option<f64> {
        if self.state != JobState::Running || self.rate <= 0.0 {
            return None;
        }
        let start = now.max(self.stall_until_s).max(self.synced_at_s);
        Some(start + self.work_left_at(now) / self.rate)
    }
}

/// Configuration of the attached observer (event log + metrics registry
/// + decision audit). See [`Simulation::with_observer`].
#[derive(Debug, Clone)]
pub struct ObserverConfig {
    /// Event-log ring capacity (most recent lines kept in memory and
    /// exported in the report's `events`).
    pub ring_capacity: usize,
    /// Optional JSONL file sink receiving *every* event line.
    pub sink_path: Option<std::path::PathBuf>,
    /// Record the decision audit trail (phase-1 orderings, MCKP
    /// allocations, placement and reclaim choices) as `Audit` events.
    pub audit: bool,
    /// Per-series retained-point capacity of the telemetry store
    /// (ring series with deterministic decimation; see
    /// [`lyra_obs::Telemetry`]).
    pub telemetry_capacity: usize,
    /// Alert rules evaluated against the telemetry gauges each epoch;
    /// fire/resolve transitions become `Alert` events in the log.
    pub alert_rules: Vec<lyra_obs::AlertRule>,
    /// Build the decision-provenance graph online (checkpoint-safe
    /// observer state; exported in the report's `provenance`).
    pub provenance: bool,
}

impl Default for ObserverConfig {
    fn default() -> Self {
        ObserverConfig {
            ring_capacity: 1 << 16,
            sink_path: None,
            audit: true,
            telemetry_capacity: lyra_obs::timeseries::DEFAULT_SERIES_CAPACITY,
            alert_rules: lyra_obs::default_rules(),
            provenance: true,
        }
    }
}

/// Attached observability state: the structured event log and the
/// metrics registry with its hourly snapshots.
struct Observer {
    log: EventLog,
    metrics: MetricsRegistry,
    snapshots: Vec<MetricsSnapshot>,
    audit: bool,
    /// Next simulated hour to snapshot.
    next_hour: u64,
    /// Online per-job delay attribution. Fed from `emit` so it sees
    /// every event even when the ring buffer drops old lines.
    lifecycle: lyra_obs::LifecycleTracker,
    /// Last emitted `SchedulerEpoch` shape; epochs are only logged when
    /// (launches, queued, running) changes, keeping quiet periods quiet.
    last_epoch: Option<(u32, u32, u32)>,
    /// Per-epoch scheduler-health series (ring buffers with
    /// deterministic decimation) plus the epoch-span / decision-latency
    /// histograms.
    telemetry: lyra_obs::Telemetry,
    /// Threshold + sustained-window rules over the telemetry gauges.
    alerts: lyra_obs::AlertEngine,
    /// Cumulative modelled RM latency already folded into the
    /// decision-latency histogram (per-epoch deltas are observed).
    rm_latency_seen_s: f64,
    /// When the current reclaim carry was first sampled, for the
    /// backlog-age gauge; `None` while no debt is open.
    carry_since_ms: Option<u64>,
    /// Online decision-provenance graph builder, fed from `emit` with
    /// each event's assigned seq (its `DecisionId`); `None` when
    /// provenance tracking is disabled.
    provenance: Option<lyra_obs::ProvenanceTracker>,
}

/// Fixed histogram bucket bounds for job-level durations, seconds
/// (1 min … 7 days, then overflow).
const DURATION_BUCKETS_S: &[f64] = &[
    60.0, 300.0, 900.0, 3_600.0, 7_200.0, 21_600.0, 43_200.0, 86_400.0, 172_800.0, 604_800.0,
];

/// Error from the simulation (policy/cluster inconsistencies).
#[derive(Debug)]
pub struct SimError(pub String);

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "simulation error: {}", self.0)
    }
}

impl std::error::Error for SimError {}

/// The incrementally-maintained scheduler snapshot.
///
/// Rebuilding the full [`Snapshot`] every epoch is the dominant
/// scheduler-tick cost at trace scale: it clones every pending spec,
/// every running placement and every server view even when the epoch
/// changed nothing. Instead the engine keeps one snapshot alive across
/// ticks and patches exactly what each event touched:
///
/// * `snap.pending` mirrors `Simulation::queue` in lockstep — entries
///   are inserted at the same position as the queue index they mirror,
///   and a pending job's view fields are static while queued. Removals
///   are *deferred*: a launch only records the job id in
///   `pending_dead`, and the next flush compacts the mirror in one
///   `retain` pass — a burst of launches into a load-deep queue would
///   otherwise memmove the ~200-byte tail views once per launch.
/// * `dirty_servers` marks occupancy changes (allocate/release/evict);
///   `structural` marks whitelist changes (loan/return/crash/recover),
///   which invalidate positions and force a server-view rebuild.
/// * `dirty_running` marks job indices whose running-view membership or
///   shape changed; remaining work drains continuously, so it is
///   refreshed for *every* running view each epoch.
#[derive(Debug, Default)]
struct SnapshotCache {
    snap: Snapshot,
    /// The cache has been fully built at least once.
    primed: bool,
    /// The whitelist changed: server views must be rebuilt wholesale.
    structural: bool,
    /// Servers whose occupancy (or group label) changed since the last
    /// refresh.
    dirty_servers: std::collections::BTreeSet<ServerId>,
    /// Job indices whose running-view membership or shape changed.
    dirty_running: std::collections::BTreeSet<usize>,
    /// Jobs dequeued since the last flush whose pending views are still
    /// physically present in `snap.pending`.
    pending_dead: std::collections::HashSet<JobId>,
}

/// Serialized form of the attached [`Observer`]: the event log is
/// captured as [`lyra_obs::EventLogState`] (ring contents + sink
/// cursor) and everything else is plain data.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ObserverState {
    log: lyra_obs::EventLogState,
    metrics: MetricsRegistry,
    snapshots: Vec<MetricsSnapshot>,
    audit: bool,
    next_hour: u64,
    lifecycle: lyra_obs::LifecycleTracker,
    last_epoch: Option<(u32, u32, u32)>,
    telemetry: lyra_obs::Telemetry,
    alerts: lyra_obs::AlertEngine,
    rm_latency_seen_s: f64,
    carry_since_ms: Option<u64>,
    provenance: Option<lyra_obs::ProvenanceTracker>,
}

/// The complete runtime state of a [`Simulation`] between two events —
/// everything [`crate::checkpoint::SimCheckpoint`] must persist so a
/// restored run replays bit-identically to an uninterrupted one.
///
/// Rebuildable structures are deliberately *not* captured: the policy,
/// orchestrator, inference scheduler and runtime estimator are
/// reconstructed from the scenario (only their RNG states are saved),
/// and the incremental snapshot cache is rebuilt on restore.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineState {
    config: SimConfig,
    cluster: ClusterState,
    jobs: Vec<SimJob>,
    queue: Vec<usize>,
    /// Event queue as a sorted vec (a `BinaryHeap` has no stable
    /// serialized order); the heap is rebuilt on restore.
    events: Vec<Event>,
    seq: u64,
    now_s: f64,
    completed: usize,
    arrived: usize,
    stuck_since_s: Option<f64>,
    training_usage: UsageIntegral,
    on_loan_usage: UsageIntegral,
    on_loan_servers: UsageIntegral,
    overall_usage: UsageIntegral,
    reclaims: Vec<ReclaimRecord>,
    loan_ops: usize,
    scaling_ops: usize,
    rm: ResourceManager,
    /// The *runtime* fault plan (it may contain events, such as the
    /// crash itself, that the scenario's generated plan does not), so
    /// queued `Fault(i)` indices keep resolving after restore.
    faults: Option<FaultPlan>,
    /// Raw fire-time RNG state.
    fault_rng: u64,
    fault_stats: FaultStats,
    /// Straggler slowdowns as pairs (maps serialize as pair arrays
    /// anyway; a vec keeps the shape explicit).
    slowdown: Vec<(ServerId, f64)>,
    drop_next_orch_tick: bool,
    reclaim_ledger: ReclaimLedger,
    /// Raw policy RNG state, for policies that consume randomness.
    policy_rng: Option<u64>,
    /// Raw orchestrator RNG state (`Random` reclaim policy draws).
    orchestrator_rng: Option<u64>,
    observer: Option<ObserverState>,
}

/// How a run ended: to completion with a report, or aborted by an
/// injected [`FaultKind::SchedulerCrash`] with the state to resume from.
#[derive(Debug)]
pub enum RunOutcome {
    /// The run drained normally; here is its report.
    Completed(Box<SimReport>),
    /// An injected scheduler crash aborted the run at a seeded instant.
    /// Persist the state via [`crate::checkpoint::SimCheckpoint`] and
    /// resume with [`Simulation::run_to_outcome`]; the resumed run's
    /// outputs are byte-identical to an uninterrupted run's.
    Crashed(Box<EngineState>),
}

/// The discrete-event simulation.
pub struct Simulation {
    /// Engine parameters.
    pub config: SimConfig,
    cluster: ClusterState,
    policy: Box<dyn JobScheduler>,
    orchestrator: Option<Orchestrator>,
    inference: Option<InferenceScheduler>,
    estimator: RuntimeEstimator,
    jobs: Vec<SimJob>,
    /// Pending job indices, (submit, id)-ordered.
    queue: Vec<usize>,
    events: BinaryHeap<Reverse<Event>>,
    seq: u64,
    now_s: f64,
    completed: usize,
    arrived: usize,
    stuck_since_s: Option<f64>,
    // Usage integrals.
    training_usage: UsageIntegral,
    on_loan_usage: UsageIntegral,
    on_loan_servers: UsageIntegral,
    overall_usage: UsageIntegral,
    reclaims: Vec<ReclaimRecord>,
    loan_ops: usize,
    scaling_ops: usize,
    /// The YARN-like control plane: every container/whitelist operation
    /// the run issued, with its modelled latency (§6).
    rm: ResourceManager,
    /// Inference-cluster total GPUs (for overall usage).
    inference_total_gpus: f64,
    // Fault injection.
    faults: Option<FaultPlan>,
    /// Fire-time rolls (checkpoint-restore failures), seeded from the
    /// plan so fault outcomes replay exactly.
    fault_rng: StdRng,
    fault_stats: FaultStats,
    /// Active straggler slowdown factors per server.
    slowdown: BTreeMap<ServerId, f64>,
    /// The next orchestrator tick was marked lost by a fault.
    drop_next_orch_tick: bool,
    /// Carried-forward reclaim debt (deadline + backoff state machine,
    /// see [`crate::faults::ReclaimLedger`]).
    reclaim_ledger: ReclaimLedger,
    /// The snapshot maintained incrementally across scheduler epochs
    /// (unused when `config.incremental_snapshot` is off).
    cache: SnapshotCache,
    /// The next scheduler epoch validates its snapshot (debug builds):
    /// armed at the invariant-auditor cadence instead of every tick.
    validate_snapshot: bool,
    /// Σ base GPUs over the pending queue, kept in lockstep by
    /// `enqueue`/`dequeue` so the per-epoch loan-demand check needn't
    /// walk the queue (it runs deep under load).
    pending_gpus: u64,
    /// Like `pending_gpus`, restricted to fungible jobs and weighted by
    /// the T4 worker multiplier for inelastic ones.
    pending_fungible_gpus: u64,
    /// Indices of jobs currently in `JobState::Running`, maintained at
    /// the four state transitions, so per-epoch scans skip the full jobs
    /// array (which grows with the whole trace).
    running_jobs: std::collections::BTreeSet<usize>,
    /// Σ `(w_max − workers) × gpus_per_worker` over running elastic
    /// fungible jobs — the scale-out term of loan demand. Maintained at
    /// every worker-count transition so the per-epoch demand check is
    /// O(1) instead of a walk over the running set.
    elastic_headroom_gpus: u64,
    /// Attached observability (event log + metrics + audit); `None`
    /// keeps the hot path free of instrumentation.
    observer: Option<Observer>,
    /// Per-phase span profile collected at the end of an observed run.
    profile: lyra_obs::Profile,
    /// Cluster-level delay-attribution rollup, reconciled and collected
    /// at the end of an observed run.
    attribution: lyra_obs::AttributionSummary,
    /// Victim job id → `DecisionId` of the `ReclaimChoice` that picked
    /// it, captured by `drain_audit_mapped` and consumed by
    /// `apply_preemption` within the same reclaim wave. Always empty
    /// between events, so it is deliberately *not* checkpointed.
    pending_preempt_decisions: std::collections::BTreeMap<u64, u64>,
}

/// GPUs a pending job contributes to loan-eligible demand: zero unless
/// fungible, and weighted by the T4 worker multiplier for inelastic jobs
/// (which must replicate their reference capacity worker-for-worker).
fn fungible_demand_gpus(spec: &JobSpec) -> u64 {
    if !spec.fungible {
        return 0;
    }
    let mult = if spec.is_elastic() {
        1
    } else {
        GpuType::T4.worker_multiplier(spec.reference_gpu)
    };
    u64::from(spec.base_gpus() * mult)
}

impl Simulation {
    /// Scale-out headroom a *running* job contributes to loan-eligible
    /// demand: elastic fungible jobs can absorb loaned capacity up to
    /// `w_max`. Callers are responsible for only counting running jobs.
    fn headroom_gpus(j: &SimJob) -> u64 {
        if j.spec.is_elastic() && j.spec.fungible {
            u64::from(j.spec.w_max().saturating_sub(j.workers) * j.spec.gpus_per_worker)
        } else {
            0
        }
    }

    /// Builds a simulation over a job list (must be id-renumbered
    /// `0..n` in submission order, as `lyra-trace` produces).
    ///
    /// `inference` enables capacity loaning; `None` simulates a fixed
    /// training cluster.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the job ids are not exactly `0..n` in
    /// order: the engine indexes `jobs[id]` by vector position, so a
    /// duplicate id would silently alias two jobs onto one slot and a
    /// gapped id would index out of bounds.
    pub fn new(
        config: SimConfig,
        cluster: ClusterState,
        policy: Box<dyn JobScheduler>,
        orchestrator: Option<Orchestrator>,
        inference: Option<InferenceScheduler>,
        estimator: RuntimeEstimator,
        specs: Vec<JobSpec>,
    ) -> Result<Self, SimError> {
        let inference_total_gpus = inference
            .as_ref()
            .map(|i| f64::from(i.total_servers * i.gpus_per_server))
            .unwrap_or(0.0);
        let mut sim = Simulation {
            config,
            cluster,
            policy,
            orchestrator,
            inference,
            estimator,
            jobs: Vec::with_capacity(specs.len()),
            queue: Vec::new(),
            events: BinaryHeap::new(),
            seq: 0,
            now_s: 0.0,
            completed: 0,
            arrived: 0,
            stuck_since_s: None,
            training_usage: UsageIntegral::new(),
            on_loan_usage: UsageIntegral::new(),
            on_loan_servers: UsageIntegral::new(),
            overall_usage: UsageIntegral::new(),
            reclaims: Vec::new(),
            loan_ops: 0,
            scaling_ops: 0,
            rm: ResourceManager::new(),
            inference_total_gpus,
            faults: None,
            fault_rng: StdRng::seed_from_u64(0),
            fault_stats: FaultStats::default(),
            slowdown: BTreeMap::new(),
            drop_next_orch_tick: false,
            reclaim_ledger: ReclaimLedger::new(),
            cache: SnapshotCache::default(),
            validate_snapshot: true,
            pending_gpus: 0,
            pending_fungible_gpus: 0,
            running_jobs: std::collections::BTreeSet::new(),
            elastic_headroom_gpus: 0,
            observer: None,
            profile: lyra_obs::Profile::default(),
            attribution: lyra_obs::AttributionSummary::default(),
            pending_preempt_decisions: std::collections::BTreeMap::new(),
        };
        if let Some(orch) = sim.orchestrator.as_mut() {
            orch.incremental = sim.config.incremental_reclaim;
        }
        let n = specs.len();
        for (i, spec) in specs.into_iter().enumerate() {
            if spec.id.0 as usize != i {
                return Err(SimError(format!(
                    "trace ids must be exactly 0..{n} in order: position {i} holds {id}",
                    id = spec.id,
                )));
            }
            let t = spec.submit_time_s;
            sim.jobs.push(SimJob::new(spec));
            sim.push_event(t, EventKind::Arrival(i));
        }
        sim.push_event(0.0, EventKind::SchedulerTick);
        if sim.orchestrator.is_some() {
            sim.push_event(0.0, EventKind::OrchestratorTick);
        }
        Ok(sim)
    }

    /// Attaches a fault plan: every scheduled fault becomes a
    /// first-class simulator event, and the plan's seed drives the
    /// fire-time rolls (checkpoint-restore failures), so runs with the
    /// same trace and plan are bit-reproducible.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault_rng = StdRng::seed_from_u64(plan.seed ^ 0x5EED_F417);
        for (i, ev) in plan.events.iter().enumerate() {
            self.push_event(ev.time_s, EventKind::Fault(i));
        }
        self.faults = Some(plan);
        self
    }

    /// Attaches an observer: the structured event log (ring buffer plus
    /// optional JSONL file sink), the metrics registry snapshotted per
    /// simulated hour, the decision audit trail and span timing for the
    /// hot paths. The report then carries `events`, `metrics` and
    /// `profile`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the file sink cannot be created.
    pub fn with_observer(mut self, cfg: ObserverConfig) -> std::io::Result<Self> {
        let mut log = EventLog::new(cfg.ring_capacity);
        if let Some(path) = &cfg.sink_path {
            log = log.with_sink(path)?;
        }
        let mut metrics = MetricsRegistry::default();
        metrics.histogram_register("sim.jct_s", DURATION_BUCKETS_S);
        metrics.histogram_register("sim.queue_s", DURATION_BUCKETS_S);
        self.observer = Some(Observer {
            log,
            metrics,
            snapshots: Vec::new(),
            audit: cfg.audit,
            next_hour: 0,
            lifecycle: lyra_obs::LifecycleTracker::new(),
            last_epoch: None,
            telemetry: lyra_obs::Telemetry::new(cfg.telemetry_capacity),
            alerts: lyra_obs::AlertEngine::new(cfg.alert_rules.clone()),
            rm_latency_seen_s: 0.0,
            carry_since_ms: None,
            provenance: cfg.provenance.then(lyra_obs::ProvenanceTracker::new),
        });
        Ok(self)
    }

    /// Emits `ev` into the event log (no-op without an observer).
    /// Returns the sequence number the event was emitted under — its
    /// stable `DecisionId` for provenance tracking.
    fn emit(&mut self, ev: SchedEvent) -> Option<u64> {
        if let Some(obs) = self.observer.as_mut() {
            let time_ms = (self.now_s.max(0.0) * 1000.0).round() as u64;
            obs.lifecycle.observe(time_ms, &ev);
            if let Some(prov) = obs.provenance.as_mut() {
                prov.observe(time_ms, obs.log.next_seq(), &ev);
            }
            Some(obs.log.emit(time_ms, ev))
        } else {
            None
        }
    }

    /// Increments a registry counter (no-op without an observer).
    fn count(&mut self, name: &str) {
        if let Some(obs) = self.observer.as_mut() {
            obs.metrics.counter_inc(name);
        }
    }

    /// Observes a value into a registered histogram (no-op without an
    /// observer).
    fn observe_histogram(&mut self, name: &str, value: f64) {
        if let Some(obs) = self.observer.as_mut() {
            obs.metrics.histogram_observe(name, value);
        }
    }

    /// Emits a `JobStall` announcing a progress stall of `pause_s`
    /// charged to `cause` (no-op without an observer or for zero-length
    /// pauses). The tracker replays the engine's stall arithmetic from
    /// these, so every `SimJob::stall` site must announce its pause.
    fn emit_stall(&mut self, job: u64, cause: lyra_obs::DelayCause, pause_s: f64) {
        if self.observer.is_none() || pause_s <= 0.0 {
            return;
        }
        let pause_ms = (pause_s * 1000.0).round() as u64;
        if pause_ms > 0 {
            self.emit(SchedEvent::JobStall {
                job,
                cause,
                pause_ms,
            });
        }
    }

    /// Worker-weighted straggler throughput factor of a job's current
    /// placement (1.0 = unaffected) — the same weighting
    /// [`compute_rate`](Self::compute_rate) applies.
    fn straggle_factor(&self, idx: usize) -> f64 {
        if self.slowdown.is_empty() {
            return 1.0;
        }
        let mut weighted = 0.0;
        let mut workers = 0.0;
        for (sid, w) in &self.jobs[idx].placement {
            let f = self.slowdown.get(sid).copied().unwrap_or(1.0);
            weighted += f64::from(*w) * f;
            workers += f64::from(*w);
        }
        if workers > 0.0 {
            weighted / workers
        } else {
            1.0
        }
    }

    /// Emits a `JobStraggle` with the job's current effective factor so
    /// the lifecycle tracker can open/close straggler episodes (no-op
    /// without an observer).
    fn note_straggle(&mut self, idx: usize) {
        if self.observer.is_none() {
            return;
        }
        let factor = self.straggle_factor(idx);
        let job = self.jobs[idx].spec.id.0;
        self.emit(SchedEvent::JobStraggle { job, factor });
    }

    /// Drains thread-local audit records into `Audit` events (no-op
    /// unless the observer records the audit trail).
    fn drain_audit(&mut self) {
        if !self.observer.as_ref().is_some_and(|o| o.audit) {
            return;
        }
        for rec in lyra_obs::audit::drain() {
            self.emit(SchedEvent::Audit(rec));
        }
    }

    /// Like [`drain_audit`](Self::drain_audit), additionally capturing
    /// each `ReclaimChoice` record's emitted seq (its `DecisionId`)
    /// keyed by every victim it names, so the `apply_preemption` calls
    /// that follow in the same reclaim wave can stamp `JobPreempt`
    /// events with the decision that picked them.
    fn drain_audit_mapped(&mut self) {
        if !self.observer.as_ref().is_some_and(|o| o.audit) {
            return;
        }
        debug_assert!(
            self.pending_preempt_decisions.is_empty(),
            "victim decision map must be consumed within one reclaim wave"
        );
        for rec in lyra_obs::audit::drain() {
            let victims: Vec<u64> = match &rec {
                lyra_obs::AuditRecord::ReclaimChoice { preempted, .. } => preempted.clone(),
                _ => Vec::new(),
            };
            if let Some(seq) = self.emit(SchedEvent::Audit(rec)) {
                for v in victims {
                    self.pending_preempt_decisions.insert(v, seq);
                }
            }
        }
    }

    /// Snapshots the metrics registry for every completed simulated hour
    /// up to `up_to_s`, stamping point-in-time gauges first.
    fn snapshot_metrics(&mut self, up_to_s: f64) {
        let Some(obs) = self.observer.as_ref() else {
            return;
        };
        let mut hour = obs.next_hour;
        if up_to_s < (hour + 1) as f64 * 3600.0 {
            return;
        }
        let queue_depth = self.queue.len() as f64;
        let running = self
            .jobs
            .iter()
            .filter(|j| j.state == JobState::Running)
            .count() as f64;
        let loaned = f64::from(self.cluster.loaned_count());
        let (train_used, train_total) = self.cluster.gpu_usage(PoolKind::Training);
        let (loan_used, loan_total) = self.cluster.gpu_usage(PoolKind::OnLoan);
        let obs = self.observer.as_mut().expect("checked above");
        obs.metrics.gauge_set("sim.queue.depth", queue_depth);
        obs.metrics.gauge_set("sim.jobs.running", running);
        obs.metrics.gauge_set("cluster.loaned.servers", loaned);
        obs.metrics
            .gauge_set("cluster.training.used_gpus", f64::from(train_used));
        obs.metrics
            .gauge_set("cluster.training.total_gpus", f64::from(train_total));
        obs.metrics
            .gauge_set("cluster.on_loan.used_gpus", f64::from(loan_used));
        obs.metrics
            .gauge_set("cluster.on_loan.total_gpus", f64::from(loan_total));
        while (hour + 1) as f64 * 3600.0 <= up_to_s {
            let snap = obs.metrics.snapshot(hour);
            obs.snapshots.push(snap);
            hour += 1;
        }
        obs.next_hour = hour;
    }

    /// Bounds-checked job lookup (trace ids are dense `0..n`).
    fn job_index(&self, job: JobId) -> Result<usize, SimError> {
        let idx = job.0 as usize;
        if idx < self.jobs.len() {
            Ok(idx)
        } else {
            Err(SimError(format!("{job} is not in the trace")))
        }
    }

    fn push_event(&mut self, time_s: f64, kind: EventKind) {
        // Ceil: a finish event scheduled a fraction of a millisecond early
        // would observe residual work.
        let time_ms = (time_s.max(0.0) * 1000.0).ceil() as u64;
        self.seq += 1;
        self.events.push(Reverse(Event {
            time_ms,
            seq: self.seq,
            kind,
        }));
    }

    /// Current service rate of a job from its placement.
    fn compute_rate(&self, job: &SimJob) -> f64 {
        let mut v100 = 0u32;
        let mut t4 = 0u32;
        for (sid, w) in &job.placement {
            match self.cluster.server(*sid).map(|s| s.gpu_type) {
                Some(GpuType::V100) => v100 += w,
                Some(GpuType::T4) => t4 += w,
                None => {}
            }
        }
        let total = v100 + t4;
        if total == 0 {
            return 0.0;
        }
        // Capability-weighted ideal rate with the heterogeneous penalty
        // for mixed device sets (lyra-elastic's model) and per-generation
        // speed factors, rescaled onto the job's scaling curve over the
        // total worker count.
        let groups = [
            HeteroGroup {
                gpu: GpuType::V100,
                workers: v100,
            },
            HeteroGroup {
                gpu: GpuType::T4,
                workers: t4,
            },
        ];
        let ideal_per_worker = hetero_rate_scaled(
            &groups,
            self.cluster.config.speed,
            self.config.hetero_efficiency,
        ) / f64::from(total);
        let speedup = job.spec.curve.speedup(total);
        let mut rate = speedup * ideal_per_worker;
        if !self.slowdown.is_empty() {
            // Straggling servers drag the job: worker-weighted average of
            // the per-server throughput factors (bucketed all-reduce hides
            // part of a slow host, so the job does not fall all the way to
            // the minimum).
            let mut weighted = 0.0;
            let mut workers = 0.0;
            for (sid, w) in &job.placement {
                let f = self.slowdown.get(sid).copied().unwrap_or(1.0);
                weighted += f64::from(*w) * f;
                workers += f64::from(*w);
            }
            if workers > 0.0 {
                rate *= weighted / workers;
            }
        }
        if self.config.tuned && job.spec.is_elastic() {
            let work = job.spec.work();
            let progress = if work > 0.0 {
                (1.0 - job.work_left / work).clamp(0.0, 1.0)
            } else {
                0.0
            };
            rate *= GoodputModel::typical(job.spec.w_min()).tuned_gain(speedup, total, progress);
        }
        rate
    }

    fn reschedule_finish(&mut self, idx: usize) {
        self.jobs[idx].generation += 1;
        if let Some(t) = self.jobs[idx].finish_time(self.now_s) {
            let generation = self.jobs[idx].generation;
            self.push_event(t, EventKind::Finish(idx, generation));
        }
    }

    /// Advances the usage integrals to `now` with the pre-event occupancy.
    fn advance_usage(&mut self, now: f64) {
        let (t_used, t_total) = self.cluster.gpu_usage(PoolKind::Training);
        let (l_used, l_total) = self.cluster.gpu_usage(PoolKind::OnLoan);
        self.training_usage
            .advance(now, f64::from(t_used), f64::from(t_total));
        self.on_loan_usage
            .advance(now, f64::from(l_used), f64::from(l_total));
        let loaned_ids = self.cluster.loaned_ids();
        let busy_servers = loaned_ids
            .iter()
            .filter(|sid| self.cluster.server(**sid).is_some_and(|s| !s.is_empty()))
            .count();
        self.on_loan_servers
            .advance(now, busy_servers as f64, loaned_ids.len() as f64);
        let inf_busy = self
            .inference
            .as_ref()
            .map(|i| f64::from(i.trace.gpus_busy_at(self.now_s)))
            .unwrap_or(0.0);
        let overall_busy = f64::from(t_used) + f64::from(l_used) + inf_busy;
        let overall_total = f64::from(t_total) + self.inference_total_gpus;
        self.overall_usage.advance(now, overall_busy, overall_total);
    }

    /// Compacts deferred pending-mirror removals: one `retain` pass
    /// drops every view whose job has been dequeued since the last
    /// flush. Must run before anything reads the mirror or computes a
    /// queue-position into it.
    fn flush_pending_dead(&mut self) {
        if self.cache.pending_dead.is_empty() {
            return;
        }
        let dead = &self.cache.pending_dead;
        self.cache.snap.pending.retain(|p| !dead.contains(&p.spec.id));
        self.cache.pending_dead.clear();
    }

    fn enqueue(&mut self, idx: usize) {
        if self.config.incremental_snapshot {
            self.flush_pending_dead();
        }
        let pos = self
            .queue
            .binary_search_by(|&j| {
                self.jobs[j]
                    .spec
                    .submit_time_s
                    .total_cmp(&self.jobs[idx].spec.submit_time_s)
                    .then(self.jobs[j].spec.id.cmp(&self.jobs[idx].spec.id))
            })
            .unwrap_or_else(|p| p);
        self.queue.insert(pos, idx);
        self.pending_gpus += u64::from(self.jobs[idx].spec.base_gpus());
        self.pending_fungible_gpus += fungible_demand_gpus(&self.jobs[idx].spec);
        self.jobs[idx].enqueued_at_s = self.now_s.max(self.jobs[idx].spec.submit_time_s);
        if self.config.incremental_snapshot {
            // Mirror the queue insert. A pending view is static while
            // queued (work_left and preemptions only change before a job
            // re-enters the queue), so it is computed once here.
            let j = &self.jobs[idx];
            let est_full = self
                .estimator
                .estimate(j.spec.id, j.spec.base_running_time());
            let work = j.spec.work().max(f64::MIN_POSITIVE);
            self.cache.snap.pending.insert(
                pos,
                PendingJobView {
                    spec: j.spec.clone(),
                    est_running_time_s: est_full * (j.work_left / work),
                    work_left: j.work_left,
                    preemptions: j.record.preemptions,
                },
            );
        }
    }

    /// Removes the launched job `idx` from the queue (and its mirrored
    /// pending view). The queue is kept sorted by `(submit_time, id)`
    /// by [`Simulation::enqueue`]'s binary insert, so the position is a
    /// binary search rather than a linear scan of a load-deep queue.
    fn dequeue(&mut self, idx: usize) {
        let submit = self.jobs[idx].spec.submit_time_s;
        let id = self.jobs[idx].spec.id;
        if let Ok(pos) = self.queue.binary_search_by(|&j| {
            self.jobs[j]
                .spec
                .submit_time_s
                .total_cmp(&submit)
                .then(self.jobs[j].spec.id.cmp(&id))
        }) {
            self.queue.remove(pos);
            self.pending_gpus -= u64::from(self.jobs[idx].spec.base_gpus());
            self.pending_fungible_gpus -= fungible_demand_gpus(&self.jobs[idx].spec);
            if self.config.incremental_snapshot {
                self.cache.pending_dead.insert(id);
            }
        }
    }

    /// Marks the servers of an assignment occupancy-dirty.
    fn mark_servers_dirty(&mut self, assignment: &[(ServerId, u32)]) {
        if self.config.incremental_snapshot {
            for (sid, _) in assignment {
                self.cache.dirty_servers.insert(*sid);
            }
        }
    }

    /// Marks a job's running view as membership/shape-dirty.
    fn mark_running_dirty(&mut self, idx: usize) {
        if self.config.incremental_snapshot {
            self.cache.dirty_running.insert(idx);
        }
    }

    /// Marks the server whitelist as changed: positions in the cached
    /// server views are invalid, so the next refresh rebuilds them.
    fn mark_structural(&mut self) {
        if self.config.incremental_snapshot {
            self.cache.structural = true;
        }
    }

    fn build_snapshot(&self) -> Snapshot {
        let pending = self
            .queue
            .iter()
            .map(|&i| {
                let j = &self.jobs[i];
                let est_full = self
                    .estimator
                    .estimate(j.spec.id, j.spec.base_running_time());
                let work = j.spec.work().max(f64::MIN_POSITIVE);
                PendingJobView {
                    spec: j.spec.clone(),
                    est_running_time_s: est_full * (j.work_left / work),
                    work_left: j.work_left,
                    preemptions: j.record.preemptions,
                }
            })
            .collect();
        let running = self
            .jobs
            .iter()
            .filter(|j| j.state == JobState::Running && j.spec.is_elastic())
            .map(|j| RunningJobView {
                spec: j.spec.clone(),
                workers: j.workers,
                work_left: j.work_left_at(self.now_s),
                placement: j.placement.clone(),
                flexible_workers: j.flexible_workers,
                flex_placement: j.flex_placement.clone(),
            })
            .collect();
        Snapshot {
            time_s: self.now_s,
            servers: self.cluster.server_views(),
            pending,
            running,
        }
    }

    /// Brings the incrementally-maintained snapshot up to `now`. See
    /// [`SnapshotCache`] for the dirty-tracking contract.
    fn refresh_snapshot(&mut self) {
        let _timing = lyra_obs::span::span("sim.snapshot_refresh");
        self.flush_pending_dead();
        let now = self.now_s;
        let cache = &mut self.cache;
        let first = !cache.primed;
        if first || cache.structural {
            cache.snap.servers.clear();
            cache.snap.servers.extend(self.cluster.server_views());
        } else {
            // Server views are whitelist-ordered (ascending ids), so an
            // unchanged whitelist means dirty servers patch in place.
            for &sid in &cache.dirty_servers {
                if let Ok(i) = cache.snap.servers.binary_search_by_key(&sid, |v| v.id) {
                    if let Some(s) = self.cluster.server(sid) {
                        cache.snap.servers[i] = s.view();
                    }
                }
            }
        }
        cache.structural = false;
        cache.dirty_servers.clear();
        if first {
            cache.snap.running.clear();
            cache.snap.running.extend(
                self.jobs
                    .iter()
                    .filter(|j| j.state == JobState::Running && j.spec.is_elastic())
                    .map(|j| RunningJobView {
                        spec: j.spec.clone(),
                        workers: j.workers,
                        work_left: j.work_left,
                        placement: j.placement.clone(),
                        flexible_workers: j.flexible_workers,
                        flex_placement: j.flex_placement.clone(),
                    }),
            );
        } else {
            // Running views are job-id-ordered (trace ids are dense and
            // ascend with the jobs vec), so membership reconciles by
            // binary search.
            for &idx in &cache.dirty_running {
                let j = &self.jobs[idx];
                let wanted = j.state == JobState::Running && j.spec.is_elastic();
                match cache
                    .snap
                    .running
                    .binary_search_by_key(&j.spec.id, |r| r.spec.id)
                {
                    Ok(i) if wanted => {
                        let r = &mut cache.snap.running[i];
                        r.workers = j.workers;
                        r.flexible_workers = j.flexible_workers;
                        r.placement.clone_from(&j.placement);
                        r.flex_placement.clone_from(&j.flex_placement);
                    }
                    Ok(i) => {
                        cache.snap.running.remove(i);
                    }
                    Err(i) if wanted => {
                        cache.snap.running.insert(
                            i,
                            RunningJobView {
                                spec: j.spec.clone(),
                                workers: j.workers,
                                work_left: j.work_left,
                                placement: j.placement.clone(),
                                flexible_workers: j.flexible_workers,
                                flex_placement: j.flex_placement.clone(),
                            },
                        );
                    }
                    Err(_) => {}
                }
            }
        }
        cache.dirty_running.clear();
        cache.primed = true;
        // Remaining work drains continuously between events: refresh it
        // for every running view, not just the dirty ones.
        for r in &mut cache.snap.running {
            r.work_left = self.jobs[r.spec.id.0 as usize].work_left_at(now);
        }
        cache.snap.time_s = now;
    }

    fn merge_assignment(into: &mut Vec<(ServerId, u32)>, add: &[(ServerId, u32)]) {
        for (sid, w) in add {
            match into.iter_mut().find(|(s, _)| s == sid) {
                Some(slot) => slot.1 += w,
                None => into.push((*sid, *w)),
            }
        }
    }

    fn remove_assignment(
        from: &mut Vec<(ServerId, u32)>,
        remove: &[(ServerId, u32)],
    ) -> Result<(), SimError> {
        for (sid, w) in remove {
            match from.iter_mut().find(|(s, _)| s == sid) {
                Some(slot) if slot.1 >= *w => slot.1 -= w,
                _ => {
                    return Err(SimError(format!(
                        "removing {w} workers from {sid} not present"
                    )))
                }
            }
        }
        from.retain(|(_, w)| *w > 0);
        Ok(())
    }

    fn apply_action(&mut self, action: &Action) -> Result<(), SimError> {
        match action {
            Action::Launch {
                job,
                workers,
                placement,
            } => {
                let idx = self.job_index(*job)?;
                if self.jobs[idx].state != JobState::Pending {
                    return Err(SimError(format!("{job} launched but not pending")));
                }
                let gpw = self.jobs[idx].spec.gpus_per_worker;
                self.cluster
                    .allocate(*job, placement, gpw, ServerGroup::Base)
                    .map_err(|e| SimError(e.to_string()))?;
                self.dequeue(idx);
                self.mark_servers_dirty(placement);
                self.mark_running_dirty(idx);
                for (sid, w) in placement {
                    self.rm.submit(RmOp::LaunchContainers {
                        job: *job,
                        server: *sid,
                        workers: *w,
                    });
                }
                let now = self.now_s;
                self.running_jobs.insert(idx);
                let j = &mut self.jobs[idx];
                j.state = JobState::Running;
                j.workers = *workers;
                j.flexible_workers = 0;
                j.placement = placement.clone();
                j.flex_placement.clear();
                j.record.queue_s += now - j.enqueued_at_s;
                if j.record.first_start_s.is_none() {
                    j.record.first_start_s = Some(now);
                }
                if placement
                    .iter()
                    .any(|(sid, _)| self.cluster.is_loaned(*sid))
                {
                    j.record.ran_on_loan = true;
                }
                j.synced_at_s = now;
                j.stall_until_s = now;
                let launch_delay_s = self.config.launch_delay_s;
                let resume_s = j.resume_overhead_s;
                let resume_cause = j.resume_cause.take();
                j.resume_overhead_s = 0.0;
                j.stall(now, launch_delay_s + resume_s);
                if j.spec.is_elastic() {
                    j.controller = Some(ElasticController::new(
                        *workers,
                        self.config.rendezvous_pause_s,
                    ));
                }
                self.elastic_headroom_gpus += Self::headroom_gpus(&self.jobs[idx]);
                self.jobs[idx].rate = self.compute_rate(&self.jobs[idx]);
                self.reschedule_finish(idx);
                if self.observer.is_some() {
                    let on_loan = placement
                        .iter()
                        .any(|(sid, _)| self.cluster.is_loaned(*sid));
                    let servers = placement.iter().map(|(sid, _)| sid.0).collect();
                    self.emit(SchedEvent::JobStart {
                        job: job.0,
                        workers: *workers,
                        on_loan,
                        servers,
                    });
                    self.count("sim.jobs.started");
                    // Announce the launch pause split by cause: the
                    // fixed launch delay, then any carried resume
                    // overhead (checkpoint restore / restart).
                    self.emit_stall(job.0, lyra_obs::DelayCause::LaunchOverhead, launch_delay_s);
                    self.emit_stall(
                        job.0,
                        resume_cause.unwrap_or(lyra_obs::DelayCause::LaunchOverhead),
                        resume_s,
                    );
                    if !self.slowdown.is_empty() {
                        self.note_straggle(idx);
                    }
                }
            }
            Action::ScaleOut {
                job,
                extra,
                placement,
            } => {
                let idx = self.job_index(*job)?;
                if self.jobs[idx].state != JobState::Running {
                    return Err(SimError(format!("{job} scaled out but not running")));
                }
                let gpw = self.jobs[idx].spec.gpus_per_worker;
                let group = if self.config.special_placement {
                    ServerGroup::Flexible
                } else {
                    ServerGroup::Base
                };
                self.cluster
                    .allocate(*job, placement, gpw, group)
                    .map_err(|e| SimError(e.to_string()))?;
                self.mark_servers_dirty(placement);
                self.mark_running_dirty(idx);
                for (sid, w) in placement {
                    self.rm.submit(RmOp::LaunchContainers {
                        job: *job,
                        server: *sid,
                        workers: *w,
                    });
                }
                let now = self.now_s;
                let default_pause = self.config.rendezvous_pause_s;
                let headroom_before = Self::headroom_gpus(&self.jobs[idx]);
                let j = &mut self.jobs[idx];
                j.sync(now);
                j.workers += extra;
                j.flexible_workers += extra;
                Self::merge_assignment(&mut j.placement, placement);
                Self::merge_assignment(&mut j.flex_placement, placement);
                j.record.scaling_ops += 1;
                let pause = match j.controller.as_mut() {
                    Some(c) => c
                        .resize(j.workers)
                        .map(|ev| match ev {
                            lyra_elastic::ControllerEvent::Rescaled { pause_s, .. } => pause_s,
                        })
                        .unwrap_or(0.0),
                    None => default_pause,
                };
                j.stall(now, pause);
                let expand_cost = j.spec.expand_cost_s;
                if expand_cost > 0.0 {
                    // Malleable jobs charge an explicit expand cost on top
                    // of the rendezvous pause.
                    j.stall(now, expand_cost);
                }
                if placement
                    .iter()
                    .any(|(sid, _)| self.cluster.is_loaned(*sid))
                {
                    j.record.ran_on_loan = true;
                }
                self.scaling_ops += 1;
                self.elastic_headroom_gpus = self.elastic_headroom_gpus - headroom_before
                    + Self::headroom_gpus(&self.jobs[idx]);
                self.jobs[idx].rate = self.compute_rate(&self.jobs[idx]);
                self.reschedule_finish(idx);
                if self.observer.is_some() {
                    let workers_now = self.jobs[idx].workers;
                    let on_loan = placement
                        .iter()
                        .any(|(sid, _)| self.cluster.is_loaned(*sid));
                    let servers = placement.iter().map(|(sid, _)| sid.0).collect();
                    self.emit(SchedEvent::JobScaleOut {
                        job: job.0,
                        delta: *extra,
                        workers: workers_now,
                        on_loan,
                        servers,
                    });
                    self.count("sim.scale.out");
                    if self.jobs[idx].controller.is_some() && pause > 0.0 {
                        self.emit(SchedEvent::ControllerRescale {
                            job: job.0,
                            workers: workers_now,
                            pause_s: pause,
                        });
                        self.count("elastic.rendezvous.ops");
                    }
                    self.emit_stall(job.0, lyra_obs::DelayCause::Rendezvous, pause);
                    self.emit_stall(job.0, lyra_obs::DelayCause::LaunchOverhead, expand_cost);
                    if !self.slowdown.is_empty() {
                        self.note_straggle(idx);
                    }
                }
            }
            Action::ScaleIn { job, removal } => {
                let idx = self.job_index(*job)?;
                if self.jobs[idx].state != JobState::Running {
                    return Err(SimError(format!("{job} scaled in but not running")));
                }
                let gpw = self.jobs[idx].spec.gpus_per_worker;
                self.cluster
                    .release(*job, removal, gpw)
                    .map_err(|e| SimError(e.to_string()))?;
                self.mark_servers_dirty(removal);
                self.mark_running_dirty(idx);
                for (sid, w) in removal {
                    self.rm.submit(RmOp::KillContainers {
                        job: *job,
                        server: *sid,
                        workers: *w,
                    });
                }
                let now = self.now_s;
                let pause = self.config.rendezvous_pause_s;
                let headroom_before = Self::headroom_gpus(&self.jobs[idx]);
                let j = &mut self.jobs[idx];
                j.sync(now);
                let removed: u32 = removal.iter().map(|(_, w)| w).sum();
                if removed > j.flexible_workers {
                    return Err(SimError(format!(
                        "{job} scale-in removes {removed} > {} flexible",
                        j.flexible_workers
                    )));
                }
                Self::remove_assignment(&mut j.placement, removal)?;
                Self::remove_assignment(&mut j.flex_placement, removal)?;
                j.workers -= removed;
                j.flexible_workers -= removed;
                j.record.scaling_ops += 1;
                let pause = match j.controller.as_mut() {
                    Some(c) => c
                        .resize(j.workers)
                        .map(|ev| match ev {
                            lyra_elastic::ControllerEvent::Rescaled { pause_s, .. } => pause_s,
                        })
                        .unwrap_or(0.0),
                    None => pause,
                };
                j.stall(now, pause);
                let shrink_cost = j.spec.shrink_cost_s;
                if shrink_cost > 0.0 {
                    // Malleable jobs charge an explicit shrink cost on top
                    // of the rendezvous pause.
                    j.stall(now, shrink_cost);
                }
                self.scaling_ops += 1;
                self.elastic_headroom_gpus = self.elastic_headroom_gpus - headroom_before
                    + Self::headroom_gpus(&self.jobs[idx]);
                self.jobs[idx].rate = self.compute_rate(&self.jobs[idx]);
                self.reschedule_finish(idx);
                if self.observer.is_some() {
                    let workers_now = self.jobs[idx].workers;
                    self.emit(SchedEvent::JobScaleIn {
                        job: job.0,
                        delta: removed,
                        workers: workers_now,
                    });
                    self.count("sim.scale.in");
                    if self.jobs[idx].controller.is_some() && pause > 0.0 {
                        self.emit(SchedEvent::ControllerRescale {
                            job: job.0,
                            workers: workers_now,
                            pause_s: pause,
                        });
                        self.count("elastic.rendezvous.ops");
                    }
                    // A policy scale-in means the knapsack withdrew
                    // flexible workers this round.
                    self.emit_stall(job.0, lyra_obs::DelayCause::MckpDenial, pause);
                    self.emit_stall(job.0, lyra_obs::DelayCause::LoanScaleIn, shrink_cost);
                    if !self.slowdown.is_empty() {
                        self.note_straggle(idx);
                    }
                }
            }
        }
        Ok(())
    }

    /// Applies a forced scale-in from the orchestrator's flexible-group
    /// release: workers of `job` on `server` are gone (cluster side
    /// already updated).
    fn apply_flex_release(&mut self, job: JobId, server: ServerId, gpus: u32) -> Result<(), SimError> {
        let idx = self.job_index(job)?;
        let now = self.now_s;
        let pause = self.config.rendezvous_pause_s;
        let headroom_before = Self::headroom_gpus(&self.jobs[idx]);
        let j = &mut self.jobs[idx];
        if j.state != JobState::Running {
            return Ok(());
        }
        j.sync(now);
        let mut workers = gpus / j.spec.gpus_per_worker.max(1);
        // A flexible-group server hosts only flexible workers of this job;
        // clamp defensively so inconsistent labels can never underflow the
        // bookkeeping.
        let have = j
            .flex_placement
            .iter()
            .find(|(s, _)| *s == server)
            .map_or(0, |(_, w)| *w);
        debug_assert!(workers <= have, "{job} flex release exceeds flex workers");
        workers = workers.min(have);
        if workers == 0 {
            return Ok(());
        }
        let _ = Self::remove_assignment(&mut j.placement, &[(server, workers)]);
        let _ = Self::remove_assignment(&mut j.flex_placement, &[(server, workers)]);
        j.workers = j.workers.saturating_sub(workers);
        j.flexible_workers = j.flexible_workers.saturating_sub(workers);
        j.record.scaling_ops += 1;
        let pause = match j.controller.as_mut() {
            Some(c) => c
                .resize(j.workers)
                .map(|ev| match ev {
                    lyra_elastic::ControllerEvent::Rescaled { pause_s, .. } => pause_s,
                })
                .unwrap_or(0.0),
            None => pause,
        };
        j.stall(now, pause);
        let shrink_cost = j.spec.shrink_cost_s;
        if shrink_cost > 0.0 {
            // A forced flex release is still a shrink; malleable jobs pay
            // their explicit shrink cost here too.
            j.stall(now, shrink_cost);
        }
        self.mark_servers_dirty(&[(server, workers)]);
        self.mark_running_dirty(idx);
        self.scaling_ops += 1;
        self.elastic_headroom_gpus =
            self.elastic_headroom_gpus - headroom_before + Self::headroom_gpus(&self.jobs[idx]);
        self.jobs[idx].rate = self.compute_rate(&self.jobs[idx]);
        self.reschedule_finish(idx);
        if self.observer.is_some() {
            self.emit(SchedEvent::FlexRelease {
                job: job.0,
                server: server.0,
                workers,
            });
            self.count("cluster.flex_release.ops");
            if self.jobs[idx].controller.is_some() && pause > 0.0 {
                let workers_now = self.jobs[idx].workers;
                self.emit(SchedEvent::ControllerRescale {
                    job: job.0,
                    workers: workers_now,
                    pause_s: pause,
                });
                self.count("elastic.rendezvous.ops");
            }
            self.emit_stall(job.0, lyra_obs::DelayCause::LoanScaleIn, pause);
            self.emit_stall(job.0, lyra_obs::DelayCause::LoanScaleIn, shrink_cost);
            if !self.slowdown.is_empty() {
                self.note_straggle(idx);
            }
        }
        Ok(())
    }

    /// Preempts a running job (cluster side already evicted).
    fn apply_preemption(&mut self, job: JobId) -> Result<(), SimError> {
        let idx = self.job_index(job)?;
        let now = self.now_s;
        let overhead = self.config.preemption_overhead_s;
        {
            let j = &mut self.jobs[idx];
            if j.state != JobState::Running {
                return Ok(());
            }
            if self.running_jobs.remove(&idx) {
                self.elastic_headroom_gpus -= Self::headroom_gpus(&self.jobs[idx]);
            }
            let j = &mut self.jobs[idx];
            j.sync(now);
            j.state = JobState::Pending;
            j.workers = 0;
            j.flexible_workers = 0;
            j.placement.clear();
            j.flex_placement.clear();
            j.rate = 0.0;
            j.generation += 1; // cancel in-flight finish
            j.record.preemptions += 1;
            if j.spec.checkpointing {
                // Resume from the last completed checkpoint
                // (CheckFreq-style periodic checkpoints) and pay the
                // save/restore overhead.
                let policy = lyra_elastic::CheckpointPolicy {
                    interval_work: self.config.checkpoint_interval_work.max(1.0),
                    overhead_s: overhead,
                };
                let done = j.spec.work() - j.work_left;
                j.work_left = j.spec.work() - policy.preserved_work(done);
                j.resume_overhead_s = policy.overhead_s;
                j.resume_cause = Some(lyra_obs::DelayCause::CheckpointRestore);
            } else {
                // All progress lost (§4's common no-checkpoint case).
                j.work_left = j.spec.work();
                j.resume_overhead_s = overhead;
                j.resume_cause = Some(lyra_obs::DelayCause::ReclaimPreemption);
            }
        }
        self.mark_running_dirty(idx);
        self.enqueue(idx);
        if self.observer.is_some() {
            let checkpointed = self.jobs[idx].spec.checkpointing;
            let decision = self.pending_preempt_decisions.remove(&job.0);
            self.emit(SchedEvent::JobPreempt {
                job: job.0,
                checkpointed,
                decision,
            });
            self.count("sim.jobs.preemptions");
        }
        Ok(())
    }

    /// Fires the `i`-th event of the attached fault plan.
    fn handle_fault(&mut self, i: usize) -> Result<(), SimError> {
        let Some(plan) = self.faults.as_ref() else {
            return Ok(());
        };
        let Some(event) = plan.events.get(i).copied() else {
            return Ok(());
        };
        if matches!(event.kind, FaultKind::SchedulerCrash) {
            // Crashes are intercepted in the run loop before dispatch
            // and must stay invisible in every observable; this arm only
            // exists so an unintercepted crash event (impossible today)
            // could never emit or count anything.
            return Ok(());
        }
        let include_loaned = plan.include_loaned;
        self.fault_stats.injected += 1;
        if self.observer.is_some() {
            self.emit(SchedEvent::Fault {
                kind: "injected".to_string(),
                target: i as u64,
            });
            self.count("faults.injected");
        }
        match event.kind {
            FaultKind::ServerCrash {
                selector,
                recovery_s,
            } => {
                let eligible: Vec<ServerId> = self
                    .cluster
                    .server_views()
                    .iter()
                    .filter(|v| include_loaned || v.pool == PoolKind::Training)
                    .map(|v| v.id)
                    .collect();
                if eligible.is_empty() {
                    return Ok(());
                }
                let sid = eligible[(selector as usize) % eligible.len()];
                let victims = self
                    .cluster
                    .crash_server(sid)
                    .map_err(|e| SimError(e.to_string()))?;
                self.mark_structural();
                self.rm.submit(RmOp::MarkServerDown(sid));
                self.slowdown.remove(&sid);
                self.fault_stats.server_crashes += 1;
                self.emit(SchedEvent::Fault {
                    kind: "server_crash".to_string(),
                    target: u64::from(sid.0),
                });
                for (job, gpus) in victims {
                    self.handle_job_worker_loss(job, sid, gpus)?;
                }
                self.push_event(
                    self.now_s + recovery_s.max(1.0),
                    EventKind::ServerRecover(sid),
                );
            }
            FaultKind::WorkerFailure { selector } => {
                let busy: Vec<ServerId> = self
                    .cluster
                    .server_views()
                    .iter()
                    .filter(|v| v.used_gpus() > 0)
                    .map(|v| v.id)
                    .collect();
                if busy.is_empty() {
                    return Ok(());
                }
                let sid = busy[(selector as usize) % busy.len()];
                let jobs: Vec<(JobId, u32)> = match self.cluster.server(sid) {
                    Some(s) => s.jobs().collect(),
                    None => return Ok(()),
                };
                if jobs.is_empty() {
                    return Ok(());
                }
                // Second, independent coordinate of the same draw picks
                // the job on the server.
                let (job, _) = jobs[((selector >> 32) as usize) % jobs.len()];
                self.fault_stats.worker_failures += 1;
                self.emit(SchedEvent::Fault {
                    kind: "worker_failure".to_string(),
                    target: job.0,
                });
                let idx = self.job_index(job)?;
                let gpw = self.jobs[idx].spec.gpus_per_worker.max(1);
                let flex_there = self.jobs[idx]
                    .flex_placement
                    .iter()
                    .find(|(s, _)| *s == sid)
                    .map_or(0, |(_, w)| *w);
                if self.jobs[idx].spec.is_elastic() && flex_there > 0 {
                    // The dead container hosted a flexible worker: the
                    // collective re-forms one member short.
                    self.cluster
                        .release(job, &[(sid, 1)], gpw)
                        .map_err(|e| SimError(e.to_string()))?;
                    self.rm.submit(RmOp::KillContainers {
                        job,
                        server: sid,
                        workers: 1,
                    });
                    self.apply_worker_loss(idx, sid, 1);
                } else {
                    self.kill_job_for_fault(idx, None)?;
                }
            }
            FaultKind::Straggler {
                selector,
                factor,
                duration_s,
            } => {
                let eligible: Vec<ServerId> = self
                    .cluster
                    .server_views()
                    .iter()
                    .filter(|v| include_loaned || v.pool == PoolKind::Training)
                    .map(|v| v.id)
                    .collect();
                if eligible.is_empty() {
                    return Ok(());
                }
                let sid = eligible[(selector as usize) % eligible.len()];
                self.slowdown.insert(sid, factor.clamp(0.01, 1.0));
                self.fault_stats.stragglers += 1;
                self.emit(SchedEvent::Fault {
                    kind: "straggler".to_string(),
                    target: u64::from(sid.0),
                });
                self.push_event(
                    self.now_s + duration_s.max(1.0),
                    EventKind::StragglerEnd(sid),
                );
                self.recompute_rates_on(sid);
            }
            FaultKind::DropOrchestratorTick => {
                self.drop_next_orch_tick = true;
                self.fault_stats.dropped_ticks += 1;
                self.emit(SchedEvent::Fault {
                    kind: "dropped_tick".to_string(),
                    target: 0,
                });
            }
            // Handled by the early return above, before anything counted.
            FaultKind::SchedulerCrash => {}
        }
        Ok(())
    }

    /// A running job lost the workers it had on `server` (`gpus` GPUs
    /// there, cluster side already freed). Elastic jobs whose lost
    /// workers were all flexible absorb the loss by scaling in around
    /// the dead server; anything else dies and restarts.
    fn handle_job_worker_loss(
        &mut self,
        job: JobId,
        server: ServerId,
        gpus: u32,
    ) -> Result<(), SimError> {
        let idx = self.job_index(job)?;
        if self.jobs[idx].state != JobState::Running {
            return Ok(());
        }
        let total_there = self.jobs[idx]
            .placement
            .iter()
            .find(|(s, _)| *s == server)
            .map_or(0, |(_, w)| *w);
        let flex_there = self.jobs[idx]
            .flex_placement
            .iter()
            .find(|(s, _)| *s == server)
            .map_or(0, |(_, w)| *w);
        let gpw = self.jobs[idx].spec.gpus_per_worker.max(1);
        debug_assert_eq!(total_there * gpw, gpus, "{job} placement out of sync");
        if self.jobs[idx].spec.is_elastic() && total_there > 0 && total_there == flex_there {
            // Only flexible workers lived there: membership shrinks, the
            // base demand survives, no restart needed.
            self.apply_worker_loss(idx, server, total_there);
        } else {
            self.kill_job_for_fault(idx, Some(server))?;
        }
        Ok(())
    }

    /// Shrinks an elastic job in place after an involuntary worker loss
    /// (sim-side bookkeeping; the cluster already freed the GPUs).
    fn apply_worker_loss(&mut self, idx: usize, server: ServerId, workers: u32) {
        let now = self.now_s;
        let default_pause = self.config.rendezvous_pause_s;
        let headroom_before = Self::headroom_gpus(&self.jobs[idx]);
        let j = &mut self.jobs[idx];
        j.sync(now);
        let _ = Self::remove_assignment(&mut j.placement, &[(server, workers)]);
        let _ = Self::remove_assignment(&mut j.flex_placement, &[(server, workers)]);
        j.workers = j.workers.saturating_sub(workers);
        j.flexible_workers = j.flexible_workers.saturating_sub(workers);
        j.record.scaling_ops += 1;
        let pause = match j.controller.as_mut() {
            Some(c) => c
                .workers_lost(j.workers)
                .map(|ev| match ev {
                    lyra_elastic::ControllerEvent::Rescaled { pause_s, .. } => pause_s,
                })
                .unwrap_or(0.0),
            None => default_pause,
        };
        j.stall(now, pause);
        self.mark_servers_dirty(&[(server, workers)]);
        self.mark_running_dirty(idx);
        self.fault_stats.elastic_absorbed += 1;
        self.scaling_ops += 1;
        self.elastic_headroom_gpus =
            self.elastic_headroom_gpus - headroom_before + Self::headroom_gpus(&self.jobs[idx]);
        self.jobs[idx].rate = self.compute_rate(&self.jobs[idx]);
        self.reschedule_finish(idx);
        if self.observer.is_some() {
            let job = self.jobs[idx].spec.id.0;
            self.emit(SchedEvent::Fault {
                kind: "elastic_absorbed".to_string(),
                target: job,
            });
            self.emit_stall(job, lyra_obs::DelayCause::FaultRestart, pause);
            if !self.slowdown.is_empty() {
                self.note_straggle(idx);
            }
        }
    }

    /// Kills a running job because of a fault: surviving containers are
    /// stopped, progress rolls back to the last checkpoint (when the
    /// restore succeeds) or to zero, and the job re-queues paying the
    /// preemption overhead. `crashed` is the server whose allocation the
    /// cluster already dropped.
    fn kill_job_for_fault(&mut self, idx: usize, crashed: Option<ServerId>) -> Result<(), SimError> {
        let job = self.jobs[idx].spec.id;
        let placement = self.jobs[idx].placement.clone();
        for &(sid, w) in &placement {
            if Some(sid) == crashed {
                continue;
            }
            self.rm.submit(RmOp::KillContainers {
                job,
                server: sid,
                workers: w,
            });
        }
        self.cluster.evict_job(job);
        self.mark_servers_dirty(&placement);
        self.mark_running_dirty(idx);
        let now = self.now_s;
        let overhead = self.config.preemption_overhead_s;
        let restore_prob = self
            .faults
            .as_ref()
            .map_or(0.0, |p| p.checkpoint_restore_failure_prob);
        let restore_failed = self.jobs[idx].spec.checkpointing
            && self.fault_rng.gen_bool(restore_prob.clamp(0.0, 1.0));
        if self.running_jobs.remove(&idx) {
            self.elastic_headroom_gpus -= Self::headroom_gpus(&self.jobs[idx]);
        }
        let j = &mut self.jobs[idx];
        j.sync(now);
        let done_before = j.spec.work() - j.work_left;
        j.state = JobState::Pending;
        j.workers = 0;
        j.flexible_workers = 0;
        j.placement.clear();
        j.flex_placement.clear();
        j.rate = 0.0;
        j.generation += 1; // cancel in-flight finish
        j.record.fault_restarts += 1;
        if j.spec.checkpointing && !restore_failed {
            let policy = lyra_elastic::CheckpointPolicy {
                interval_work: self.config.checkpoint_interval_work.max(1.0),
                overhead_s: overhead,
            };
            j.work_left = j.spec.work() - policy.preserved_work(done_before);
            j.resume_overhead_s = policy.overhead_s;
            j.resume_cause = Some(lyra_obs::DelayCause::CheckpointRestore);
            self.fault_stats.checkpoint_restores += 1;
        } else {
            if j.spec.checkpointing {
                self.fault_stats.checkpoint_restore_failures += 1;
            }
            j.work_left = j.spec.work();
            j.resume_overhead_s = overhead;
            j.resume_cause = Some(lyra_obs::DelayCause::FaultRestart);
        }
        let preserved = j.spec.work() - j.work_left;
        self.fault_stats.work_lost_s += (done_before - preserved).max(0.0);
        self.fault_stats.jobs_killed += 1;
        self.fault_stats.restarts += 1;
        self.enqueue(idx);
        if self.observer.is_some() {
            if self.jobs[idx].spec.checkpointing {
                let kind = if restore_failed {
                    "checkpoint_restore_failure"
                } else {
                    "checkpoint_restore"
                };
                self.emit(SchedEvent::Fault {
                    kind: kind.to_string(),
                    target: job.0,
                });
            }
            self.emit(SchedEvent::Fault {
                kind: "job_killed".to_string(),
                target: job.0,
            });
            self.emit(SchedEvent::Fault {
                kind: "restart".to_string(),
                target: job.0,
            });
            self.count("faults.jobs_killed");
        }
        Ok(())
    }

    /// Re-derives service rates of every running job with workers on
    /// `sid` (straggler start/end changes their throughput).
    fn recompute_rates_on(&mut self, sid: ServerId) {
        let idxs: Vec<usize> = self
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| {
                j.state == JobState::Running && j.placement.iter().any(|(s, _)| *s == sid)
            })
            .map(|(i, _)| i)
            .collect();
        for idx in idxs {
            self.jobs[idx].sync(self.now_s);
            self.jobs[idx].rate = self.compute_rate(&self.jobs[idx]);
            self.reschedule_finish(idx);
            // Announce the new effective factor so attribution can open
            // or close this job's straggler episode.
            self.note_straggle(idx);
        }
    }

    /// Books the unmet remainder of a reclaim demand: new debts get a
    /// deadline and a retry backoff, retried debts shrink to the
    /// remainder with doubled backoff, and a met demand clears the debt
    /// it folded in.
    fn note_reclaim_shortfall(&mut self, unmet: u32, retried_carry: bool) {
        let transition = self.reclaim_ledger.note_shortfall(
            self.now_s,
            unmet,
            retried_carry,
            self.config.reclaim_retry_backoff_s,
            self.config.reclaim_deadline_s,
        );
        if transition == CarryTransition::Opened {
            let deadline_s = self
                .reclaim_ledger
                .carry()
                .map_or(self.now_s, |c| c.deadline_s);
            self.fault_stats.reclaim_carryovers += 1;
            self.emit(SchedEvent::ReclaimCarryover {
                servers: unmet,
                deadline_s,
            });
            self.count("cluster.reclaim.carryovers");
        }
    }

    /// Runs one scheduling epoch; returns the number of launches.
    fn handle_scheduler_tick(&mut self) -> Result<usize, SimError> {
        let _timing = lyra_obs::span::span("sim.scheduler_tick");
        // Snapshot validation runs at the invariant-auditor cadence
        // (start of run, after orchestrator ticks and faults), not every
        // epoch: between auditor events only the dirty-tracked paths
        // touch the snapshot, and those are covered by the equivalence
        // assertion below under `cfg(test)`.
        let validate_due = self.validate_snapshot;
        self.validate_snapshot = false;
        let actions = if self.config.incremental_snapshot {
            self.refresh_snapshot();
            #[cfg(test)]
            assert_eq!(
                self.cache.snap,
                self.build_snapshot(),
                "incremental snapshot diverged from a from-scratch rebuild at t={}",
                self.now_s
            );
            if cfg!(debug_assertions) && validate_due {
                let v = self.cache.snap.validate();
                assert!(v.is_ok(), "inconsistent snapshot: {v:?}");
            }
            self.policy.schedule(&self.cache.snap)
        } else {
            let snapshot = self.build_snapshot();
            if cfg!(debug_assertions) && validate_due {
                let v = snapshot.validate();
                assert!(v.is_ok(), "inconsistent snapshot: {v:?}");
            }
            self.policy.schedule(&snapshot)
        };
        // Phase-1 / MCKP / placement decisions were just recorded by the
        // policy; surface them before the actions they explain.
        self.drain_audit();
        let launches = actions
            .iter()
            .filter(|a| matches!(a, Action::Launch { .. }))
            .count();
        for action in &actions {
            self.apply_action(action)?;
        }
        // Idle loaned servers beyond demand go back promptly (the
        // whitelist move is cheap; the five-minute orchestrator cadence
        // is only needed for decisions involving the inference side).
        self.return_surplus_idle_loans()?;
        if let Some(obs) = self.observer.as_ref() {
            let epoch = (
                launches as u32,
                self.queue.len() as u32,
                self.running_jobs.len() as u32,
            );
            if obs.last_epoch != Some(epoch) {
                self.emit(SchedEvent::SchedulerEpoch {
                    launches: epoch.0,
                    queued: epoch.1,
                    running: epoch.2,
                });
                if let Some(obs) = self.observer.as_mut() {
                    obs.last_epoch = Some(epoch);
                }
            }
        }
        self.sample_telemetry();
        Ok(launches)
    }

    /// Samples the scheduler-health gauges into the telemetry series and
    /// evaluates the alert rules — once per scheduler epoch, after all
    /// of the epoch's bookkeeping (no-op without an observer).
    ///
    /// Every sampled quantity is simulated or modelled (never
    /// wall-clock), so the series, the histograms and the alert
    /// transitions are a pure function of the seed; all of this state
    /// is checkpointed, so a resumed run samples identically.
    fn sample_telemetry(&mut self) {
        if self.observer.is_none() {
            return;
        }
        let _timing = lyra_obs::span::span("sim.telemetry_sample");
        let t_ms = (self.now_s.max(0.0) * 1000.0).round() as u64;
        let (train_used, train_total) = self.cluster.gpu_usage(PoolKind::Training);
        let (loan_used, loan_total) = self.cluster.gpu_usage(PoolKind::OnLoan);
        let flex_used = self.cluster.flexible_gpu_usage();
        let frag = self.cluster.fragmentation_index();
        let queue_depth = self.queue.len() as f64;
        let queue_gpus = self.pending_gpus as f64;
        let running = self.running_jobs.len() as f64;
        let elastic_workers: u32 = self
            .running_jobs
            .iter()
            .map(|&i| {
                let j = &self.jobs[i];
                if j.spec.is_elastic() {
                    j.workers
                } else {
                    0
                }
            })
            .sum();
        let loaned_servers = f64::from(self.cluster.loaned_count());
        let carry_servers = self.reclaim_ledger.carry().map_or(0.0, |c| f64::from(c.servers));
        let rm_latency_s = self.rm.total_latency_s();
        let ratio = |used: u32, total: u32| {
            if total == 0 {
                0.0
            } else {
                f64::from(used) / f64::from(total)
            }
        };
        let util_dedicated = ratio(train_used, train_total);
        let util_loaned = ratio(loan_used, loan_total);
        let util_flexible = ratio(flex_used, loan_total);

        let obs = self.observer.as_mut().expect("checked above");
        obs.telemetry.begin_epoch(t_ms);
        let latency_ms = (rm_latency_s - obs.rm_latency_seen_s).max(0.0) * 1000.0;
        obs.rm_latency_seen_s = rm_latency_s;
        obs.telemetry.observe_decision_latency(latency_ms);
        let backlog_age_s = if carry_servers > 0.0 {
            let since = *obs.carry_since_ms.get_or_insert(t_ms);
            (t_ms.saturating_sub(since)) as f64 / 1000.0
        } else {
            obs.carry_since_ms = None;
            0.0
        };
        let samples = [
            ("util.dedicated", util_dedicated),
            ("util.loaned", util_loaned),
            ("util.flexible", util_flexible),
            ("queue.depth", queue_depth),
            ("queue.gpus", queue_gpus),
            ("jobs.running", running),
            ("elastic.workers", f64::from(elastic_workers)),
            ("cluster.loaned_servers", loaned_servers),
            ("reclaim.carry_servers", carry_servers),
            ("reclaim.backlog_age_s", backlog_age_s),
            ("frag.index", frag),
        ];
        for (name, value) in samples {
            obs.telemetry.sample_gauge(name, t_ms, value);
        }
        for (rate, counter) in [
            ("rate.loans", "cluster.loan.ops"),
            ("rate.preemptions", "sim.jobs.preemptions"),
            ("rate.reclaims", "cluster.reclaim.ops"),
        ] {
            let cumulative = obs.metrics.counter(counter);
            obs.telemetry.sample_rate(rate, t_ms, cumulative);
        }
        let Observer {
            ref telemetry,
            ref mut alerts,
            ..
        } = *obs;
        let transitions = alerts.evaluate(|name| telemetry.latest(name));
        for tr in transitions {
            self.emit(SchedEvent::Alert {
                rule: tr.rule,
                series: tr.series,
                value: tr.value,
                threshold: tr.threshold,
                fired: tr.fired,
            });
        }
    }

    /// Servers worth borrowing right now: whole servers of *unmet*
    /// loan-eligible demand — queued fungible work beyond what the free
    /// training capacity will absorb anyway, plus elastic scale-out room.
    ///
    /// Runs every scheduler epoch while loans are live, so both terms
    /// come from counters maintained at the state transitions
    /// (enqueue/dequeue for the queue sums, worker-count changes for the
    /// elastic headroom) — no per-epoch walk over jobs at all.
    fn loan_demand_servers(&self) -> u32 {
        #[cfg(debug_assertions)]
        self.debug_check_demand_counters();
        let gpus_per_server = self.cluster.config.gpus_per_server.max(1);
        let free_training = u64::from(self.cluster.gpu_usage(PoolKind::Training).1)
            - u64::from(self.cluster.gpu_usage(PoolKind::Training).0);
        // Training absorbs what it can; only the remainder justifies a
        // loan, capped by what is actually fungible.
        let unmet = self.pending_gpus.saturating_sub(free_training);
        let demand_gpus = unmet.min(self.pending_fungible_gpus) + self.elastic_headroom_gpus;
        let servers = demand_gpus.div_ceil(u64::from(gpus_per_server)) as u32;
        if servers > 0 {
            servers + 1
        } else {
            0
        }
    }

    /// Debug-build cross-check: the loan-demand counters and the
    /// running-job index must equal a from-scratch recomputation.
    #[cfg(debug_assertions)]
    fn debug_check_demand_counters(&self) {
        let mut all: u64 = 0;
        let mut fungible: u64 = 0;
        for &i in &self.queue {
            all += u64::from(self.jobs[i].spec.base_gpus());
            fungible += fungible_demand_gpus(&self.jobs[i].spec);
        }
        assert_eq!(
            (all, fungible),
            (self.pending_gpus, self.pending_fungible_gpus),
            "pending loan-demand counters drifted from the queue"
        );
        let running: std::collections::BTreeSet<usize> = self
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.state == JobState::Running)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(
            running, self.running_jobs,
            "running-job index drifted from job states"
        );
        let headroom: u64 = running.iter().map(|&i| Self::headroom_gpus(&self.jobs[i])).sum();
        assert_eq!(
            headroom, self.elastic_headroom_gpus,
            "elastic-headroom counter drifted from the running set"
        );
    }

    fn handle_orchestrator_tick(&mut self) -> Result<(), SimError> {
        let _timing = lyra_obs::span::span("sim.orchestrator_tick");
        let Some(inference) = &self.inference else {
            return Ok(());
        };
        let instruction = inference.instruction_at(self.now_s, self.cluster.loaned_count());
        if self.orchestrator.is_none() {
            return Ok(());
        }
        // A carried reclaim debt that outlived its deadline is a
        // violation: record it and stop retrying.
        if let Some(owed) = self.reclaim_ledger.take_expired(self.now_s) {
            self.fault_stats.reclaim_deadline_violations += 1;
            self.emit(SchedEvent::ReclaimDeadlineMiss { servers: owed });
            self.count("cluster.reclaim.deadline_misses");
        }
        match instruction {
            LoanInstruction::Loan(offered) => {
                let take = if self.config.loan_all_offered {
                    offered
                } else {
                    let wanted = self.loan_demand_servers();
                    offered.min(wanted.saturating_sub(self.cluster.loaned_count()))
                };
                // Inference is offering servers again: any pending reclaim
                // debt has been resolved on its side.
                self.reclaim_ledger.clear();
                if take > 0 {
                    let Some(orchestrator) = self.orchestrator.as_mut() else {
                        return Ok(());
                    };
                    let d = orchestrator
                        .execute_loan(&mut self.cluster, take)
                        .map_err(|e| SimError(e.to_string()))?;
                    if let OrchestratorDecision::Loaned(ids) = d {
                        for sid in &ids {
                            self.rm.submit(RmOp::AddToWhitelist(*sid));
                        }
                        if !ids.is_empty() {
                            self.mark_structural();
                            self.loan_ops += 1;
                            if self.observer.is_some() {
                                let servers = ids.iter().map(|s| s.0).collect();
                                self.emit(SchedEvent::LoanGrant { servers });
                                self.count("cluster.loan.ops");
                            }
                        }
                    }
                }
            }
            LoanInstruction::Reclaim(n) => {
                // Fold a carried-forward debt into the demand once its
                // retry backoff has elapsed.
                let (demand, retried_carry) = self.reclaim_ledger.fold_into(self.now_s, n);
                // The loan-demand decision: causal parent of every
                // victim ranking in the wave it triggers.
                if self.observer.is_some() && demand > 0 {
                    self.emit(SchedEvent::ReclaimDemand { servers: demand });
                }
                let Some(orchestrator) = self.orchestrator.as_mut() else {
                    return Ok(());
                };
                let d = orchestrator
                    .execute_reclaim(&mut self.cluster, demand)
                    .map_err(|e| SimError(e.to_string()))?;
                // A reclaim may return servers, evict jobs and relabel
                // groups in one stroke: rebuild rather than track.
                self.mark_structural();
                // Surface the reclaim cost-search audit before the
                // follow-on scale-ins and preemptions, capturing each
                // victim ranking's decision id for the preemptions.
                self.drain_audit_mapped();
                let returned = d.servers_returned() as u32;
                self.note_reclaim_shortfall(demand.saturating_sub(returned), retried_carry);
                if let OrchestratorDecision::Reclaimed {
                    flex_releases,
                    returned_flex,
                    returned_idle,
                    outcome,
                } = d
                {
                    for (job, server, gpus) in &flex_releases {
                        let idx = self.job_index(*job)?;
                        let workers = gpus / self.jobs[idx].spec.gpus_per_worker.max(1);
                        self.rm.submit(RmOp::KillContainers {
                            job: *job,
                            server: *server,
                            workers,
                        });
                        self.apply_flex_release(*job, *server, *gpus)?;
                    }
                    for job in &outcome.preempted {
                        self.apply_preemption(*job)?;
                    }
                    for sid in returned_flex
                        .iter()
                        .chain(returned_idle.iter())
                        .chain(outcome.returned.iter())
                    {
                        self.rm.submit(RmOp::RemoveFromWhitelist(*sid));
                    }
                    self.reclaims.push(ReclaimRecord {
                        time_s: self.now_s,
                        demanded: demand,
                        returned_flex: returned_flex.len() as u32,
                        returned_idle: returned_idle.len() as u32,
                        returned_preempt: outcome.returned.len() as u32,
                        preempted: outcome.preempted.len() as u32,
                        collateral_gpus: outcome.collateral_gpus,
                    });
                    if self.observer.is_some() {
                        let preempted = outcome.preempted.iter().map(|j| j.0).collect();
                        self.emit(SchedEvent::ReclaimGrant {
                            demanded: demand,
                            returned_flex: returned_flex.len() as u32,
                            returned_idle: returned_idle.len() as u32,
                            returned_preempt: outcome.returned.len() as u32,
                            preempted,
                            collateral_gpus: outcome.collateral_gpus,
                        });
                        self.count("cluster.reclaim.ops");
                    }
                }
                // Any victims named by audits but not ultimately
                // preempted must not leak into later waves.
                self.pending_preempt_decisions.clear();
            }
            LoanInstruction::Hold => {
                // No outstanding reclaim pressure from the inference side:
                // a pending debt is moot.
                self.reclaim_ledger.clear();
            }
        }
        self.return_surplus_idle_loans()?;
        Ok(())
    }

    /// Voluntarily returns surplus *idle* loaned servers: keeping them
    /// would depress the on-loan usage the paper keeps above 92 %
    /// (Figure 9) and would inflate reclaim waves for no benefit.
    fn return_surplus_idle_loans(&mut self) -> Result<(), SimError> {
        if self.config.loan_all_offered || self.orchestrator.is_none() {
            return Ok(());
        }
        // Only *idle* loaned servers can be returned; the cluster keeps
        // them indexed, so under load (every loaner busy) this exits in
        // O(1) and the O(queue + jobs) demand walk below never runs on
        // the scheduler-epoch hot path.
        let idle: Vec<_> = self.cluster.idle_loaned_ids().collect();
        if idle.is_empty() {
            return Ok(());
        }
        let loaned = self.cluster.loaned_count();
        let wanted = self.loan_demand_servers();
        if loaned > wanted {
            let surplus = (loaned - wanted) as usize;
            let to_return: Vec<_> = idle.into_iter().take(surplus).collect();
            if !to_return.is_empty() {
                self.cluster
                    .return_servers(&to_return)
                    .map_err(|e| SimError(e.to_string()))?;
                self.mark_structural();
            }
        }
        Ok(())
    }

    fn handle_finish(&mut self, idx: usize, generation: u64) {
        if self.jobs[idx].generation != generation || self.jobs[idx].state != JobState::Running {
            return;
        }
        self.jobs[idx].sync(self.now_s);
        debug_assert!(
            self.jobs[idx].work_left < 1e-6 * self.jobs[idx].spec.work().max(1.0) + 1e-6,
            "finish event with {} work left",
            self.jobs[idx].work_left
        );
        if self.config.incremental_snapshot {
            for (sid, _) in &self.jobs[idx].placement {
                self.cache.dirty_servers.insert(*sid);
            }
            self.cache.dirty_running.insert(idx);
        }
        self.cluster.evict_job(self.jobs[idx].spec.id);
        if self.running_jobs.remove(&idx) {
            self.elastic_headroom_gpus -= Self::headroom_gpus(&self.jobs[idx]);
        }
        let j = &mut self.jobs[idx];
        j.state = JobState::Done;
        j.work_left = 0.0;
        j.rate = 0.0;
        j.placement.clear();
        j.flex_placement.clear();
        j.record.complete_s = Some(self.now_s);
        self.completed += 1;
        if self.observer.is_some() {
            let record = self.jobs[idx].record;
            let job = self.jobs[idx].spec.id.0;
            let jct_s = record
                .jct_s()
                .unwrap_or_else(|| self.now_s - self.jobs[idx].spec.submit_time_s);
            self.emit(SchedEvent::JobComplete { job, jct_s });
            self.count("sim.jobs.completed");
            self.observe_histogram("sim.jct_s", jct_s);
            self.observe_histogram("sim.queue_s", record.queue_s);
            if let Some(deadline_s) = record.deadline_s {
                if self.now_s > deadline_s {
                    self.emit(SchedEvent::DeadlineMiss {
                        job,
                        deadline_s,
                        late_s: self.now_s - deadline_s,
                    });
                    self.count("sim.deadline.missed");
                }
            }
        }
    }

    /// Whether fault-plan event `i` is a scheduler crash.
    fn scheduler_crash_at(&self, i: usize) -> bool {
        self.faults
            .as_ref()
            .and_then(|p| p.events.get(i))
            .is_some_and(|e| matches!(e.kind, FaultKind::SchedulerCrash))
    }

    /// Captures the complete engine state (see [`EngineState`]).
    ///
    /// Takes `&mut self` because the observer's file sink is flushed
    /// first, so the on-disk log agrees with the captured cursor.
    pub(crate) fn capture_state(&mut self) -> EngineState {
        let mut events: Vec<Event> = self.events.iter().map(|Reverse(e)| *e).collect();
        events.sort();
        EngineState {
            config: self.config,
            cluster: self.cluster.clone(),
            jobs: self.jobs.clone(),
            queue: self.queue.clone(),
            events,
            seq: self.seq,
            now_s: self.now_s,
            completed: self.completed,
            arrived: self.arrived,
            stuck_since_s: self.stuck_since_s,
            training_usage: self.training_usage.clone(),
            on_loan_usage: self.on_loan_usage.clone(),
            on_loan_servers: self.on_loan_servers.clone(),
            overall_usage: self.overall_usage.clone(),
            reclaims: self.reclaims.clone(),
            loan_ops: self.loan_ops,
            scaling_ops: self.scaling_ops,
            rm: self.rm.clone(),
            faults: self.faults.clone(),
            fault_rng: self.fault_rng.state(),
            fault_stats: self.fault_stats,
            slowdown: self.slowdown.iter().map(|(s, f)| (*s, *f)).collect(),
            drop_next_orch_tick: self.drop_next_orch_tick,
            reclaim_ledger: self.reclaim_ledger,
            policy_rng: self.policy.rng_state(),
            orchestrator_rng: self.orchestrator.as_ref().map(|o| o.rng_state()),
            observer: self.observer.as_mut().map(|o| ObserverState {
                log: o.log.capture_state(),
                metrics: o.metrics.clone(),
                snapshots: o.snapshots.clone(),
                audit: o.audit,
                next_hour: o.next_hour,
                lifecycle: o.lifecycle.clone(),
                last_epoch: o.last_epoch,
                telemetry: o.telemetry.clone(),
                alerts: o.alerts.clone(),
                rm_latency_seen_s: o.rm_latency_seen_s,
                carry_since_ms: o.carry_since_ms,
                provenance: o.provenance.clone(),
            }),
        }
    }

    /// Overwrites this simulation's runtime state with a captured one.
    ///
    /// `self` must have been built from the same scenario inputs (the
    /// policy, orchestrator, inference scheduler and estimator are
    /// rebuilt, not persisted); this restores everything that evolves
    /// during a run and recomputes the derived structures: demand
    /// counters and the running set from the restored jobs, and the
    /// incremental snapshot cache from the restored queue.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the event-log file sink cannot be
    /// repaired and reopened for append.
    pub(crate) fn restore_state(&mut self, state: EngineState) -> Result<(), SimError> {
        self.config = state.config;
        self.cluster = state.cluster;
        self.jobs = state.jobs;
        self.queue = state.queue;
        self.events = state.events.into_iter().map(Reverse).collect();
        self.seq = state.seq;
        self.now_s = state.now_s;
        self.completed = state.completed;
        self.arrived = state.arrived;
        self.stuck_since_s = state.stuck_since_s;
        self.training_usage = state.training_usage;
        self.on_loan_usage = state.on_loan_usage;
        self.on_loan_servers = state.on_loan_servers;
        self.overall_usage = state.overall_usage;
        self.reclaims = state.reclaims;
        self.loan_ops = state.loan_ops;
        self.scaling_ops = state.scaling_ops;
        self.rm = state.rm;
        self.faults = state.faults;
        self.fault_rng = StdRng::seed_from_u64(state.fault_rng);
        self.fault_stats = state.fault_stats;
        self.slowdown = state.slowdown.into_iter().collect();
        self.drop_next_orch_tick = state.drop_next_orch_tick;
        self.reclaim_ledger = state.reclaim_ledger;
        if let Some(s) = state.policy_rng {
            self.policy.restore_rng_state(s);
        }
        if let (Some(orch), Some(s)) = (self.orchestrator.as_mut(), state.orchestrator_rng) {
            orch.restore_rng_state(s);
        }
        if let Some(orch) = self.orchestrator.as_mut() {
            orch.incremental = self.config.incremental_reclaim;
        }
        self.observer = match state.observer {
            Some(os) => Some(Observer {
                log: EventLog::from_state(os.log)
                    .map_err(|e| SimError(format!("restoring the event-log sink: {e}")))?,
                metrics: os.metrics,
                snapshots: os.snapshots,
                audit: os.audit,
                next_hour: os.next_hour,
                lifecycle: os.lifecycle,
                last_epoch: os.last_epoch,
                telemetry: os.telemetry,
                alerts: os.alerts,
                rm_latency_seen_s: os.rm_latency_seen_s,
                carry_since_ms: os.carry_since_ms,
                provenance: os.provenance,
            }),
            None => None,
        };
        self.pending_gpus = self
            .queue
            .iter()
            .map(|&i| u64::from(self.jobs[i].spec.base_gpus()))
            .sum();
        self.pending_fungible_gpus = self
            .queue
            .iter()
            .map(|&i| fungible_demand_gpus(&self.jobs[i].spec))
            .sum();
        self.running_jobs = self
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.state == JobState::Running)
            .map(|(i, _)| i)
            .collect();
        self.elastic_headroom_gpus = self
            .running_jobs
            .iter()
            .map(|&i| Self::headroom_gpus(&self.jobs[i]))
            .sum();
        // The snapshot cache starts cold (servers and running views are
        // rebuilt at the first refresh), but `enqueue` maintains the
        // pending mirror from t=0 and the refresh never rebuilds it, so
        // it must be reconstructed from the restored queue here (a
        // pending view is static while queued).
        self.cache = SnapshotCache::default();
        if self.config.incremental_snapshot {
            for &i in &self.queue {
                let j = &self.jobs[i];
                let est_full = self
                    .estimator
                    .estimate(j.spec.id, j.spec.base_running_time());
                let work = j.spec.work().max(f64::MIN_POSITIVE);
                self.cache.snap.pending.push(PendingJobView {
                    spec: j.spec.clone(),
                    est_running_time_s: est_full * (j.work_left / work),
                    work_left: j.work_left,
                    preemptions: j.record.preemptions,
                });
            }
        }
        self.validate_snapshot = true;
        self.profile = lyra_obs::Profile::default();
        self.attribution = lyra_obs::AttributionSummary::default();
        Ok(())
    }

    /// Test-only reclaim-ledger access for checkpoint round-trip tests.
    #[cfg(test)]
    pub(crate) fn reclaim_ledger_mut(&mut self) -> &mut ReclaimLedger {
        &mut self.reclaim_ledger
    }

    /// Test-only reclaim-ledger view.
    #[cfg(test)]
    pub(crate) fn reclaim_ledger(&self) -> &ReclaimLedger {
        &self.reclaim_ledger
    }

    /// Runs the simulation to completion and produces the report.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on internal inconsistencies (a policy emitting
    /// infeasible actions), which indicate bugs rather than workload
    /// conditions — and when the run is aborted by an injected
    /// [`FaultKind::SchedulerCrash`]; callers that expect crashes use
    /// [`run_to_outcome`](Self::run_to_outcome) instead.
    pub fn run(self, name: &str) -> Result<SimReport, SimError> {
        match self.run_to_outcome(name)? {
            RunOutcome::Completed(report) => Ok(*report),
            RunOutcome::Crashed(_) => Err(SimError(
                "run aborted by an injected scheduler crash; \
                 use run_to_outcome and checkpoint the state to resume"
                    .to_string(),
            )),
        }
    }

    /// Runs the simulation until it completes *or* an injected
    /// [`FaultKind::SchedulerCrash`] aborts it.
    ///
    /// The crash is intercepted the instant its event is popped, before
    /// any handler runs: nothing is logged, counted or integrated for
    /// it, so the crash is invisible in every observable and a resumed
    /// run replays byte-identically to an uninterrupted one.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on internal inconsistencies (a policy
    /// emitting infeasible actions), which indicate bugs rather than
    /// workload conditions.
    pub fn run_to_outcome(mut self, name: &str) -> Result<RunOutcome, SimError> {
        if let Some(obs) = &self.observer {
            lyra_obs::span::set_enabled(true);
            lyra_obs::audit::set_enabled(obs.audit);
        }
        let n_jobs = self.jobs.len();
        let last_submit = self
            .jobs
            .iter()
            .map(|j| j.spec.submit_time_s)
            .fold(0.0, f64::max);
        let horizon = last_submit + self.config.drain_horizon_s;
        while let Some(Reverse(event)) = self.events.pop() {
            let t = event.time_ms as f64 / 1000.0;
            if t > horizon {
                break;
            }
            if let EventKind::Fault(i) = event.kind {
                if self.scheduler_crash_at(i) {
                    // The scheduler process dies *between* events: state
                    // is captured before any of this event's bookkeeping
                    // (usage integrals, clock, metrics) runs, so the
                    // crash perturbs nothing observable. The crash event
                    // itself was consumed above and is deliberately not
                    // part of the captured queue.
                    let stale = lyra_obs::audit::drain();
                    debug_assert!(
                        stale.is_empty(),
                        "audit records pending at a crash point: {}",
                        stale.len()
                    );
                    drop(stale);
                    let state = self.capture_state();
                    let _ = lyra_obs::span::take_profile();
                    lyra_obs::span::set_enabled(false);
                    lyra_obs::audit::set_enabled(false);
                    return Ok(RunOutcome::Crashed(Box::new(state)));
                }
            }
            self.advance_usage(t);
            self.now_s = t;
            self.snapshot_metrics(t);
            match event.kind {
                EventKind::Arrival(idx) => {
                    self.arrived += 1;
                    self.enqueue(idx);
                    if self.observer.is_some() {
                        let job = self.jobs[idx].spec.id.0;
                        self.emit(SchedEvent::JobAdmit { job });
                        self.count("sim.jobs.admitted");
                    }
                }
                EventKind::Finish(idx, generation) => {
                    self.handle_finish(idx, generation);
                }
                EventKind::SchedulerTick => {
                    let launched = self.handle_scheduler_tick()?;
                    // Stuck detection: every job has arrived, nothing is
                    // running and the scheduler keeps starting nothing.
                    // Legitimate waits exist (e.g. opportunistic jobs
                    // waiting out an inference-traffic peak), so only a
                    // *prolonged* total stall — two simulated days —
                    // declares the remaining jobs unschedulable.
                    let running_any = self.jobs.iter().any(|j| j.state == JobState::Running);
                    let stalled = launched == 0
                        && !running_any
                        && self.arrived == n_jobs
                        && !self.queue.is_empty();
                    if stalled {
                        let since = *self.stuck_since_s.get_or_insert(self.now_s);
                        if self.now_s - since > 2.0 * 86_400.0 {
                            break;
                        }
                    } else {
                        self.stuck_since_s = None;
                    }
                    if self.completed < n_jobs {
                        self.push_event(
                            self.now_s + self.config.scheduler_interval_s,
                            EventKind::SchedulerTick,
                        );
                    }
                }
                EventKind::OrchestratorTick => {
                    if self.drop_next_orch_tick {
                        // Control-plane fault: this tick's loan/reclaim
                        // instruction is lost; the cadence itself survives.
                        self.drop_next_orch_tick = false;
                    } else {
                        self.handle_orchestrator_tick()?;
                        if self.cluster.audit().is_err() {
                            self.fault_stats.audit_violations += 1;
                        }
                        self.validate_snapshot = true;
                    }
                    if self.completed < n_jobs {
                        self.push_event(
                            self.now_s + self.config.orchestrator_interval_s,
                            EventKind::OrchestratorTick,
                        );
                    }
                }
                EventKind::Fault(i) => {
                    self.handle_fault(i)?;
                    if self.cluster.audit().is_err() {
                        self.fault_stats.audit_violations += 1;
                    }
                    self.validate_snapshot = true;
                }
                EventKind::ServerRecover(sid) => {
                    if self.cluster.recover_server(sid).is_ok() {
                        self.mark_structural();
                        self.rm.submit(RmOp::MarkServerUp(sid));
                    }
                }
                EventKind::StragglerEnd(sid) => {
                    self.slowdown.remove(&sid);
                    self.recompute_rates_on(sid);
                }
            }
            if self.completed >= n_jobs {
                // Drain: no more work will be created.
                break;
            }
        }
        // Final consistency check: a clean run ends with zero violations.
        if self.cluster.audit().is_err() {
            self.fault_stats.audit_violations += 1;
        }
        self.finish_observation()?;
        Ok(RunOutcome::Completed(Box::new(self.report(name))))
    }

    /// Closes out an observed run: drains pending audit records, settles
    /// and reconciles the delay attribution, forces a snapshot covering
    /// the final partial hour, flushes the sink and collects the span
    /// profile, then disables the thread-local collectors so unobserved
    /// runs on this thread stay clean.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when any job's attributed intervals fail to
    /// partition its lifetime exactly (see
    /// [`lyra_obs::JobAttribution::reconcile`]) — an engine bug, checked
    /// in release builds too.
    fn finish_observation(&mut self) -> Result<(), SimError> {
        if self.observer.is_none() {
            return Ok(());
        }
        self.drain_audit();
        let now_ms = (self.now_s.max(0.0) * 1000.0).round() as u64;
        if let Some(obs) = self.observer.as_mut() {
            obs.lifecycle.finish(now_ms);
            let tracker = std::mem::take(&mut obs.lifecycle);
            let attrs = tracker.into_attributions();
            for a in &attrs {
                a.reconcile()
                    .map_err(|e| SimError(format!("delay attribution does not reconcile: {e}")))?;
            }
            self.attribution = lyra_obs::summarize(&attrs);
        }
        let close_at = (self.observer.as_ref().map_or(0, |o| o.next_hour) + 1) as f64 * 3600.0;
        self.snapshot_metrics(close_at);
        if let Some(obs) = self.observer.as_mut() {
            obs.log.flush();
        }
        self.profile = lyra_obs::span::take_profile();
        lyra_obs::span::set_enabled(false);
        lyra_obs::audit::set_enabled(false);
        Ok(())
    }

    /// Utilisation of an integral truncated to the usage horizon.
    fn horizon_utilization(&self, integral: &UsageIntegral) -> f64 {
        if self.config.usage_horizon_s <= 0.0 {
            return integral.utilization();
        }
        let hours = (self.config.usage_horizon_s / 3600.0).ceil() as usize;
        let (busy, cap) = integral
            .hourly
            .iter()
            .take(hours)
            .fold((0.0, 0.0), |(b, c), (hb, hc)| (b + hb, c + hc));
        if cap > 0.0 {
            busy / cap
        } else {
            0.0
        }
    }

    fn report(&self, name: &str) -> SimReport {
        let mut records: Vec<JobRecord> = self.jobs.iter().map(|j| j.record).collect();
        // Jobs still queued at the end accrued queue time that was never
        // folded in (it is normally added at launch).
        for (r, j) in records.iter_mut().zip(&self.jobs) {
            if j.state == JobState::Pending {
                r.queue_s += (self.now_s - j.enqueued_at_s).max(0.0);
            }
        }
        let queuing: Vec<f64> = records.iter().map(|r| r.queue_s).collect();
        let jct: Vec<f64> = records.iter().filter_map(|r| r.jct_s()).collect();
        let on_loan: Vec<&JobRecord> = records.iter().filter(|r| r.ran_on_loan).collect();
        let on_loan_queuing: Vec<f64> = on_loan.iter().map(|r| r.queue_s).collect();
        let on_loan_jct: Vec<f64> = on_loan.iter().filter_map(|r| r.jct_s()).collect();
        let preemptions: u32 = records.iter().map(|r| r.preemptions).sum();
        let gpus_per_server = f64::from(self.cluster.config.gpus_per_server);
        let collateral: Vec<f64> = self
            .reclaims
            .iter()
            .filter(|r| r.demanded > 0)
            .map(|r| f64::from(r.collateral_gpus) / (f64::from(r.demanded) * gpus_per_server))
            .collect();
        let flex_frac: Vec<f64> = self
            .reclaims
            .iter()
            .filter(|r| r.demanded > 0)
            .map(|r| f64::from(r.returned_flex) / f64::from(r.demanded))
            .collect();
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        SimReport {
            name: name.to_string(),
            queuing: percentiles(&queuing),
            jct: percentiles(&jct),
            training_usage: self.horizon_utilization(&self.training_usage),
            overall_usage: self.horizon_utilization(&self.overall_usage),
            on_loan_usage: self.horizon_utilization(&self.on_loan_usage),
            on_loan_server_usage: self.horizon_utilization(&self.on_loan_servers),
            hourly_on_loan_server_usage: self.on_loan_servers.hourly_utilization(),
            preemption_ratio: f64::from(preemptions) / records.len().max(1) as f64,
            collateral_damage: mean(&collateral),
            flex_satisfied: mean(&flex_frac),
            completed: self.completed,
            submitted: records.len(),
            loan_ops: self.loan_ops,
            reclaim_ops: self.reclaims.len(),
            scaling_ops: self.scaling_ops,
            rm_ops: self.rm.log().len(),
            control_plane_latency_s: self.rm.total_latency_s(),
            hourly_overall_usage: self.overall_usage.hourly_utilization(),
            hourly_on_loan_usage: self.on_loan_usage.hourly_utilization(),
            on_loan_queuing: percentiles(&on_loan_queuing),
            on_loan_jct: percentiles(&on_loan_jct),
            fault: self.fault_stats,
            deadlines: DeadlineStats::from_records(&records),
            records,
            events: self
                .observer
                .as_ref()
                .map(|o| o.log.lines().map(str::to_string).collect())
                .unwrap_or_default(),
            metrics: self
                .observer
                .as_ref()
                .map(|o| o.snapshots.clone())
                .unwrap_or_default(),
            profile: self.profile.clone(),
            attribution: self.attribution.clone(),
            telemetry: self
                .observer
                .as_ref()
                .map(|o| o.telemetry.clone())
                .unwrap_or_default(),
            provenance: self
                .observer
                .as_ref()
                .and_then(|o| o.provenance.as_ref())
                .map(|p| p.graph().clone())
                .unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyra_core::job::JobSpec;

    fn running_job(work: f64, rate: f64, now: f64) -> SimJob {
        let mut j = SimJob::new(JobSpec::inelastic(0, 0.0, 2, 1, work / 2.0));
        j.state = JobState::Running;
        j.work_left = work;
        j.rate = rate;
        j.synced_at_s = now;
        j.stall_until_s = now;
        j
    }

    #[test]
    fn progress_drains_at_rate() {
        let j = running_job(100.0, 2.0, 10.0);
        assert_eq!(j.work_left_at(10.0), 100.0);
        assert_eq!(j.work_left_at(35.0), 50.0);
        assert_eq!(j.work_left_at(60.0), 0.0);
        assert_eq!(j.work_left_at(1000.0), 0.0, "clamped at zero");
    }

    #[test]
    fn stall_delays_progress_and_finish() {
        let mut j = running_job(100.0, 2.0, 10.0);
        j.stall(10.0, 20.0); // paused until t=30
        assert_eq!(j.work_left_at(30.0), 100.0);
        assert_eq!(j.work_left_at(40.0), 80.0);
        assert_eq!(j.finish_time(10.0), Some(30.0 + 50.0));
        // Stalls accumulate.
        j.stall(10.0, 5.0);
        assert_eq!(j.stall_until_s, 35.0);
    }

    #[test]
    fn sync_is_idempotent() {
        let mut j = running_job(100.0, 4.0, 0.0);
        j.sync(5.0);
        assert_eq!(j.work_left, 80.0);
        j.sync(5.0);
        assert_eq!(j.work_left, 80.0);
        j.sync(10.0);
        assert_eq!(j.work_left, 60.0);
    }

    #[test]
    fn pending_jobs_make_no_progress() {
        let mut j = running_job(100.0, 2.0, 0.0);
        j.state = JobState::Pending;
        assert_eq!(j.work_left_at(1e9), 100.0);
        assert_eq!(j.finish_time(0.0), None);
    }

    #[test]
    fn assignment_merge_and_remove() {
        let mut a = vec![(ServerId(1), 2u32)];
        Simulation::merge_assignment(&mut a, &[(ServerId(1), 1), (ServerId(2), 3)]);
        assert_eq!(a, vec![(ServerId(1), 3), (ServerId(2), 3)]);
        Simulation::remove_assignment(&mut a, &[(ServerId(2), 3)]).unwrap();
        assert_eq!(a, vec![(ServerId(1), 3)]);
        assert!(Simulation::remove_assignment(&mut a, &[(ServerId(1), 5)]).is_err());
        assert!(Simulation::remove_assignment(&mut a, &[(ServerId(9), 1)]).is_err());
    }

    #[test]
    fn event_ordering_is_time_then_seq() {
        let a = Event {
            time_ms: 10,
            seq: 5,
            kind: EventKind::SchedulerTick,
        };
        let b = Event {
            time_ms: 10,
            seq: 6,
            kind: EventKind::OrchestratorTick,
        };
        let c = Event {
            time_ms: 9,
            seq: 99,
            kind: EventKind::Arrival(0),
        };
        assert!(c < a && a < b);
    }
}
