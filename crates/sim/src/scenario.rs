//! Scenario definitions and the runner — the configurations of Table 5
//! and the deep-dive experiments (§7.1).
//!
//! A [`Scenario`] names a (cluster, policy, loaning, engine) combination;
//! [`run_scenario`] wires the traces, cluster state, policy, orchestrator
//! and inference scheduler into a [`Simulation`] and returns its
//! [`SimReport`]. Trace *transforms* implement the scenario definitions:
//! `Ideal` makes every job elastic/fungible/hetero with perfect
//! performance, `Heterogeneous` disables the fungible load, imperfect
//! scaling swaps elastic jobs' curves for the 20 %-loss model, and the
//! checkpoint/elastic-fraction sweeps of Figures 13–16 rewrite job flags.

use crate::engine::{ObserverConfig, SimConfig, SimError, Simulation};
use crate::faults::FaultPlan;
use crate::metrics::SimReport;
use lyra_cluster::inference::InferenceScheduler;
use lyra_cluster::orchestrator::{Orchestrator, ReclaimPolicy};
use lyra_cluster::state::{ClusterConfig, ClusterState};
use lyra_core::gpu::GpuType;
use lyra_core::job::{Elasticity, JobSpec, ModelFamily, ScalingCurve};
use lyra_core::policies::{JobScheduler, PolicyContext, PolicyRegistry, UnknownPolicy};
use lyra_predictor::{LstmConfig, RuntimeEstimator, RuntimeEstimatorConfig, UsagePredictor};
use lyra_trace::{InferenceTrace, JobTrace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Why a scenario configuration was rejected before the engine ever ran.
///
/// Every rejection is typed so harnesses (`lyra-bench` exits 2 on any of
/// these) can distinguish operator error from an engine bug; nothing here
/// ever panics.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A generation speed factor was zero, negative or non-finite.
    NonPositiveSpeedFactor {
        /// The GPU generation with the bad factor.
        gpu: GpuType,
        /// The rejected factor.
        factor: f64,
    },
    /// A job's shrink cost was negative or non-finite.
    NegativeShrinkCost {
        /// Offending job id.
        job: u64,
        /// The rejected cost, seconds.
        cost_s: f64,
    },
    /// A job's expand cost was negative or non-finite.
    NegativeExpandCost {
        /// Offending job id.
        job: u64,
        /// The rejected cost, seconds.
        cost_s: f64,
    },
    /// A job's deadline was before its own submission (or non-finite).
    DeadlineBeforeArrival {
        /// Offending job id.
        job: u64,
        /// The rejected deadline, seconds from trace start.
        deadline_s: f64,
        /// The job's submission time, seconds from trace start.
        submit_s: f64,
    },
    /// The scenario names a policy the registry does not know.
    UnknownPolicy(UnknownPolicy),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NonPositiveSpeedFactor { gpu, factor } => {
                write!(f, "speed factor for {gpu:?} must be finite and > 0, got {factor}")
            }
            ConfigError::NegativeShrinkCost { job, cost_s } => {
                write!(f, "job {job}: shrink cost must be finite and >= 0, got {cost_s}")
            }
            ConfigError::NegativeExpandCost { job, cost_s } => {
                write!(f, "job {job}: expand cost must be finite and >= 0, got {cost_s}")
            }
            ConfigError::DeadlineBeforeArrival {
                job,
                deadline_s,
                submit_s,
            } => write!(
                f,
                "job {job}: deadline {deadline_s}s precedes its submission at {submit_s}s"
            ),
            ConfigError::UnknownPolicy(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Checks a scenario + job trace against the configuration invariants
/// the engine assumes: positive finite speed factors, non-negative
/// finite resize costs, deadlines at or after submission, and a policy
/// name the builtin registry knows.
///
/// [`run_scenario`] runs this automatically; harnesses call it
/// directly when they want the typed [`ConfigError`] (e.g. to exit with
/// a usage error instead of a crash).
///
/// # Errors
///
/// The first violated invariant, as a [`ConfigError`].
pub fn validate_scenario(scenario: &Scenario, jobs: &JobTrace) -> Result<(), ConfigError> {
    if let Err((gpu, factor)) = scenario.cluster.speed.validate() {
        return Err(ConfigError::NonPositiveSpeedFactor { gpu, factor });
    }
    for job in &jobs.jobs {
        if job.shrink_cost_s < 0.0 || !job.shrink_cost_s.is_finite() {
            return Err(ConfigError::NegativeShrinkCost {
                job: job.id.0,
                cost_s: job.shrink_cost_s,
            });
        }
        if job.expand_cost_s < 0.0 || !job.expand_cost_s.is_finite() {
            return Err(ConfigError::NegativeExpandCost {
                job: job.id.0,
                cost_s: job.expand_cost_s,
            });
        }
        if let Some(d) = job.deadline_s {
            if !d.is_finite() || d < job.submit_time_s {
                return Err(ConfigError::DeadlineBeforeArrival {
                    job: job.id.0,
                    deadline_s: d,
                    submit_s: job.submit_time_s,
                });
            }
        }
    }
    if let Err(e) = PolicyRegistry::builtin().get_checked(&scenario.policy) {
        return Err(ConfigError::UnknownPolicy(e));
    }
    Ok(())
}

/// A full experiment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Label used in reports.
    pub name: String,
    /// Cluster shape.
    pub cluster: ClusterConfig,
    /// Job-scheduling policy, by registry name (see
    /// [`PolicyRegistry::builtin`] for the built-in set: "fifo",
    /// "fifo-backfill", "opportunistic", "lyra", "lyra-no-elastic",
    /// "lyra-naive-placement", "gandiva", "afs", "pollux", "lyra-las",
    /// "lyra-greedy-phase2").
    pub policy: String,
    /// Capacity loaning with this reclaim policy; `None` disables
    /// loaning entirely.
    pub loaning: Option<ReclaimPolicy>,
    /// Engine parameters.
    pub sim: SimConfig,
    /// Running-time estimator (Table 9 injects error here).
    pub estimator: RuntimeEstimatorConfig,
    /// Train the LSTM predictor on the utilisation trace and reclaim in
    /// advance (§6).
    pub use_predictor: bool,
    /// Drive the inference side's capacity target through the Erlang-C
    /// latency model instead of proportional busy GPUs.
    pub use_capacity_model: bool,
    /// Seed for the orchestrator's randomised comparators.
    pub seed: u64,
    /// Optional fault schedule injected into the run (crashes, worker
    /// failures, stragglers, dropped ticks).
    pub faults: Option<FaultPlan>,
}

impl Scenario {
    fn base(name: &str) -> Self {
        Scenario {
            name: name.to_string(),
            cluster: ClusterConfig::default(),
            policy: "lyra".to_string(),
            loaning: Some(ReclaimPolicy::Lyra),
            sim: SimConfig::default(),
            estimator: RuntimeEstimatorConfig::default(),
            use_predictor: false,
            use_capacity_model: false,
            seed: 0xCAFE,
            faults: None,
        }
    }

    /// Table 5 row 1: FIFO, no loaning, no scaling.
    ///
    /// Skips blocked jobs (YARN-style FIFO apps run whenever they fit):
    /// the paper's Baseline has a 55 s *median* queuing time at 82 %
    /// utilisation, which is incompatible with head-of-line blocking.
    pub fn baseline() -> Self {
        Scenario {
            policy: "fifo-backfill".to_string(),
            loaning: None,
            ..Self::base("baseline")
        }
    }

    /// Table 5 row 2: the default Lyra configuration (fungible loaning +
    /// elastic scaling, no heterogeneous training).
    pub fn basic() -> Self {
        Self::base("basic")
    }

    /// Table 5 row 5: everything elastic/fungible/hetero at ideal
    /// performance (run on an idealised trace, see
    /// [`transform::idealize`]).
    pub fn ideal() -> Self {
        let mut s = Self::base("ideal");
        s.sim.hetero_efficiency = 1.0;
        s
    }

    /// Capacity-loaning-only rows (7–9): FIFO job scheduling plus loaning
    /// under the given reclaim policy.
    pub fn loaning_only(reclaim: ReclaimPolicy, name: &str) -> Self {
        Scenario {
            policy: "fifo-backfill".to_string(),
            loaning: Some(reclaim),
            ..Self::base(name)
        }
    }

    /// Row 6: opportunistic scheduling of fungible jobs on idle inference
    /// servers (no managed loaning; evictions are random).
    pub fn opportunistic() -> Self {
        Scenario {
            policy: "opportunistic".to_string(),
            loaning: Some(ReclaimPolicy::Random),
            ..Self::base("opportunistic")
        }
    }

    /// Elastic-scaling-only rows (10–14): the given policy (by registry
    /// name) on the fixed training cluster.
    pub fn elastic_only(policy: &str, name: &str) -> Self {
        Scenario {
            policy: policy.to_string(),
            loaning: None,
            ..Self::base(name)
        }
    }

    /// Lyra+TunedJobs (row 14): Lyra scheduling with the tuning agent's
    /// goodput gain applied to elastic jobs.
    pub fn lyra_tuned() -> Self {
        let mut s = Self::elastic_only("lyra", "lyra+tuned");
        s.sim.tuned = true;
        s
    }

    /// The testbed shape of §7.5 (4 + 4 × 8-GPU servers).
    pub fn with_testbed_cluster(mut self) -> Self {
        self.cluster = ClusterConfig::testbed();
        self
    }
}

/// Trace transforms implementing scenario definitions.
pub mod transform {
    use super::*;

    /// Makes every job elastic (`[demand, 2·demand]`), fungible and
    /// hetero-capable — the Ideal scenario's "for jobs without a
    /// pre-defined scaling range, we consider its requested demand to be
    /// the base demand, and its scaling range is twice that".
    pub fn idealize(trace: &mut JobTrace) {
        for job in &mut trace.jobs {
            if job.elasticity.is_none() {
                // Keep the same total work: the old running time was at
                // `demand` workers; at the new `w_max = 2·demand` the
                // minimum running time halves (linear scaling).
                let old_rt = job.running_time(job.demand);
                job.elasticity = Some(Elasticity::new(job.demand.max(1), job.demand.max(1) * 2));
                let s_min = job.curve.speedup(job.w_min());
                let s_max = job.curve.speedup(job.w_max());
                job.min_running_time_s = old_rt * s_min / s_max;
                if job.model == ModelFamily::Generic {
                    job.model = ModelFamily::ResNet50;
                }
            }
            job.fungible = true;
            job.hetero_capable = true;
        }
    }

    /// Converts a target fraction of jobs to elastic (Figures 14–16's
    /// sweep), deterministically by seed.
    pub fn set_elastic_fraction(trace: &mut JobTrace, fraction: f64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for job in &mut trace.jobs {
            let make = rng.gen_bool(fraction.clamp(0.0, 1.0));
            if make && job.elasticity.is_none() {
                let old_rt = job.running_time(job.demand);
                job.elasticity = Some(Elasticity::new(job.demand.max(1), job.demand.max(1) * 2));
                let s_min = job.curve.speedup(job.w_min());
                let s_max = job.curve.speedup(job.w_max());
                job.min_running_time_s = old_rt * s_min / s_max;
                job.fungible = true;
                if job.model == ModelFamily::Generic {
                    job.model = ModelFamily::ResNet50;
                }
            } else if !make && job.elasticity.is_some() {
                // Demote: run at base demand.
                let rt = job.running_time(job.w_min());
                job.elasticity = None;
                job.min_running_time_s = rt;
            }
        }
    }

    /// Applies §7.2's imperfect-scaling model to all elastic jobs: each
    /// added worker loses 20 % of its throughput.
    pub fn imperfect_scaling(trace: &mut JobTrace, loss: f64) {
        for job in &mut trace.jobs {
            if job.elasticity.is_some() {
                job.curve = ScalingCurve::PerWorkerLoss { loss };
            }
        }
    }

    /// The Heterogeneous scenario: the fungible load is disabled and the
    /// given fraction of jobs becomes heterogeneous-capable.
    pub fn heterogeneous_only(trace: &mut JobTrace, hetero_fraction: f64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for job in &mut trace.jobs {
            job.fungible = false;
            job.hetero_capable = rng.gen_bool(hetero_fraction.clamp(0.0, 1.0));
        }
    }

    /// Marks a fraction of jobs as hetero-capable *in addition* to the
    /// existing flags (the Advanced scenario's extra 10 %).
    pub fn add_hetero_fraction(trace: &mut JobTrace, fraction: f64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for job in &mut trace.jobs {
            if rng.gen_bool(fraction.clamp(0.0, 1.0)) {
                job.hetero_capable = true;
            }
        }
    }

    /// Sets the checkpointing flag on a fraction of jobs (Figure 13).
    pub fn set_checkpoint_fraction(trace: &mut JobTrace, fraction: f64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for job in &mut trace.jobs {
            job.checkpointing = rng.gen_bool(fraction.clamp(0.0, 1.0));
        }
    }

    /// Gives every job an explicit shrink/expand cost — the malleable
    /// scenario. The costs are charged as extra training stalls on each
    /// scale-in/scale-out (and on forced flex releases), so they only
    /// bite for jobs that actually resize.
    pub fn set_resize_costs(trace: &mut JobTrace, shrink_s: f64, expand_s: f64) {
        for job in &mut trace.jobs {
            job.shrink_cost_s = shrink_s;
            job.expand_cost_s = expand_s;
        }
    }

    /// Gives every job an SLO deadline at `submit + slack_mult · u ·
    /// base_running_time` with `u` drawn uniformly from `[1, 4)` per job
    /// (deterministically by seed). The same seed draws the same `u`s, so
    /// a larger `slack_mult` strictly relaxes every deadline — the
    /// deadline-slack monotonicity oracle depends on this.
    pub fn set_deadlines(trace: &mut JobTrace, slack_mult: f64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for job in &mut trace.jobs {
            let u: f64 = rng.gen_range(1.0..4.0);
            let base = job.running_time(job.demand);
            job.deadline_s = Some(job.submit_time_s + slack_mult * u * base);
        }
    }
}

/// Derives the [`PolicyContext`] a scenario hands to policy builders:
/// the scenario seed, plus the opportunistic GPU budget — the most the
/// inference cluster can ever lend (its servers minus the demand at the
/// traffic trough minus headroom). Fungible jobs larger than that
/// budget fall back to training.
fn policy_context(scenario: &Scenario, inference: &InferenceTrace) -> PolicyContext {
    let servers = scenario.cluster.inference_servers;
    let gpus = scenario.cluster.gpus_per_server;
    let min_util = inference.samples.iter().copied().fold(1.0_f64, f64::min);
    let needed_at_trough =
        ((min_util * f64::from(servers * gpus)) / f64::from(gpus)).ceil() as u32;
    let headroom = (0.02 * f64::from(servers)).ceil() as u32;
    let loanable = servers.saturating_sub(needed_at_trough + headroom);
    PolicyContext {
        seed: scenario.seed,
        opportunistic_gpus: loanable * gpus,
    }
}

/// Runs one scenario over the given traces.
///
/// The job trace must have dense ids `0..n` (as produced by
/// `lyra-trace`); vector order does not matter. The inference trace is
/// only consulted when the scenario enables loaning.
///
/// # Errors
///
/// Propagates [`SimError`] on internal inconsistencies, including a job
/// trace with duplicate or gapped ids.
pub fn run_scenario(
    scenario: &Scenario,
    jobs: &JobTrace,
    inference: &InferenceTrace,
) -> Result<SimReport, SimError> {
    build_simulation(scenario, jobs, inference)?.run(&scenario.name)
}

/// Runs one scenario with an observer attached: the returned report
/// additionally carries the structured event log (`events`), hourly
/// metrics snapshots (`metrics`) and the span profile (`profile`).
///
/// # Errors
///
/// Propagates [`SimError`] on internal inconsistencies; a sink-file
/// creation failure surfaces as a `SimError` too.
pub fn run_scenario_observed(
    scenario: &Scenario,
    jobs: &JobTrace,
    inference: &InferenceTrace,
    observer: ObserverConfig,
) -> Result<SimReport, SimError> {
    build_simulation(scenario, jobs, inference)?
        .with_observer(observer)
        .map_err(|e| SimError(format!("event-log sink: {e}")))?
        .run(&scenario.name)
}

/// Builds the ready-to-run [`Simulation`] for a scenario without running
/// it. This is the entry point for harnesses that drive the engine
/// through [`Simulation::run_to_outcome`] — attaching their own observer
/// first and handling crash outcomes — instead of the one-shot
/// [`run_scenario`] wrappers.
///
/// # Errors
///
/// Propagates [`SimError`] on a job trace with duplicate or gapped ids.
pub fn build_scenario(
    scenario: &Scenario,
    jobs: &JobTrace,
    inference: &InferenceTrace,
) -> Result<Simulation, SimError> {
    build_simulation(scenario, jobs, inference)
}

pub(crate) fn build_simulation(
    scenario: &Scenario,
    jobs: &JobTrace,
    inference: &InferenceTrace,
) -> Result<Simulation, SimError> {
    validate_scenario(scenario, jobs).map_err(|e| SimError(e.to_string()))?;
    let registry = PolicyRegistry::builtin();
    let entry = registry
        .get_checked(&scenario.policy)
        .map_err(|e| SimError(e.to_string()))?;
    let naive_placement = entry.naive_placement;
    let ctx = policy_context(scenario, inference);
    let policy: Box<dyn JobScheduler> = (entry.build)(&ctx);
    let cluster = ClusterState::new(scenario.cluster);
    // The inference scheduler is always present — its cluster exists and
    // counts toward overall usage even when loaning is disabled; the
    // orchestrator (which moves servers) only exists with loaning.
    let mut inf = InferenceScheduler::new(
        inference.clone(),
        scenario.cluster.inference_servers,
        scenario.cluster.gpus_per_server,
    );
    if scenario.use_capacity_model {
        inf.capacity_model = Some(lyra_cluster::capacity::CapacityEstimator::typical());
    }
    if scenario.use_predictor {
        let mut p = UsagePredictor::new(LstmConfig::default());
        // Train on the first day of samples (288 points).
        let train_len = inference.samples.len().min(288);
        p.train_series(&inference.samples[..train_len], 3);
        inf.predictor = Some(p);
    }
    let orchestrator = scenario
        .loaning
        .map(|reclaim| Orchestrator::new(reclaim, scenario.seed));
    let inference_sched = Some(inf);
    let estimator = RuntimeEstimator::new(scenario.estimator);
    // The engine indexes jobs by vector position and requires ids to be
    // dense (`Arrival(i)` ↔ `jobs[i]`), so canonicalise here: trace
    // vector order is not a semantic input, only `(submit_time, id)`
    // is. A stable no-op for generated traces, which are already
    // id-ordered.
    let mut specs: Vec<JobSpec> = jobs.jobs.clone();
    specs.sort_by_key(|s| s.id);
    let mut sim_config = scenario.sim;
    if sim_config.usage_horizon_s <= 0.0 {
        sim_config.usage_horizon_s = f64::from(jobs.config.days) * 86_400.0;
    }
    if naive_placement {
        sim_config.special_placement = false;
    }
    let mut sim = Simulation::new(
        sim_config,
        cluster,
        policy,
        orchestrator,
        inference_sched,
        estimator,
        specs,
    )?;
    if let Some(plan) = &scenario.faults {
        sim = sim.with_faults(plan.clone());
    }
    Ok(sim)
}

/// Small deterministic scenario inputs shared by the unit tests, the
/// metamorphic property suite in `lyra-oracle`, and the golden-trace
/// gate in `lyra-bench`.
///
/// Everything here is a pure function of its seed, so a property
/// harness can enumerate instances without pulling in a strategy
/// library, and a pinned `(generator, seed)` pair names a scenario
/// exactly.
pub mod generators {
    use super::*;
    use lyra_trace::{InferenceTraceConfig, TraceConfig};

    /// A one-day, 64-GPU job trace paired with a matching two-day
    /// inference trace: big enough to exercise loans, reclaims and
    /// elastic scaling, small enough to simulate in milliseconds.
    pub fn tiny_traces(seed: u64) -> (JobTrace, InferenceTrace) {
        let jobs = JobTrace::generate(TraceConfig {
            days: 1,
            training_gpus: 64,
            target_load: 0.6,
            max_demand_gpus: 32,
            seed,
            ..TraceConfig::default()
        });
        let inf = InferenceTrace::generate(InferenceTraceConfig {
            days: 2,
            total_gpus: 64,
            seed,
            ..InferenceTraceConfig::default()
        });
        (jobs, inf)
    }

    /// The 8+8 server, 8-GPU cluster the tiny traces are sized for.
    pub fn tiny_cluster() -> ClusterConfig {
        ClusterConfig {
            training_servers: 8,
            inference_servers: 8,
            gpus_per_server: 8,
            speed: lyra_core::gpu::SpeedFactors::default(),
        }
    }

    /// [`Scenario::basic`] shrunk onto the tiny cluster with the given
    /// seed — the default subject for whole-simulation properties.
    pub fn tiny_basic(seed: u64) -> Scenario {
        let mut s = Scenario::basic();
        s.cluster = tiny_cluster();
        s.seed = seed;
        s
    }
}

/// The scenario zoo: the named (scenario, traces) cells the ablation
/// runner sweeps every registered policy across, and the subjects of the
/// committed golden traces beyond the original `tiny-basic` family.
///
/// Every cell is a pure function of its pinned seed; `lyra-bench ablate`
/// iterates [`cases`](zoo::cases) in order, so the ablation matrix is
/// deterministic row-by-row.
pub mod zoo {
    use super::generators::{tiny_cluster, tiny_traces};
    use super::*;
    use lyra_core::gpu::SpeedFactors;

    /// One named scenario cell.
    pub struct ZooCase {
        /// Unique cell name (also the golden-trace directory suffix).
        pub name: &'static str,
        /// One-line description for listings.
        pub summary: &'static str,
        /// Seed pinning the cell's traces and scenario.
        pub seed: u64,
    }

    impl ZooCase {
        /// Materialises the cell: scenario plus the transformed traces.
        pub fn build(&self) -> (Scenario, JobTrace, InferenceTrace) {
            build_case(self.name, self.seed)
        }
    }

    /// Every zoo cell, in sweep order.
    pub fn cases() -> Vec<ZooCase> {
        vec![
            ZooCase {
                name: "basic",
                summary: "homogeneous fleet, Table 5 Basic configuration",
                seed: 21,
            },
            ZooCase {
                name: "hetero",
                summary: "mixed GPU generations: V100s at 1.25x, T4s at 0.8x reference speed",
                seed: 22,
            },
            ZooCase {
                name: "malleable",
                summary: "70% elastic jobs paying explicit shrink (30s) / expand (45s) costs",
                seed: 23,
            },
            ZooCase {
                name: "deadline",
                summary: "every job carries an SLO deadline at 2x slack; misses are rolled up",
                seed: 24,
            },
        ]
    }

    /// The per-cell speed factors of the `hetero` cell.
    pub fn hetero_speed() -> SpeedFactors {
        SpeedFactors { v100: 1.25, t4: 0.8 }
    }

    fn build_case(name: &str, seed: u64) -> (Scenario, JobTrace, InferenceTrace) {
        let (mut jobs, inf) = tiny_traces(seed);
        let mut s = Scenario::basic();
        s.cluster = tiny_cluster();
        s.seed = seed;
        s.name = format!("zoo-{name}");
        match name {
            "basic" => {}
            "hetero" => {
                s.cluster = s.cluster.with_speed(hetero_speed());
            }
            "malleable" => {
                transform::set_elastic_fraction(&mut jobs, 0.7, seed ^ 1);
                transform::set_resize_costs(&mut jobs, 30.0, 45.0);
            }
            "deadline" => {
                transform::set_deadlines(&mut jobs, 2.0, seed ^ 1);
            }
            other => unreachable!("zoo case {other} has no builder"),
        }
        (s, jobs, inf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use generators::{tiny_cluster, tiny_traces};

    #[test]
    fn baseline_runs_to_completion() {
        let (jobs, inf) = tiny_traces(1);
        let mut s = Scenario::baseline();
        s.cluster = tiny_cluster();
        let report = run_scenario(&s, &jobs, &inf).expect("runs");
        assert_eq!(report.completed, jobs.jobs.len());
        assert_eq!(report.preemption_ratio, 0.0, "no loaning → no preemption");
        assert!(report.jct.mean > 0.0);
        assert!(report.training_usage > 0.0);
    }

    #[test]
    fn basic_beats_baseline_on_queuing() {
        let (jobs, inf) = tiny_traces(2);
        let mut base = Scenario::baseline();
        base.cluster = tiny_cluster();
        let mut basic = Scenario::basic();
        basic.cluster = tiny_cluster();
        let rb = run_scenario(&base, &jobs, &inf).expect("baseline runs");
        let rl = run_scenario(&basic, &jobs, &inf).expect("lyra runs");
        assert_eq!(rl.completed, jobs.jobs.len());
        assert!(
            rl.queuing.mean <= rb.queuing.mean * 1.05,
            "lyra {:.0}s vs baseline {:.0}s",
            rl.queuing.mean,
            rb.queuing.mean
        );
    }

    #[test]
    fn malformed_trace_ids_error_instead_of_aliasing() {
        let (jobs, inf) = tiny_traces(1);
        let mut s = Scenario::baseline();
        s.cluster = tiny_cluster();

        // Duplicate id: two jobs would silently share one engine slot.
        let mut dup = jobs.clone();
        dup.jobs[1].id = dup.jobs[0].id;
        let err = run_scenario(&s, &dup, &inf).expect_err("duplicate ids must be rejected");
        assert!(err.to_string().contains("trace ids"), "{err}");

        // Gapped id: would index out of bounds at arrival time.
        let mut gap = jobs.clone();
        let last = gap.jobs.len() - 1;
        gap.jobs[last].id.0 += 1;
        let err = run_scenario(&s, &gap, &inf).expect_err("gapped ids must be rejected");
        assert!(err.to_string().contains("trace ids"), "{err}");
    }

    #[test]
    fn trace_vector_order_is_not_semantic() {
        // Dense ids in any vector order canonicalise to the same run.
        let (jobs, inf) = tiny_traces(5);
        let mut s = Scenario::baseline();
        s.cluster = tiny_cluster();
        let mut shuffled = jobs.clone();
        shuffled.jobs.reverse();
        let a = run_scenario(&s, &jobs, &inf).expect("ordered runs");
        let b = run_scenario(&s, &shuffled, &inf).expect("reversed runs");
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_given_seed() {
        let (jobs, inf) = tiny_traces(3);
        let mut s = Scenario::basic();
        s.cluster = tiny_cluster();
        let a = run_scenario(&s, &jobs, &inf).expect("runs");
        let b = run_scenario(&s, &jobs, &inf).expect("runs");
        assert_eq!(a, b);
    }

    #[test]
    fn all_policies_complete_all_jobs() {
        let (jobs, inf) = tiny_traces(4);
        for (kind, loaning) in [
            ("fifo", None),
            ("fifo-backfill", None),
            ("gandiva", None),
            ("afs", None),
            ("pollux", None),
            ("lyra", Some(ReclaimPolicy::Lyra)),
            ("lyra-no-elastic", Some(ReclaimPolicy::Scf)),
            ("opportunistic", Some(ReclaimPolicy::Random)),
        ] {
            let mut s = Scenario::base("policy-test");
            s.cluster = tiny_cluster();
            s.policy = kind.to_string();
            s.loaning = loaning;
            let r = run_scenario(&s, &jobs, &inf).unwrap_or_else(|e| panic!("{kind}: {e}"));
            if kind == "opportunistic" {
                // At toy scale some fungible jobs legitimately never fit
                // the inference cluster's loanable trough.
                assert!(
                    r.completed >= jobs.jobs.len() * 85 / 100,
                    "{kind} finished only {}/{}",
                    r.completed,
                    jobs.jobs.len()
                );
            } else {
                assert_eq!(r.completed, jobs.jobs.len(), "{kind} left jobs unfinished");
            }
        }
    }

    #[test]
    fn invalid_configs_are_rejected_with_typed_errors() {
        let (jobs, inf) = tiny_traces(1);
        let good = generators::tiny_basic(1);

        let mut bad_policy = good.clone();
        bad_policy.policy = "lyra-quantum".to_string();
        assert!(matches!(
            validate_scenario(&bad_policy, &jobs),
            Err(ConfigError::UnknownPolicy(ref e)) if e.name == "lyra-quantum"
        ));
        let err = run_scenario(&bad_policy, &jobs, &inf).expect_err("unknown policy errors");
        assert!(err.to_string().contains("lyra-quantum"), "{err}");

        let mut bad_speed = good.clone();
        bad_speed.cluster.speed.t4 = 0.0;
        assert!(matches!(
            validate_scenario(&bad_speed, &jobs),
            Err(ConfigError::NonPositiveSpeedFactor { gpu: GpuType::T4, .. })
        ));
        assert!(run_scenario(&bad_speed, &jobs, &inf).is_err());

        let mut bad_shrink = jobs.clone();
        bad_shrink.jobs[2].shrink_cost_s = -1.0;
        assert!(matches!(
            validate_scenario(&good, &bad_shrink),
            Err(ConfigError::NegativeShrinkCost { cost_s, .. }) if cost_s == -1.0
        ));

        let mut bad_expand = jobs.clone();
        bad_expand.jobs[2].expand_cost_s = f64::NAN;
        assert!(matches!(
            validate_scenario(&good, &bad_expand),
            Err(ConfigError::NegativeExpandCost { .. })
        ));

        let mut bad_deadline = jobs.clone();
        bad_deadline.jobs[3].deadline_s = Some(bad_deadline.jobs[3].submit_time_s - 1.0);
        match validate_scenario(&good, &bad_deadline) {
            Err(ConfigError::DeadlineBeforeArrival { job, .. }) => {
                assert_eq!(job, bad_deadline.jobs[3].id.0);
            }
            other => panic!("expected DeadlineBeforeArrival, got {other:?}"),
        }
        assert!(run_scenario(&good, &bad_deadline, &inf).is_err());
    }

    #[test]
    fn zoo_cases_build_deterministically_and_run() {
        for case in zoo::cases() {
            let (s1, j1, i1) = case.build();
            let (s2, j2, i2) = case.build();
            assert_eq!(s1, s2, "{} scenario is pure in its seed", case.name);
            assert_eq!(j1, j2);
            assert_eq!(i1, i2);
            let r = run_scenario(&s1, &j1, &i1)
                .unwrap_or_else(|e| panic!("zoo case {}: {e}", case.name));
            assert!(r.completed > 0, "{} completed nothing", case.name);
            if case.name == "deadline" {
                assert_eq!(
                    r.deadlines.with_deadline,
                    j1.jobs.len(),
                    "every job carries a deadline"
                );
                assert_eq!(r.deadlines.met + r.deadlines.missed, r.deadlines.with_deadline);
            } else {
                assert_eq!(r.deadlines.with_deadline, 0);
            }
        }
    }

    #[test]
    fn hetero_speed_factors_change_the_outcome() {
        // A uniformly faster fleet must not be slower on mean JCT; a
        // distinctly-skewed fleet must produce a different report than
        // the reference fleet (the factor actually reaches the engine).
        let (jobs, inf) = tiny_traces(22);
        let reference = generators::tiny_basic(22);
        let mut faster = reference.clone();
        faster.cluster.speed = lyra_core::gpu::SpeedFactors { v100: 2.0, t4: 2.0 };
        let r_ref = run_scenario(&reference, &jobs, &inf).expect("reference runs");
        let r_fast = run_scenario(&faster, &jobs, &inf).expect("faster runs");
        assert!(
            r_fast.jct.mean <= r_ref.jct.mean + 1e-9,
            "2x fleet mean JCT {:.0}s vs reference {:.0}s",
            r_fast.jct.mean,
            r_ref.jct.mean
        );
        assert_ne!(r_ref, r_fast, "speed factors reach the progress model");
    }

    #[test]
    fn resize_costs_are_charged_and_attributed() {
        // With aggressive costs the malleable trace must not finish
        // faster than the free-resize trace, and the stall shows up in
        // the loan-scale-in / launch-overhead attribution buckets.
        let (mut free, inf) = tiny_traces(23);
        transform::set_elastic_fraction(&mut free, 0.7, 23 ^ 1);
        let mut costly = free.clone();
        transform::set_resize_costs(&mut costly, 600.0, 600.0);
        let s = generators::tiny_basic(23);
        let r_free = run_scenario(&s, &free, &inf).expect("free runs");
        let r_costly = run_scenario(&s, &costly, &inf).expect("costly runs");
        assert!(r_costly.scaling_ops > 0, "scenario exercises resizing");
        assert!(
            r_costly.jct.mean >= r_free.jct.mean - 1e-9,
            "600s resize costs cannot speed the run up: {:.0}s vs {:.0}s",
            r_costly.jct.mean,
            r_free.jct.mean
        );
    }

    #[test]
    fn same_seed_observed_runs_emit_identical_event_logs() {
        let (jobs, inf) = tiny_traces(10);
        let mut s = Scenario::basic();
        s.cluster = tiny_cluster();
        let a = run_scenario_observed(&s, &jobs, &inf, ObserverConfig::default()).expect("runs");
        let b = run_scenario_observed(&s, &jobs, &inf, ObserverConfig::default()).expect("runs");
        assert!(!a.events.is_empty(), "observed run emits events");
        assert_eq!(a.events, b.events, "same-seed logs are byte-identical");
        assert_eq!(a.metrics, b.metrics, "same-seed snapshots match");
        assert!(!a.metrics.is_empty(), "at least the closing snapshot");
        assert!(
            a.profile.0.iter().any(|p| p.name == "sim.scheduler_tick"),
            "engine tick is profiled: {:?}",
            a.profile.0
        );
        assert!(
            a.profile
                .0
                .iter()
                .any(|p| p.name.starts_with("core.placement")),
            "placement is profiled: {:?}",
            a.profile.0
        );
    }

    #[test]
    fn same_seed_telemetry_exports_are_byte_identical() {
        let (jobs, inf) = tiny_traces(10);
        let mut s = Scenario::basic();
        s.cluster = tiny_cluster();
        let a = run_scenario_observed(&s, &jobs, &inf, ObserverConfig::default()).expect("runs");
        let b = run_scenario_observed(&s, &jobs, &inf, ObserverConfig::default()).expect("runs");
        assert!(a.telemetry.epochs > 0, "telemetry sampled every epoch");
        assert!(
            a.telemetry.series("queue.depth").is_some()
                && a.telemetry.series("util.dedicated").is_some()
                && a.telemetry.series("rate.preemptions").is_some(),
            "core gauges present: {:?}",
            a.telemetry.series_names().collect::<Vec<_>>()
        );
        let csv = a.telemetry.to_csv();
        assert!(csv.lines().count() > 1, "CSV export has data rows");
        assert_eq!(csv, b.telemetry.to_csv(), "same-seed series CSV is byte-identical");
        assert_eq!(
            lyra_obs::render_prometheus(&a.telemetry, a.metrics.last()),
            lyra_obs::render_prometheus(&b.telemetry, b.metrics.last()),
            "same-seed Prometheus exposition is byte-identical"
        );
    }

    #[test]
    fn fault_events_in_log_match_fault_stats() {
        use crate::faults::{FaultConfig, FaultPlan};
        use lyra_obs::SchedEvent;

        let (mut jobs, inf) = tiny_traces(11);
        transform::set_elastic_fraction(&mut jobs, 0.5, 4);
        transform::set_checkpoint_fraction(&mut jobs, 0.5, 5);
        let mut s = Scenario::basic();
        s.cluster = tiny_cluster();
        let horizon_s = 2.0 * 86_400.0;
        s.faults = Some(FaultPlan::generate(
            &FaultConfig {
                server_crash_rate_per_day: 0.5,
                worker_failure_rate_per_day: 24.0,
                checkpoint_restore_failure_prob: 0.3,
                straggler_rate_per_day: 2.0,
                dropped_tick_prob: 0.05,
                horizon_s,
                ..FaultConfig::default()
            },
            16,
            0xFA11,
        ));
        let r = run_scenario_observed(&s, &jobs, &inf, ObserverConfig::default()).expect("runs");
        let log = r.events.join("\n");
        let parsed = lyra_obs::parse_log(&log).expect("log parses");
        let count = |kind: &str| {
            parsed
                .iter()
                .filter(
                    |e| matches!(&e.event, SchedEvent::Fault { kind: k, .. } if k == kind),
                )
                .count() as u32
        };
        assert!(r.fault.injected > 0, "plan injected faults");
        assert_eq!(count("injected"), r.fault.injected);
        assert_eq!(count("server_crash"), r.fault.server_crashes);
        assert_eq!(count("worker_failure"), r.fault.worker_failures);
        assert_eq!(count("straggler"), r.fault.stragglers);
        assert_eq!(count("dropped_tick"), r.fault.dropped_ticks);
        assert_eq!(count("job_killed"), r.fault.jobs_killed);
        assert_eq!(count("elastic_absorbed"), r.fault.elastic_absorbed);
        assert_eq!(count("restart"), r.fault.restarts);
        assert_eq!(count("checkpoint_restore"), r.fault.checkpoint_restores);
        assert_eq!(
            count("checkpoint_restore_failure"),
            r.fault.checkpoint_restore_failures
        );
        let carryovers = parsed
            .iter()
            .filter(|e| matches!(e.event, SchedEvent::ReclaimCarryover { .. }))
            .count() as u32;
        assert_eq!(carryovers, r.fault.reclaim_carryovers);
        let misses = parsed
            .iter()
            .filter(|e| matches!(e.event, SchedEvent::ReclaimDeadlineMiss { .. }))
            .count() as u32;
        assert_eq!(misses, r.fault.reclaim_deadline_violations);
    }

    #[test]
    fn observer_overhead_is_bounded() {
        let (jobs, inf) = tiny_traces(12);
        let mut s = Scenario::basic();
        s.cluster = tiny_cluster();
        // Warm up caches/allocator, then take the best of two runs each
        // way to damp scheduler noise on shared CI machines.
        let _ = run_scenario(&s, &jobs, &inf).expect("runs");
        let time_it = |observed: bool| {
            let mut best = f64::INFINITY;
            for _ in 0..2 {
                let start = std::time::Instant::now();
                if observed {
                    run_scenario_observed(&s, &jobs, &inf, ObserverConfig::default())
                        .expect("runs");
                } else {
                    run_scenario(&s, &jobs, &inf).expect("runs");
                }
                best = best.min(start.elapsed().as_secs_f64());
            }
            best
        };
        let plain = time_it(false);
        let observed = time_it(true);
        // The measured overhead sits well under the 5 % budget on an idle
        // machine; the assertion uses a deliberately loose CI-safe bound
        // (3× plus 50 ms of absolute slack) so timer noise on loaded
        // shared runners cannot flake the suite.
        assert!(
            observed <= plain * 3.0 + 0.05,
            "instrumented run {observed:.4}s vs plain {plain:.4}s"
        );
    }

    #[test]
    fn idealize_transform_makes_everything_flexible() {
        let (mut jobs, _) = tiny_traces(5);
        transform::idealize(&mut jobs);
        for j in &jobs.jobs {
            assert!(j.is_elastic());
            assert!(j.fungible && j.hetero_capable);
            assert_eq!(j.w_max(), 2 * j.w_min());
        }
    }

    #[test]
    fn idealize_preserves_total_work() {
        let (mut jobs, _) = tiny_traces(6);
        let before: Vec<f64> = jobs.jobs.iter().map(|j| j.running_time(j.demand)).collect();
        transform::idealize(&mut jobs);
        for (j, rt) in jobs.jobs.iter().zip(before) {
            assert!(
                (j.running_time(j.demand) - rt).abs() < 1e-6,
                "running time at the requested demand is invariant"
            );
        }
    }

    #[test]
    fn checkpoint_transform_reduces_lost_work() {
        let (mut jobs, inf) = tiny_traces(7);
        transform::set_checkpoint_fraction(&mut jobs, 1.0, 9);
        assert!(jobs.jobs.iter().all(|j| j.checkpointing));
        let mut s = Scenario::basic();
        s.cluster = tiny_cluster();
        let r = run_scenario(&s, &jobs, &inf).expect("runs");
        assert_eq!(r.completed, jobs.jobs.len());
    }

    #[test]
    fn elastic_fraction_transform_hits_target() {
        let (mut jobs, _) = tiny_traces(8);
        transform::set_elastic_fraction(&mut jobs, 0.8, 3);
        let frac =
            jobs.jobs.iter().filter(|j| j.is_elastic()).count() as f64 / jobs.jobs.len() as f64;
        assert!((frac - 0.8).abs() < 0.15, "elastic fraction {frac}");
    }

    #[test]
    fn imperfect_scaling_swaps_curves() {
        let (mut jobs, _) = tiny_traces(9);
        transform::idealize(&mut jobs);
        transform::imperfect_scaling(&mut jobs, 0.2);
        assert!(jobs
            .jobs
            .iter()
            .all(|j| j.curve == ScalingCurve::PerWorkerLoss { loss: 0.2 }));
    }

    // Satellite invariant of the incremental-snapshot overhaul and the
    // incremental reclaim engine: after an arbitrary event sequence
    // (arrivals, launches, scaling, loaning, reclaims, crashes, worker
    // failures, stragglers, dropped ticks) the incrementally-maintained
    // snapshot *and* the incremental preemption-cost engine must drive
    // the exact same run as rebuilding from scratch every epoch / every
    // reclaim. The engine's `cfg(test)` per-epoch assertion additionally
    // checks snapshot equality at every single tick of the incremental
    // run.
    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 8,
            ..proptest::prelude::ProptestConfig::default()
        })]
        #[test]
        fn incremental_snapshot_reproduces_from_scratch_runs(
            seed in 0u64..1024,
            elastic_fraction in 0.0f64..1.0,
            checkpoint_fraction in 0.0f64..1.0,
            faulty in proptest::bool::ANY,
        ) {
            use crate::faults::{FaultConfig, FaultPlan};

            let (mut jobs, inf) = tiny_traces(seed);
            transform::set_elastic_fraction(&mut jobs, elastic_fraction, seed ^ 1);
            transform::set_checkpoint_fraction(&mut jobs, checkpoint_fraction, seed ^ 2);
            let mut s = Scenario::basic();
            s.cluster = tiny_cluster();
            if faulty {
                s.faults = Some(FaultPlan::generate(
                    &FaultConfig {
                        server_crash_rate_per_day: 1.0,
                        worker_failure_rate_per_day: 12.0,
                        checkpoint_restore_failure_prob: 0.3,
                        straggler_rate_per_day: 2.0,
                        dropped_tick_prob: 0.05,
                        horizon_s: 2.0 * 86_400.0,
                        ..FaultConfig::default()
                    },
                    8,
                    seed ^ 0xFA11,
                ));
            }
            let mut incremental = s.clone();
            incremental.sim.incremental_snapshot = true;
            incremental.sim.incremental_reclaim = true;
            let mut from_scratch = s;
            from_scratch.sim.incremental_snapshot = false;
            from_scratch.sim.incremental_reclaim = false;
            let a = run_scenario(&incremental, &jobs, &inf).expect("incremental runs");
            let b = run_scenario(&from_scratch, &jobs, &inf).expect("from-scratch runs");
            proptest::prop_assert_eq!(a, b);
        }
    }
}
