//! Scenario definitions and the runner — the configurations of Table 5
//! and the deep-dive experiments (§7.1).
//!
//! A [`Scenario`] names a (cluster, policy, loaning, engine) combination;
//! [`run_scenario`] wires the traces, cluster state, policy, orchestrator
//! and inference scheduler into a [`Simulation`] and returns its
//! [`SimReport`]. Trace *transforms* implement the scenario definitions:
//! `Ideal` makes every job elastic/fungible/hetero with perfect
//! performance, `Heterogeneous` disables the fungible load, imperfect
//! scaling swaps elastic jobs' curves for the 20 %-loss model, and the
//! checkpoint/elastic-fraction sweeps of Figures 13–16 rewrite job flags.

use crate::engine::{ObserverConfig, SimConfig, SimError, Simulation};
use crate::faults::FaultPlan;
use crate::metrics::SimReport;
use lyra_cluster::inference::InferenceScheduler;
use lyra_cluster::orchestrator::{Orchestrator, ReclaimPolicy};
use lyra_cluster::state::{ClusterConfig, ClusterState};
use lyra_core::job::{Elasticity, JobSpec, ModelFamily, ScalingCurve};
use lyra_core::policies::{
    AfsScheduler, FifoScheduler, GandivaScheduler, JobScheduler, LyraConfig, LyraScheduler,
    PolluxConfig, PolluxScheduler,
};
use lyra_core::AllocationConfig;
use lyra_core::PlacementConfig;
use lyra_predictor::{LstmConfig, RuntimeEstimator, RuntimeEstimatorConfig, UsagePredictor};
use lyra_trace::{InferenceTrace, JobTrace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which job scheduler a scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Strict FIFO (the Baseline).
    Fifo,
    /// FIFO with backfill.
    FifoBackfill,
    /// FIFO with fungible jobs queued to the inference cluster only
    /// (Opportunistic Scheduling).
    Opportunistic,
    /// Lyra's full two-phase scheduler.
    Lyra,
    /// Lyra with the elastic phase disabled (capacity-loaning-only rows).
    LyraNoElastic,
    /// Lyra without §5.3's special elastic placement (Table 6).
    LyraNaivePlacement,
    /// Gandiva comparator.
    Gandiva,
    /// AFS comparator.
    Afs,
    /// Pollux comparator (goodput GA + tuning).
    Pollux,
    /// Lyra with least-attained-service phase-1 ordering — the
    /// information-agnostic variant the paper names as future work.
    LyraLas,
    /// Lyra with the greedy phase-2 solver instead of the knapsack
    /// (ablation of §5.2's design choice).
    LyraGreedyPhase2,
}

/// A full experiment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Label used in reports.
    pub name: String,
    /// Cluster shape.
    pub cluster: ClusterConfig,
    /// Job-scheduling policy.
    pub policy: PolicyKind,
    /// Capacity loaning with this reclaim policy; `None` disables
    /// loaning entirely.
    pub loaning: Option<ReclaimPolicy>,
    /// Engine parameters.
    pub sim: SimConfig,
    /// Running-time estimator (Table 9 injects error here).
    pub estimator: RuntimeEstimatorConfig,
    /// Train the LSTM predictor on the utilisation trace and reclaim in
    /// advance (§6).
    pub use_predictor: bool,
    /// Drive the inference side's capacity target through the Erlang-C
    /// latency model instead of proportional busy GPUs.
    pub use_capacity_model: bool,
    /// Seed for the orchestrator's randomised comparators.
    pub seed: u64,
    /// Optional fault schedule injected into the run (crashes, worker
    /// failures, stragglers, dropped ticks).
    pub faults: Option<FaultPlan>,
}

impl Scenario {
    fn base(name: &str) -> Self {
        Scenario {
            name: name.to_string(),
            cluster: ClusterConfig::default(),
            policy: PolicyKind::Lyra,
            loaning: Some(ReclaimPolicy::Lyra),
            sim: SimConfig::default(),
            estimator: RuntimeEstimatorConfig::default(),
            use_predictor: false,
            use_capacity_model: false,
            seed: 0xCAFE,
            faults: None,
        }
    }

    /// Table 5 row 1: FIFO, no loaning, no scaling.
    ///
    /// Skips blocked jobs (YARN-style FIFO apps run whenever they fit):
    /// the paper's Baseline has a 55 s *median* queuing time at 82 %
    /// utilisation, which is incompatible with head-of-line blocking.
    pub fn baseline() -> Self {
        Scenario {
            policy: PolicyKind::FifoBackfill,
            loaning: None,
            ..Self::base("baseline")
        }
    }

    /// Table 5 row 2: the default Lyra configuration (fungible loaning +
    /// elastic scaling, no heterogeneous training).
    pub fn basic() -> Self {
        Self::base("basic")
    }

    /// Table 5 row 5: everything elastic/fungible/hetero at ideal
    /// performance (run on an idealised trace, see
    /// [`transform::idealize`]).
    pub fn ideal() -> Self {
        let mut s = Self::base("ideal");
        s.sim.hetero_efficiency = 1.0;
        s
    }

    /// Capacity-loaning-only rows (7–9): FIFO job scheduling plus loaning
    /// under the given reclaim policy.
    pub fn loaning_only(reclaim: ReclaimPolicy, name: &str) -> Self {
        Scenario {
            policy: PolicyKind::FifoBackfill,
            loaning: Some(reclaim),
            ..Self::base(name)
        }
    }

    /// Row 6: opportunistic scheduling of fungible jobs on idle inference
    /// servers (no managed loaning; evictions are random).
    pub fn opportunistic() -> Self {
        Scenario {
            policy: PolicyKind::Opportunistic,
            loaning: Some(ReclaimPolicy::Random),
            ..Self::base("opportunistic")
        }
    }

    /// Elastic-scaling-only rows (10–14): the given policy on the fixed
    /// training cluster.
    pub fn elastic_only(policy: PolicyKind, name: &str) -> Self {
        Scenario {
            policy,
            loaning: None,
            ..Self::base(name)
        }
    }

    /// Lyra+TunedJobs (row 14): Lyra scheduling with the tuning agent's
    /// goodput gain applied to elastic jobs.
    pub fn lyra_tuned() -> Self {
        let mut s = Self::elastic_only(PolicyKind::Lyra, "lyra+tuned");
        s.sim.tuned = true;
        s
    }

    /// The testbed shape of §7.5 (4 + 4 × 8-GPU servers).
    pub fn with_testbed_cluster(mut self) -> Self {
        self.cluster = ClusterConfig::testbed();
        self
    }
}

/// Trace transforms implementing scenario definitions.
pub mod transform {
    use super::*;

    /// Makes every job elastic (`[demand, 2·demand]`), fungible and
    /// hetero-capable — the Ideal scenario's "for jobs without a
    /// pre-defined scaling range, we consider its requested demand to be
    /// the base demand, and its scaling range is twice that".
    pub fn idealize(trace: &mut JobTrace) {
        for job in &mut trace.jobs {
            if job.elasticity.is_none() {
                // Keep the same total work: the old running time was at
                // `demand` workers; at the new `w_max = 2·demand` the
                // minimum running time halves (linear scaling).
                let old_rt = job.running_time(job.demand);
                job.elasticity = Some(Elasticity::new(job.demand.max(1), job.demand.max(1) * 2));
                let s_min = job.curve.speedup(job.w_min());
                let s_max = job.curve.speedup(job.w_max());
                job.min_running_time_s = old_rt * s_min / s_max;
                if job.model == ModelFamily::Generic {
                    job.model = ModelFamily::ResNet50;
                }
            }
            job.fungible = true;
            job.hetero_capable = true;
        }
    }

    /// Converts a target fraction of jobs to elastic (Figures 14–16's
    /// sweep), deterministically by seed.
    pub fn set_elastic_fraction(trace: &mut JobTrace, fraction: f64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for job in &mut trace.jobs {
            let make = rng.gen_bool(fraction.clamp(0.0, 1.0));
            if make && job.elasticity.is_none() {
                let old_rt = job.running_time(job.demand);
                job.elasticity = Some(Elasticity::new(job.demand.max(1), job.demand.max(1) * 2));
                let s_min = job.curve.speedup(job.w_min());
                let s_max = job.curve.speedup(job.w_max());
                job.min_running_time_s = old_rt * s_min / s_max;
                job.fungible = true;
                if job.model == ModelFamily::Generic {
                    job.model = ModelFamily::ResNet50;
                }
            } else if !make && job.elasticity.is_some() {
                // Demote: run at base demand.
                let rt = job.running_time(job.w_min());
                job.elasticity = None;
                job.min_running_time_s = rt;
            }
        }
    }

    /// Applies §7.2's imperfect-scaling model to all elastic jobs: each
    /// added worker loses 20 % of its throughput.
    pub fn imperfect_scaling(trace: &mut JobTrace, loss: f64) {
        for job in &mut trace.jobs {
            if job.elasticity.is_some() {
                job.curve = ScalingCurve::PerWorkerLoss { loss };
            }
        }
    }

    /// The Heterogeneous scenario: the fungible load is disabled and the
    /// given fraction of jobs becomes heterogeneous-capable.
    pub fn heterogeneous_only(trace: &mut JobTrace, hetero_fraction: f64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for job in &mut trace.jobs {
            job.fungible = false;
            job.hetero_capable = rng.gen_bool(hetero_fraction.clamp(0.0, 1.0));
        }
    }

    /// Marks a fraction of jobs as hetero-capable *in addition* to the
    /// existing flags (the Advanced scenario's extra 10 %).
    pub fn add_hetero_fraction(trace: &mut JobTrace, fraction: f64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for job in &mut trace.jobs {
            if rng.gen_bool(fraction.clamp(0.0, 1.0)) {
                job.hetero_capable = true;
            }
        }
    }

    /// Sets the checkpointing flag on a fraction of jobs (Figure 13).
    pub fn set_checkpoint_fraction(trace: &mut JobTrace, fraction: f64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for job in &mut trace.jobs {
            job.checkpointing = rng.gen_bool(fraction.clamp(0.0, 1.0));
        }
    }
}

fn build_policy(scenario: &Scenario, inference: &InferenceTrace) -> Box<dyn JobScheduler> {
    match scenario.policy {
        PolicyKind::Fifo => Box::new(FifoScheduler::new()),
        PolicyKind::FifoBackfill => Box::new(FifoScheduler::with_backfill()),
        PolicyKind::Opportunistic => {
            // The most the inference cluster can ever lend: its servers
            // minus the demand at the traffic trough minus headroom.
            // Fungible jobs larger than that fall back to training.
            let servers = scenario.cluster.inference_servers;
            let gpus = scenario.cluster.gpus_per_server;
            let min_util = inference.samples.iter().copied().fold(1.0_f64, f64::min);
            let needed_at_trough =
                ((min_util * f64::from(servers * gpus)) / f64::from(gpus)).ceil() as u32;
            let headroom = (0.02 * f64::from(servers)).ceil() as u32;
            let loanable = servers.saturating_sub(needed_at_trough + headroom);
            Box::new(FifoScheduler::opportunistic(loanable * gpus))
        }
        PolicyKind::Lyra => Box::new(LyraScheduler::default()),
        PolicyKind::LyraNoElastic => Box::new(LyraScheduler::new(LyraConfig::loaning_only())),
        PolicyKind::LyraNaivePlacement => Box::new(LyraScheduler::new(LyraConfig {
            allocation: AllocationConfig::default(),
            placement: PlacementConfig {
                special_elastic_treatment: false,
            },
        })),
        PolicyKind::Gandiva => Box::new(GandivaScheduler::new()),
        PolicyKind::Afs => Box::new(AfsScheduler::new()),
        PolicyKind::Pollux => Box::new(PolluxScheduler::new(PolluxConfig {
            seed: scenario.seed,
            ..PolluxConfig::default()
        })),
        PolicyKind::LyraLas => Box::new(LyraScheduler::new(LyraConfig {
            allocation: AllocationConfig {
                phase1: lyra_core::allocation::Phase1Order::Las,
                ..AllocationConfig::default()
            },
            placement: PlacementConfig::default(),
        })),
        PolicyKind::LyraGreedyPhase2 => Box::new(LyraScheduler::new(LyraConfig {
            allocation: AllocationConfig {
                phase2: lyra_core::allocation::Phase2Solver::Greedy,
                ..AllocationConfig::default()
            },
            placement: PlacementConfig::default(),
        })),
    }
}

/// Runs one scenario over the given traces.
///
/// The job trace must have dense ids `0..n` (as produced by
/// `lyra-trace`); vector order does not matter. The inference trace is
/// only consulted when the scenario enables loaning.
///
/// # Errors
///
/// Propagates [`SimError`] on internal inconsistencies, including a job
/// trace with duplicate or gapped ids.
pub fn run_scenario(
    scenario: &Scenario,
    jobs: &JobTrace,
    inference: &InferenceTrace,
) -> Result<SimReport, SimError> {
    build_simulation(scenario, jobs, inference)?.run(&scenario.name)
}

/// Runs one scenario with an observer attached: the returned report
/// additionally carries the structured event log (`events`), hourly
/// metrics snapshots (`metrics`) and the span profile (`profile`).
///
/// # Errors
///
/// Propagates [`SimError`] on internal inconsistencies; a sink-file
/// creation failure surfaces as a `SimError` too.
pub fn run_scenario_observed(
    scenario: &Scenario,
    jobs: &JobTrace,
    inference: &InferenceTrace,
    observer: ObserverConfig,
) -> Result<SimReport, SimError> {
    build_simulation(scenario, jobs, inference)?
        .with_observer(observer)
        .map_err(|e| SimError(format!("event-log sink: {e}")))?
        .run(&scenario.name)
}

/// Builds the ready-to-run [`Simulation`] for a scenario without running
/// it. This is the entry point for harnesses that drive the engine
/// through [`Simulation::run_to_outcome`] — attaching their own observer
/// first and handling crash outcomes — instead of the one-shot
/// [`run_scenario`] wrappers.
///
/// # Errors
///
/// Propagates [`SimError`] on a job trace with duplicate or gapped ids.
pub fn build_scenario(
    scenario: &Scenario,
    jobs: &JobTrace,
    inference: &InferenceTrace,
) -> Result<Simulation, SimError> {
    build_simulation(scenario, jobs, inference)
}

pub(crate) fn build_simulation(
    scenario: &Scenario,
    jobs: &JobTrace,
    inference: &InferenceTrace,
) -> Result<Simulation, SimError> {
    let cluster = ClusterState::new(scenario.cluster);
    let policy = build_policy(scenario, inference);
    // The inference scheduler is always present — its cluster exists and
    // counts toward overall usage even when loaning is disabled; the
    // orchestrator (which moves servers) only exists with loaning.
    let mut inf = InferenceScheduler::new(
        inference.clone(),
        scenario.cluster.inference_servers,
        scenario.cluster.gpus_per_server,
    );
    if scenario.use_capacity_model {
        inf.capacity_model = Some(lyra_cluster::capacity::CapacityEstimator::typical());
    }
    if scenario.use_predictor {
        let mut p = UsagePredictor::new(LstmConfig::default());
        // Train on the first day of samples (288 points).
        let train_len = inference.samples.len().min(288);
        p.train_series(&inference.samples[..train_len], 3);
        inf.predictor = Some(p);
    }
    let orchestrator = scenario
        .loaning
        .map(|reclaim| Orchestrator::new(reclaim, scenario.seed));
    let inference_sched = Some(inf);
    let estimator = RuntimeEstimator::new(scenario.estimator);
    // The engine indexes jobs by vector position and requires ids to be
    // dense (`Arrival(i)` ↔ `jobs[i]`), so canonicalise here: trace
    // vector order is not a semantic input, only `(submit_time, id)`
    // is. A stable no-op for generated traces, which are already
    // id-ordered.
    let mut specs: Vec<JobSpec> = jobs.jobs.clone();
    specs.sort_by_key(|s| s.id);
    let mut sim_config = scenario.sim;
    if sim_config.usage_horizon_s <= 0.0 {
        sim_config.usage_horizon_s = f64::from(jobs.config.days) * 86_400.0;
    }
    if scenario.policy == PolicyKind::LyraNaivePlacement {
        sim_config.special_placement = false;
    }
    let mut sim = Simulation::new(
        sim_config,
        cluster,
        policy,
        orchestrator,
        inference_sched,
        estimator,
        specs,
    )?;
    if let Some(plan) = &scenario.faults {
        sim = sim.with_faults(plan.clone());
    }
    Ok(sim)
}

/// Small deterministic scenario inputs shared by the unit tests, the
/// metamorphic property suite in `lyra-oracle`, and the golden-trace
/// gate in `lyra-bench`.
///
/// Everything here is a pure function of its seed, so a property
/// harness can enumerate instances without pulling in a strategy
/// library, and a pinned `(generator, seed)` pair names a scenario
/// exactly.
pub mod generators {
    use super::*;
    use lyra_trace::{InferenceTraceConfig, TraceConfig};

    /// A one-day, 64-GPU job trace paired with a matching two-day
    /// inference trace: big enough to exercise loans, reclaims and
    /// elastic scaling, small enough to simulate in milliseconds.
    pub fn tiny_traces(seed: u64) -> (JobTrace, InferenceTrace) {
        let jobs = JobTrace::generate(TraceConfig {
            days: 1,
            training_gpus: 64,
            target_load: 0.6,
            max_demand_gpus: 32,
            seed,
            ..TraceConfig::default()
        });
        let inf = InferenceTrace::generate(InferenceTraceConfig {
            days: 2,
            total_gpus: 64,
            seed,
            ..InferenceTraceConfig::default()
        });
        (jobs, inf)
    }

    /// The 8+8 server, 8-GPU cluster the tiny traces are sized for.
    pub fn tiny_cluster() -> ClusterConfig {
        ClusterConfig {
            training_servers: 8,
            inference_servers: 8,
            gpus_per_server: 8,
        }
    }

    /// [`Scenario::basic`] shrunk onto the tiny cluster with the given
    /// seed — the default subject for whole-simulation properties.
    pub fn tiny_basic(seed: u64) -> Scenario {
        let mut s = Scenario::basic();
        s.cluster = tiny_cluster();
        s.seed = seed;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use generators::{tiny_cluster, tiny_traces};

    #[test]
    fn baseline_runs_to_completion() {
        let (jobs, inf) = tiny_traces(1);
        let mut s = Scenario::baseline();
        s.cluster = tiny_cluster();
        let report = run_scenario(&s, &jobs, &inf).expect("runs");
        assert_eq!(report.completed, jobs.jobs.len());
        assert_eq!(report.preemption_ratio, 0.0, "no loaning → no preemption");
        assert!(report.jct.mean > 0.0);
        assert!(report.training_usage > 0.0);
    }

    #[test]
    fn basic_beats_baseline_on_queuing() {
        let (jobs, inf) = tiny_traces(2);
        let mut base = Scenario::baseline();
        base.cluster = tiny_cluster();
        let mut basic = Scenario::basic();
        basic.cluster = tiny_cluster();
        let rb = run_scenario(&base, &jobs, &inf).expect("baseline runs");
        let rl = run_scenario(&basic, &jobs, &inf).expect("lyra runs");
        assert_eq!(rl.completed, jobs.jobs.len());
        assert!(
            rl.queuing.mean <= rb.queuing.mean * 1.05,
            "lyra {:.0}s vs baseline {:.0}s",
            rl.queuing.mean,
            rb.queuing.mean
        );
    }

    #[test]
    fn malformed_trace_ids_error_instead_of_aliasing() {
        let (jobs, inf) = tiny_traces(1);
        let mut s = Scenario::baseline();
        s.cluster = tiny_cluster();

        // Duplicate id: two jobs would silently share one engine slot.
        let mut dup = jobs.clone();
        dup.jobs[1].id = dup.jobs[0].id;
        let err = run_scenario(&s, &dup, &inf).expect_err("duplicate ids must be rejected");
        assert!(err.to_string().contains("trace ids"), "{err}");

        // Gapped id: would index out of bounds at arrival time.
        let mut gap = jobs.clone();
        let last = gap.jobs.len() - 1;
        gap.jobs[last].id.0 += 1;
        let err = run_scenario(&s, &gap, &inf).expect_err("gapped ids must be rejected");
        assert!(err.to_string().contains("trace ids"), "{err}");
    }

    #[test]
    fn trace_vector_order_is_not_semantic() {
        // Dense ids in any vector order canonicalise to the same run.
        let (jobs, inf) = tiny_traces(5);
        let mut s = Scenario::baseline();
        s.cluster = tiny_cluster();
        let mut shuffled = jobs.clone();
        shuffled.jobs.reverse();
        let a = run_scenario(&s, &jobs, &inf).expect("ordered runs");
        let b = run_scenario(&s, &shuffled, &inf).expect("reversed runs");
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_given_seed() {
        let (jobs, inf) = tiny_traces(3);
        let mut s = Scenario::basic();
        s.cluster = tiny_cluster();
        let a = run_scenario(&s, &jobs, &inf).expect("runs");
        let b = run_scenario(&s, &jobs, &inf).expect("runs");
        assert_eq!(a, b);
    }

    #[test]
    fn all_policies_complete_all_jobs() {
        let (jobs, inf) = tiny_traces(4);
        for (kind, loaning) in [
            (PolicyKind::Fifo, None),
            (PolicyKind::FifoBackfill, None),
            (PolicyKind::Gandiva, None),
            (PolicyKind::Afs, None),
            (PolicyKind::Pollux, None),
            (PolicyKind::Lyra, Some(ReclaimPolicy::Lyra)),
            (PolicyKind::LyraNoElastic, Some(ReclaimPolicy::Scf)),
            (PolicyKind::Opportunistic, Some(ReclaimPolicy::Random)),
        ] {
            let mut s = Scenario::base("policy-test");
            s.cluster = tiny_cluster();
            s.policy = kind;
            s.loaning = loaning;
            let r = run_scenario(&s, &jobs, &inf).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            if kind == PolicyKind::Opportunistic {
                // At toy scale some fungible jobs legitimately never fit
                // the inference cluster's loanable trough.
                assert!(
                    r.completed >= jobs.jobs.len() * 85 / 100,
                    "{kind:?} finished only {}/{}",
                    r.completed,
                    jobs.jobs.len()
                );
            } else {
                assert_eq!(
                    r.completed,
                    jobs.jobs.len(),
                    "{kind:?} left jobs unfinished"
                );
            }
        }
    }

    #[test]
    fn same_seed_observed_runs_emit_identical_event_logs() {
        let (jobs, inf) = tiny_traces(10);
        let mut s = Scenario::basic();
        s.cluster = tiny_cluster();
        let a = run_scenario_observed(&s, &jobs, &inf, ObserverConfig::default()).expect("runs");
        let b = run_scenario_observed(&s, &jobs, &inf, ObserverConfig::default()).expect("runs");
        assert!(!a.events.is_empty(), "observed run emits events");
        assert_eq!(a.events, b.events, "same-seed logs are byte-identical");
        assert_eq!(a.metrics, b.metrics, "same-seed snapshots match");
        assert!(!a.metrics.is_empty(), "at least the closing snapshot");
        assert!(
            a.profile.0.iter().any(|p| p.name == "sim.scheduler_tick"),
            "engine tick is profiled: {:?}",
            a.profile.0
        );
        assert!(
            a.profile
                .0
                .iter()
                .any(|p| p.name.starts_with("core.placement")),
            "placement is profiled: {:?}",
            a.profile.0
        );
    }

    #[test]
    fn same_seed_telemetry_exports_are_byte_identical() {
        let (jobs, inf) = tiny_traces(10);
        let mut s = Scenario::basic();
        s.cluster = tiny_cluster();
        let a = run_scenario_observed(&s, &jobs, &inf, ObserverConfig::default()).expect("runs");
        let b = run_scenario_observed(&s, &jobs, &inf, ObserverConfig::default()).expect("runs");
        assert!(a.telemetry.epochs > 0, "telemetry sampled every epoch");
        assert!(
            a.telemetry.series("queue.depth").is_some()
                && a.telemetry.series("util.dedicated").is_some()
                && a.telemetry.series("rate.preemptions").is_some(),
            "core gauges present: {:?}",
            a.telemetry.series_names().collect::<Vec<_>>()
        );
        let csv = a.telemetry.to_csv();
        assert!(csv.lines().count() > 1, "CSV export has data rows");
        assert_eq!(csv, b.telemetry.to_csv(), "same-seed series CSV is byte-identical");
        assert_eq!(
            lyra_obs::render_prometheus(&a.telemetry, a.metrics.last()),
            lyra_obs::render_prometheus(&b.telemetry, b.metrics.last()),
            "same-seed Prometheus exposition is byte-identical"
        );
    }

    #[test]
    fn fault_events_in_log_match_fault_stats() {
        use crate::faults::{FaultConfig, FaultPlan};
        use lyra_obs::SchedEvent;

        let (mut jobs, inf) = tiny_traces(11);
        transform::set_elastic_fraction(&mut jobs, 0.5, 4);
        transform::set_checkpoint_fraction(&mut jobs, 0.5, 5);
        let mut s = Scenario::basic();
        s.cluster = tiny_cluster();
        let horizon_s = 2.0 * 86_400.0;
        s.faults = Some(FaultPlan::generate(
            &FaultConfig {
                server_crash_rate_per_day: 0.5,
                worker_failure_rate_per_day: 24.0,
                checkpoint_restore_failure_prob: 0.3,
                straggler_rate_per_day: 2.0,
                dropped_tick_prob: 0.05,
                horizon_s,
                ..FaultConfig::default()
            },
            16,
            0xFA11,
        ));
        let r = run_scenario_observed(&s, &jobs, &inf, ObserverConfig::default()).expect("runs");
        let log = r.events.join("\n");
        let parsed = lyra_obs::parse_log(&log).expect("log parses");
        let count = |kind: &str| {
            parsed
                .iter()
                .filter(
                    |e| matches!(&e.event, SchedEvent::Fault { kind: k, .. } if k == kind),
                )
                .count() as u32
        };
        assert!(r.fault.injected > 0, "plan injected faults");
        assert_eq!(count("injected"), r.fault.injected);
        assert_eq!(count("server_crash"), r.fault.server_crashes);
        assert_eq!(count("worker_failure"), r.fault.worker_failures);
        assert_eq!(count("straggler"), r.fault.stragglers);
        assert_eq!(count("dropped_tick"), r.fault.dropped_ticks);
        assert_eq!(count("job_killed"), r.fault.jobs_killed);
        assert_eq!(count("elastic_absorbed"), r.fault.elastic_absorbed);
        assert_eq!(count("restart"), r.fault.restarts);
        assert_eq!(count("checkpoint_restore"), r.fault.checkpoint_restores);
        assert_eq!(
            count("checkpoint_restore_failure"),
            r.fault.checkpoint_restore_failures
        );
        let carryovers = parsed
            .iter()
            .filter(|e| matches!(e.event, SchedEvent::ReclaimCarryover { .. }))
            .count() as u32;
        assert_eq!(carryovers, r.fault.reclaim_carryovers);
        let misses = parsed
            .iter()
            .filter(|e| matches!(e.event, SchedEvent::ReclaimDeadlineMiss { .. }))
            .count() as u32;
        assert_eq!(misses, r.fault.reclaim_deadline_violations);
    }

    #[test]
    fn observer_overhead_is_bounded() {
        let (jobs, inf) = tiny_traces(12);
        let mut s = Scenario::basic();
        s.cluster = tiny_cluster();
        // Warm up caches/allocator, then take the best of two runs each
        // way to damp scheduler noise on shared CI machines.
        let _ = run_scenario(&s, &jobs, &inf).expect("runs");
        let time_it = |observed: bool| {
            let mut best = f64::INFINITY;
            for _ in 0..2 {
                let start = std::time::Instant::now();
                if observed {
                    run_scenario_observed(&s, &jobs, &inf, ObserverConfig::default())
                        .expect("runs");
                } else {
                    run_scenario(&s, &jobs, &inf).expect("runs");
                }
                best = best.min(start.elapsed().as_secs_f64());
            }
            best
        };
        let plain = time_it(false);
        let observed = time_it(true);
        // The measured overhead sits well under the 5 % budget on an idle
        // machine; the assertion uses a deliberately loose CI-safe bound
        // (3× plus 50 ms of absolute slack) so timer noise on loaded
        // shared runners cannot flake the suite.
        assert!(
            observed <= plain * 3.0 + 0.05,
            "instrumented run {observed:.4}s vs plain {plain:.4}s"
        );
    }

    #[test]
    fn idealize_transform_makes_everything_flexible() {
        let (mut jobs, _) = tiny_traces(5);
        transform::idealize(&mut jobs);
        for j in &jobs.jobs {
            assert!(j.is_elastic());
            assert!(j.fungible && j.hetero_capable);
            assert_eq!(j.w_max(), 2 * j.w_min());
        }
    }

    #[test]
    fn idealize_preserves_total_work() {
        let (mut jobs, _) = tiny_traces(6);
        let before: Vec<f64> = jobs.jobs.iter().map(|j| j.running_time(j.demand)).collect();
        transform::idealize(&mut jobs);
        for (j, rt) in jobs.jobs.iter().zip(before) {
            assert!(
                (j.running_time(j.demand) - rt).abs() < 1e-6,
                "running time at the requested demand is invariant"
            );
        }
    }

    #[test]
    fn checkpoint_transform_reduces_lost_work() {
        let (mut jobs, inf) = tiny_traces(7);
        transform::set_checkpoint_fraction(&mut jobs, 1.0, 9);
        assert!(jobs.jobs.iter().all(|j| j.checkpointing));
        let mut s = Scenario::basic();
        s.cluster = tiny_cluster();
        let r = run_scenario(&s, &jobs, &inf).expect("runs");
        assert_eq!(r.completed, jobs.jobs.len());
    }

    #[test]
    fn elastic_fraction_transform_hits_target() {
        let (mut jobs, _) = tiny_traces(8);
        transform::set_elastic_fraction(&mut jobs, 0.8, 3);
        let frac =
            jobs.jobs.iter().filter(|j| j.is_elastic()).count() as f64 / jobs.jobs.len() as f64;
        assert!((frac - 0.8).abs() < 0.15, "elastic fraction {frac}");
    }

    #[test]
    fn imperfect_scaling_swaps_curves() {
        let (mut jobs, _) = tiny_traces(9);
        transform::idealize(&mut jobs);
        transform::imperfect_scaling(&mut jobs, 0.2);
        assert!(jobs
            .jobs
            .iter()
            .all(|j| j.curve == ScalingCurve::PerWorkerLoss { loss: 0.2 }));
    }

    // Satellite invariant of the incremental-snapshot overhaul and the
    // incremental reclaim engine: after an arbitrary event sequence
    // (arrivals, launches, scaling, loaning, reclaims, crashes, worker
    // failures, stragglers, dropped ticks) the incrementally-maintained
    // snapshot *and* the incremental preemption-cost engine must drive
    // the exact same run as rebuilding from scratch every epoch / every
    // reclaim. The engine's `cfg(test)` per-epoch assertion additionally
    // checks snapshot equality at every single tick of the incremental
    // run.
    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 8,
            ..proptest::prelude::ProptestConfig::default()
        })]
        #[test]
        fn incremental_snapshot_reproduces_from_scratch_runs(
            seed in 0u64..1024,
            elastic_fraction in 0.0f64..1.0,
            checkpoint_fraction in 0.0f64..1.0,
            faulty in proptest::bool::ANY,
        ) {
            use crate::faults::{FaultConfig, FaultPlan};

            let (mut jobs, inf) = tiny_traces(seed);
            transform::set_elastic_fraction(&mut jobs, elastic_fraction, seed ^ 1);
            transform::set_checkpoint_fraction(&mut jobs, checkpoint_fraction, seed ^ 2);
            let mut s = Scenario::basic();
            s.cluster = tiny_cluster();
            if faulty {
                s.faults = Some(FaultPlan::generate(
                    &FaultConfig {
                        server_crash_rate_per_day: 1.0,
                        worker_failure_rate_per_day: 12.0,
                        checkpoint_restore_failure_prob: 0.3,
                        straggler_rate_per_day: 2.0,
                        dropped_tick_prob: 0.05,
                        horizon_s: 2.0 * 86_400.0,
                        ..FaultConfig::default()
                    },
                    8,
                    seed ^ 0xFA11,
                ));
            }
            let mut incremental = s.clone();
            incremental.sim.incremental_snapshot = true;
            incremental.sim.incremental_reclaim = true;
            let mut from_scratch = s;
            from_scratch.sim.incremental_snapshot = false;
            from_scratch.sim.incremental_reclaim = false;
            let a = run_scenario(&incremental, &jobs, &inf).expect("incremental runs");
            let b = run_scenario(&from_scratch, &jobs, &inf).expect("from-scratch runs");
            proptest::prop_assert_eq!(a, b);
        }
    }
}
