//! Metrics collection: the quantities §7 reports.
//!
//! Per-job records feed the queuing-time and JCT distributions; a
//! piecewise-constant usage integral (split across hourly buckets) feeds
//! the cluster-usage columns of Table 5 and the time series of Figures 7
//! and 9; per-reclaim records feed the preemption-ratio and
//! collateral-damage comparisons of Figure 10.

use lyra_core::job::JobId;
use serde::{Deserialize, Serialize};

/// Summary statistics of a sample (all in the sample's unit).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Percentiles {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Computes [`Percentiles`] of a sample (empty sample → zeros).
///
/// Quantiles use linear interpolation between closest ranks (the
/// `numpy.percentile` default): rank `p · (n − 1)` is split into its
/// integer part and fraction, and the value is interpolated between the
/// two bracketing order statistics. Truncating to the lower rank (the
/// previous behaviour) biased every tail quantile low.
pub fn percentiles(values: &[f64]) -> Percentiles {
    if values.is_empty() {
        return Percentiles::default();
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let q = |p: f64| {
        let rank = (sorted.len() - 1) as f64 * p;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        sorted[lo] + (sorted[hi] - sorted[lo]) * frac
    };
    Percentiles {
        mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
        p50: q(0.50),
        p75: q(0.75),
        p95: q(0.95),
        p99: q(0.99),
    }
}

/// Per-job outcome record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job identity.
    pub id: JobId,
    /// Submission time.
    pub submit_s: f64,
    /// First time the job started running.
    pub first_start_s: Option<f64>,
    /// Completion time.
    pub complete_s: Option<f64>,
    /// Total time spent waiting in the queue (including re-queues).
    pub queue_s: f64,
    /// Times the job was preempted.
    pub preemptions: u32,
    /// Whether any of its workers ever ran on an on-loan server.
    pub ran_on_loan: bool,
    /// Scaling operations applied to it.
    pub scaling_ops: u32,
    /// Restarts forced by injected faults (server crashes, worker
    /// failures) — distinct from scheduler-driven preemptions.
    pub fault_restarts: u32,
    /// SLO deadline in seconds from trace start, copied from the spec
    /// (`None` for jobs without a deadline).
    pub deadline_s: Option<f64>,
}

impl JobRecord {
    /// Creates the record at submission.
    pub fn new(id: JobId, submit_s: f64) -> Self {
        JobRecord {
            id,
            submit_s,
            first_start_s: None,
            complete_s: None,
            queue_s: 0.0,
            preemptions: 0,
            ran_on_loan: false,
            scaling_ops: 0,
            fault_restarts: 0,
            deadline_s: None,
        }
    }

    /// Job completion time (completion − submission), if completed.
    pub fn jct_s(&self) -> Option<f64> {
        self.complete_s.map(|c| c - self.submit_s)
    }

    /// Whether this job missed its deadline: it has one, and it either
    /// completed after it or never completed at all.
    pub fn missed_deadline(&self) -> bool {
        match (self.deadline_s, self.complete_s) {
            (Some(d), Some(c)) => c > d,
            (Some(_), None) => true,
            (None, _) => false,
        }
    }

    /// Seconds of lateness past the deadline (0 when met; `None` when the
    /// job has no deadline or never completed).
    pub fn lateness_s(&self) -> Option<f64> {
        match (self.deadline_s, self.complete_s) {
            (Some(d), Some(c)) => Some((c - d).max(0.0)),
            _ => None,
        }
    }
}

/// Deadline/SLO rollup across a run's job records.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct DeadlineStats {
    /// Jobs that carried a deadline.
    pub with_deadline: usize,
    /// Deadline jobs that completed on time.
    pub met: usize,
    /// Deadline jobs that completed late or never completed.
    pub missed: usize,
    /// `missed / with_deadline` (0 when no job carried a deadline).
    pub miss_rate: f64,
    /// Total lateness of late completions, seconds (jobs that never
    /// completed contribute nothing here — they have no lateness).
    pub total_late_s: f64,
}

impl DeadlineStats {
    /// Computes the rollup from per-job records.
    pub fn from_records(records: &[JobRecord]) -> Self {
        let mut s = DeadlineStats::default();
        for r in records {
            if r.deadline_s.is_none() {
                continue;
            }
            s.with_deadline += 1;
            if r.missed_deadline() {
                s.missed += 1;
                s.total_late_s += r.lateness_s().unwrap_or(0.0);
            } else {
                s.met += 1;
            }
        }
        if s.with_deadline > 0 {
            s.miss_rate = s.missed as f64 / s.with_deadline as f64;
        }
        s
    }
}

/// Fault-injection accounting: what the injected failures cost the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultStats {
    /// Fault events injected (fired, whether or not they found a target).
    pub injected: u32,
    /// Whole-server crashes that hit a live server.
    pub server_crashes: u32,
    /// Single-worker (container) failures that hit a running job.
    pub worker_failures: u32,
    /// Straggler episodes started.
    pub stragglers: u32,
    /// Orchestrator ticks dropped by the control-plane fault.
    pub dropped_ticks: u32,
    /// Jobs killed outright by a fault (restarted from checkpoint or
    /// scratch).
    pub jobs_killed: u32,
    /// Worker losses absorbed in place by elastic jobs (membership
    /// shrank; the job kept running).
    pub elastic_absorbed: u32,
    /// Fault-forced restarts (re-queues) across all jobs.
    pub restarts: u32,
    /// Restarts that successfully resumed from a checkpoint.
    pub checkpoint_restores: u32,
    /// Restarts whose checkpoint restore failed (job restarted from
    /// scratch despite checkpointing).
    pub checkpoint_restore_failures: u32,
    /// Reclaim demands that could not be met at their tick and were
    /// carried forward with a deadline.
    pub reclaim_carryovers: u32,
    /// Carried-forward reclaim demands that missed their deadline.
    pub reclaim_deadline_violations: u32,
    /// Cluster-state audit failures observed (release builds count them
    /// instead of panicking).
    pub audit_violations: u32,
    /// Work lost to fault-forced restarts, reference worker-seconds
    /// (goodput lost to failures).
    pub work_lost_s: f64,
}

/// One reclaiming operation's outcome, for Figure 10's metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReclaimRecord {
    /// When it happened.
    pub time_s: f64,
    /// Servers the inference cluster asked for.
    pub demanded: u32,
    /// Servers returned via the flexible group (elastic scale-in, no
    /// preemption).
    pub returned_flex: u32,
    /// Servers that were already idle.
    pub returned_idle: u32,
    /// Servers returned via preemption.
    pub returned_preempt: u32,
    /// Jobs preempted.
    pub preempted: u32,
    /// GPUs vacated beyond the demand.
    pub collateral_gpus: u32,
}

/// Piecewise-constant usage integral with hourly buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsageIntegral {
    last_time_s: f64,
    /// Total busy GPU-seconds.
    pub busy_gpu_s: f64,
    /// Total capacity GPU-seconds.
    pub capacity_gpu_s: f64,
    /// Per-hour `(busy, capacity)` GPU-seconds.
    pub hourly: Vec<(f64, f64)>,
}

impl UsageIntegral {
    /// Creates an empty integral starting at time zero.
    pub fn new() -> Self {
        UsageIntegral {
            last_time_s: 0.0,
            busy_gpu_s: 0.0,
            capacity_gpu_s: 0.0,
            hourly: Vec::new(),
        }
    }

    /// Accrues `busy`/`capacity` GPUs as constant over
    /// `[last_time, now]`, splitting across hour boundaries.
    pub fn advance(&mut self, now_s: f64, busy: f64, capacity: f64) {
        if now_s <= self.last_time_s {
            self.last_time_s = self.last_time_s.max(now_s);
            return;
        }
        let mut t = self.last_time_s;
        while t < now_s {
            let hour = (t / 3600.0).floor() as usize;
            let hour_end = (hour as f64 + 1.0) * 3600.0;
            let seg_end = now_s.min(hour_end);
            let dt = seg_end - t;
            while self.hourly.len() <= hour {
                self.hourly.push((0.0, 0.0));
            }
            self.hourly[hour].0 += busy * dt;
            self.hourly[hour].1 += capacity * dt;
            self.busy_gpu_s += busy * dt;
            self.capacity_gpu_s += capacity * dt;
            t = seg_end;
        }
        self.last_time_s = now_s;
    }

    /// Overall utilisation (busy over capacity), 0 when empty.
    pub fn utilization(&self) -> f64 {
        if self.capacity_gpu_s > 0.0 {
            self.busy_gpu_s / self.capacity_gpu_s
        } else {
            0.0
        }
    }

    /// Hourly utilisation series (hours with zero capacity yield 0).
    pub fn hourly_utilization(&self) -> Vec<f64> {
        self.hourly
            .iter()
            .map(|(b, c)| if *c > 0.0 { b / c } else { 0.0 })
            .collect()
    }
}

impl Default for UsageIntegral {
    fn default() -> Self {
        Self::new()
    }
}

/// Everything a simulation run reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Scheme/scenario label.
    pub name: String,
    /// Queuing-time distribution, seconds.
    pub queuing: Percentiles,
    /// JCT distribution, seconds.
    pub jct: Percentiles,
    /// Training-cluster GPU utilisation (dedicated servers).
    pub training_usage: f64,
    /// Combined training + inference utilisation (Table 5's "Overall").
    pub overall_usage: f64,
    /// GPU-level utilisation of on-loan servers while loaned.
    pub on_loan_usage: f64,
    /// Fraction of on-loan servers hosting at least one worker (Figure
    /// 9's metric, matching Figure 1's "serving at least one request"
    /// convention).
    pub on_loan_server_usage: f64,
    /// Hourly series of the same (Figure 9).
    pub hourly_on_loan_server_usage: Vec<f64>,
    /// Preemptions over job submissions (Table 5's "Preemption Ratio").
    pub preemption_ratio: f64,
    /// Mean collateral damage per reclaim, as a fraction of the demand in
    /// GPUs (Figure 10).
    pub collateral_damage: f64,
    /// Mean fraction of each reclaim demand satisfied by the flexible
    /// group alone (§7.2's 53.5 % statistic).
    pub flex_satisfied: f64,
    /// Jobs completed.
    pub completed: usize,
    /// Total jobs submitted.
    pub submitted: usize,
    /// Loan operations performed.
    pub loan_ops: usize,
    /// Reclaim operations performed.
    pub reclaim_ops: usize,
    /// Elastic scaling operations performed.
    pub scaling_ops: usize,
    /// Resource-manager operations issued (container launches/kills and
    /// whitelist moves, §6).
    pub rm_ops: usize,
    /// Modelled control-plane latency those operations cost, seconds.
    pub control_plane_latency_s: f64,
    /// Hourly combined-usage series (Figure 7).
    pub hourly_overall_usage: Vec<f64>,
    /// Hourly on-loan usage series (Figure 9).
    pub hourly_on_loan_usage: Vec<f64>,
    /// Queuing-time distribution of jobs that ran on on-loan servers
    /// (Table 7), seconds.
    pub on_loan_queuing: Percentiles,
    /// JCT distribution of jobs that ran on on-loan servers (Table 7).
    pub on_loan_jct: Percentiles,
    /// Fault-injection accounting (all zeros when no faults were
    /// injected).
    pub fault: FaultStats,
    /// Deadline/SLO rollup (all zeros when no job carried a deadline).
    pub deadlines: DeadlineStats,
    /// Per-job records for downstream analysis (Figure 2 etc.).
    pub records: Vec<JobRecord>,
    /// Structured event log (JSONL lines from the observer's ring
    /// buffer; empty when no observer was attached).
    pub events: Vec<String>,
    /// Hourly metrics-registry snapshots (empty without an observer).
    pub metrics: Vec<lyra_obs::MetricsSnapshot>,
    /// Per-phase self-time profile of an observed run. Carries
    /// wall-clock data, so it compares equal to any other profile —
    /// same-seed reports stay `==`.
    pub profile: lyra_obs::Profile,
    /// Cluster-level delay-attribution rollup: per-cause totals and
    /// per-job-total percentiles in integer milliseconds (empty without
    /// an observer). Per-job detail is recovered from the event log via
    /// [`lyra_obs::attribute_log`].
    pub attribution: lyra_obs::AttributionSummary,
    /// Per-epoch scheduler-health time series (ring series with
    /// deterministic decimation plus the epoch-span / decision-latency
    /// histograms; empty without an observer). Fully deterministic, so
    /// it participates in report equality and the perf divergence gate.
    pub telemetry: lyra_obs::Telemetry,
    /// Decision-provenance graph built online by the observer (empty
    /// without an observer or with provenance tracking disabled). A
    /// differential test pins it equal to the graph rebuilt offline
    /// from the event log; report equality pins it through
    /// checkpoint/resume.
    pub provenance: lyra_obs::ProvenanceGraph,
}

impl SimReport {
    /// Names of every non-finite (NaN or ±∞) float field in the report,
    /// recursing into percentile blocks, hourly series and per-job
    /// records. Serialisers turn non-finite floats into `null`, which
    /// silently poisons downstream analysis — the test suite asserts
    /// this list is empty for every report a simulation can produce.
    pub fn non_finite_fields(&self) -> Vec<String> {
        let mut bad = Vec::new();
        fn check(bad: &mut Vec<String>, name: &str, v: f64) {
            if !v.is_finite() {
                bad.push(format!("{name} = {v}"));
            }
        }
        fn pcts(bad: &mut Vec<String>, name: &str, p: &Percentiles) {
            for (field, v) in [
                ("mean", p.mean),
                ("p50", p.p50),
                ("p75", p.p75),
                ("p95", p.p95),
                ("p99", p.p99),
            ] {
                if !v.is_finite() {
                    bad.push(format!("{name}.{field} = {v}"));
                }
            }
        }
        pcts(&mut bad, "queuing", &self.queuing);
        pcts(&mut bad, "jct", &self.jct);
        pcts(&mut bad, "on_loan_queuing", &self.on_loan_queuing);
        pcts(&mut bad, "on_loan_jct", &self.on_loan_jct);
        check(&mut bad, "training_usage", self.training_usage);
        check(&mut bad, "overall_usage", self.overall_usage);
        check(&mut bad, "on_loan_usage", self.on_loan_usage);
        check(&mut bad, "on_loan_server_usage", self.on_loan_server_usage);
        check(&mut bad, "preemption_ratio", self.preemption_ratio);
        check(&mut bad, "collateral_damage", self.collateral_damage);
        check(&mut bad, "flex_satisfied", self.flex_satisfied);
        check(&mut bad, "control_plane_latency_s", self.control_plane_latency_s);
        check(&mut bad, "fault.work_lost_s", self.fault.work_lost_s);
        check(&mut bad, "deadlines.miss_rate", self.deadlines.miss_rate);
        check(&mut bad, "deadlines.total_late_s", self.deadlines.total_late_s);
        for (name, series) in [
            ("hourly_overall_usage", &self.hourly_overall_usage),
            ("hourly_on_loan_usage", &self.hourly_on_loan_usage),
            (
                "hourly_on_loan_server_usage",
                &self.hourly_on_loan_server_usage,
            ),
        ] {
            for (i, v) in series.iter().enumerate() {
                check(&mut bad, &format!("{name}[{i}]"), *v);
            }
        }
        for (name, series) in self.telemetry.iter() {
            for (i, p) in series.points().iter().enumerate() {
                check(&mut bad, &format!("telemetry.{name}[{i}]"), p.value);
            }
        }
        check(
            &mut bad,
            "telemetry.epoch_span_ms.sum",
            self.telemetry.epoch_span_ms.sum,
        );
        check(
            &mut bad,
            "telemetry.decision_latency_ms.sum",
            self.telemetry.decision_latency_ms.sum,
        );
        for r in &self.records {
            check(&mut bad, &format!("records[{:?}].submit_s", r.id), r.submit_s);
            check(&mut bad, &format!("records[{:?}].queue_s", r.id), r.queue_s);
            for (field, v) in [
                ("first_start_s", r.first_start_s),
                ("complete_s", r.complete_s),
                ("deadline_s", r.deadline_s),
            ] {
                if let Some(v) = v {
                    check(&mut bad, &format!("records[{:?}].{field}", r.id), v);
                }
            }
        }
        bad
    }

    /// Fraction of jobs submitted in each hour that had to queue — the
    /// Figure 2 series. A job "queues" when its first start is more than
    /// `tolerance_s` after submission.
    pub fn hourly_queuing_ratio(&self, tolerance_s: f64) -> Vec<f64> {
        let mut per_hour: Vec<(usize, usize)> = Vec::new();
        for r in &self.records {
            let hour = (r.submit_s / 3600.0).floor() as usize;
            while per_hour.len() <= hour {
                per_hour.push((0, 0));
            }
            per_hour[hour].1 += 1;
            let queued = match r.first_start_s {
                Some(t) => t - r.submit_s > tolerance_s,
                None => true,
            };
            if queued {
                per_hour[hour].0 += 1;
            }
        }
        per_hour
            .iter()
            .map(|(q, n)| if *n > 0 { *q as f64 / *n as f64 } else { 0.0 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_sample() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = percentiles(&values);
        assert!((p.mean - 50.5).abs() < 1e-9);
        // Interpolated ranks: p·(n−1) over 1..=100.
        assert!((p.p50 - 50.5).abs() < 1e-9);
        assert!((p.p95 - 95.05).abs() < 1e-9);
        assert!((p.p99 - 99.01).abs() < 1e-9);
    }

    #[test]
    fn percentiles_empty_and_singleton() {
        assert_eq!(percentiles(&[]), Percentiles::default());
        let p = percentiles(&[7.0]);
        assert_eq!(p.mean, 7.0);
        assert_eq!(p.p50, 7.0);
        assert_eq!(p.p99, 7.0);
    }

    #[test]
    fn percentiles_interpolate_between_ranks() {
        // Two samples: every quantile lies on the segment between them.
        let p = percentiles(&[10.0, 20.0]);
        assert!((p.p50 - 15.0).abs() < 1e-9);
        assert!((p.p75 - 17.5).abs() < 1e-9);
        assert!((p.p95 - 19.5).abs() < 1e-9);
        assert!((p.p99 - 19.9).abs() < 1e-9);
    }

    #[test]
    fn percentiles_odd_length_median_is_exact() {
        let p = percentiles(&[3.0, 1.0, 2.0]);
        assert_eq!(p.p50, 2.0);
        assert!((p.p75 - 2.5).abs() < 1e-9);
        assert!((p.p99 - 2.98).abs() < 1e-9);
    }

    #[test]
    fn percentiles_even_length_median_interpolates() {
        let p = percentiles(&[4.0, 1.0, 3.0, 2.0]);
        assert!((p.p50 - 2.5).abs() < 1e-9);
        assert!((p.p75 - 3.25).abs() < 1e-9);
        assert!((p.p95 - 3.85).abs() < 1e-9);
    }

    #[test]
    fn usage_integral_splits_hours() {
        let mut u = UsageIntegral::new();
        // 4 GPUs busy of 8, from t=1800 to t=5400 (spans the 3600 mark).
        u.advance(1800.0, 0.0, 8.0);
        u.advance(5400.0, 4.0, 8.0);
        assert_eq!(u.hourly.len(), 2);
        assert!((u.hourly[0].0 - 4.0 * 1800.0).abs() < 1e-6);
        assert!((u.hourly[1].0 - 4.0 * 1800.0).abs() < 1e-6);
        assert!((u.utilization() - (4.0 * 3600.0) / (8.0 * 5400.0)).abs() < 1e-9);
    }

    #[test]
    fn usage_integral_ignores_time_travel() {
        let mut u = UsageIntegral::new();
        u.advance(100.0, 1.0, 2.0);
        u.advance(50.0, 5.0, 5.0); // no-op
        assert!((u.busy_gpu_s - 100.0).abs() < 1e-9);
    }

    #[test]
    fn usage_integral_empty_is_all_zeros() {
        let u = UsageIntegral::new();
        assert_eq!(u.utilization(), 0.0);
        assert!(u.hourly_utilization().is_empty());
        assert_eq!(u.busy_gpu_s, 0.0);
        assert_eq!(u.capacity_gpu_s, 0.0);
    }

    #[test]
    fn usage_integral_single_sample() {
        let mut u = UsageIntegral::new();
        u.advance(600.0, 2.0, 8.0);
        assert_eq!(u.hourly.len(), 1);
        assert!((u.utilization() - 0.25).abs() < 1e-12);
        assert_eq!(u.hourly_utilization(), vec![0.25]);
    }

    #[test]
    fn usage_integral_zero_capacity_hour_yields_zero_not_nan() {
        let mut u = UsageIntegral::new();
        u.advance(3600.0, 0.0, 0.0); // hour 0: no capacity at all
        u.advance(7200.0, 4.0, 8.0);
        let hourly = u.hourly_utilization();
        assert_eq!(hourly.len(), 2);
        assert_eq!(hourly[0], 0.0);
        assert!(hourly.iter().all(|v| v.is_finite()));
        assert!(u.utilization().is_finite());
    }

    #[test]
    fn hourly_queuing_ratio_empty_records() {
        let report = blank_report(vec![]);
        assert!(report.hourly_queuing_ratio(60.0).is_empty());
    }

    #[test]
    fn hourly_queuing_ratio_single_record() {
        let mut r = JobRecord::new(JobId(0), 30.0);
        r.first_start_s = Some(35.0);
        let report = blank_report(vec![r]);
        assert_eq!(report.hourly_queuing_ratio(60.0), vec![0.0]);
    }

    #[test]
    fn non_finite_audit_is_clean_on_a_blank_report() {
        assert!(blank_report(vec![]).non_finite_fields().is_empty());
    }

    #[test]
    fn non_finite_audit_names_the_poisoned_fields() {
        let mut report = blank_report(vec![JobRecord::new(JobId(3), 10.0)]);
        report.jct.p99 = f64::NAN;
        report.hourly_overall_usage = vec![1.0, f64::INFINITY];
        report.records[0].queue_s = f64::NAN;
        let bad = report.non_finite_fields();
        assert_eq!(bad.len(), 3);
        assert!(bad.iter().any(|b| b.starts_with("jct.p99")));
        assert!(bad.iter().any(|b| b.starts_with("hourly_overall_usage[1]")));
        assert!(bad.iter().any(|b| b.contains("queue_s")));
        // This is exactly what the audit protects against: serialisers
        // turn non-finite floats into `null`, silently breaking every
        // downstream consumer of the JSON.
        let json = serde_json::to_string(&report.jct).unwrap();
        assert!(json.contains("null"));
    }

    #[test]
    fn job_record_jct() {
        let mut r = JobRecord::new(JobId(1), 100.0);
        assert_eq!(r.jct_s(), None);
        r.complete_s = Some(350.0);
        assert_eq!(r.jct_s(), Some(250.0));
    }

    #[test]
    fn deadline_accounting_on_records() {
        let mut met = JobRecord::new(JobId(0), 0.0);
        met.deadline_s = Some(100.0);
        met.complete_s = Some(90.0);
        assert!(!met.missed_deadline());
        assert_eq!(met.lateness_s(), Some(0.0));

        let mut late = JobRecord::new(JobId(1), 0.0);
        late.deadline_s = Some(100.0);
        late.complete_s = Some(160.0);
        assert!(late.missed_deadline());
        assert_eq!(late.lateness_s(), Some(60.0));

        let mut never = JobRecord::new(JobId(2), 0.0);
        never.deadline_s = Some(100.0);
        assert!(never.missed_deadline());
        assert_eq!(never.lateness_s(), None);

        let free = JobRecord::new(JobId(3), 0.0);
        assert!(!free.missed_deadline());

        let stats = DeadlineStats::from_records(&[met, late, never, free]);
        assert_eq!(stats.with_deadline, 3);
        assert_eq!(stats.met, 1);
        assert_eq!(stats.missed, 2);
        assert!((stats.miss_rate - 2.0 / 3.0).abs() < 1e-12);
        assert!((stats.total_late_s - 60.0).abs() < 1e-12);
    }

    #[test]
    fn deadline_stats_empty_is_all_zeros() {
        let stats = DeadlineStats::from_records(&[JobRecord::new(JobId(0), 0.0)]);
        assert_eq!(stats, DeadlineStats::default());
        assert_eq!(stats.miss_rate, 0.0);
    }

    #[test]
    fn hourly_queuing_ratio_counts_waits() {
        let mut records = vec![JobRecord::new(JobId(0), 100.0)];
        records[0].first_start_s = Some(110.0); // fast start
        let mut late = JobRecord::new(JobId(1), 200.0);
        late.first_start_s = Some(800.0); // queued
        records.push(late);
        let mut never = JobRecord::new(JobId(2), 4000.0); // hour 1, never ran
        never.first_start_s = None;
        records.push(never);
        let report = blank_report(records);
        let ratio = report.hourly_queuing_ratio(60.0);
        assert_eq!(ratio.len(), 2);
        assert!((ratio[0] - 0.5).abs() < 1e-9);
        assert_eq!(ratio[1], 1.0);
    }

    /// An all-zeros report around the given records.
    fn blank_report(records: Vec<JobRecord>) -> SimReport {
        SimReport {
            name: "t".into(),
            queuing: Percentiles::default(),
            jct: Percentiles::default(),
            training_usage: 0.0,
            overall_usage: 0.0,
            on_loan_usage: 0.0,
            on_loan_server_usage: 0.0,
            hourly_on_loan_server_usage: vec![],
            preemption_ratio: 0.0,
            collateral_damage: 0.0,
            flex_satisfied: 0.0,
            completed: 0,
            submitted: records.len(),
            loan_ops: 0,
            reclaim_ops: 0,
            scaling_ops: 0,
            rm_ops: 0,
            control_plane_latency_s: 0.0,
            hourly_overall_usage: vec![],
            hourly_on_loan_usage: vec![],
            on_loan_queuing: Percentiles::default(),
            on_loan_jct: Percentiles::default(),
            fault: FaultStats::default(),
            deadlines: DeadlineStats::default(),
            records,
            events: vec![],
            metrics: vec![],
            profile: lyra_obs::Profile::default(),
            attribution: lyra_obs::AttributionSummary::default(),
            telemetry: lyra_obs::Telemetry::default(),
            provenance: lyra_obs::ProvenanceGraph::default(),
        }
    }
}
