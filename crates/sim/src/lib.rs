#![warn(missing_docs)]

//! # lyra-sim
//!
//! The high-fidelity discrete-event simulator the paper evaluates Lyra
//! with (§7.1), plus the scenario definitions of Table 5 and the metric
//! collection behind every figure.
//!
//! * [`engine`] — the event loop: arrivals, completions, scaling,
//!   preemption, loaning/reclaiming ticks and lazy progress accounting.
//! * [`scenario`] — Baseline/Basic/Advanced/Heterogeneous/Ideal and the
//!   deep-dive configurations, plus the trace transforms that define them.
//! * [`metrics`] — queuing/JCT percentiles, usage integrals, preemption,
//!   collateral-damage and fault accounting.
//! * [`faults`] — deterministic, seeded fault injection: server crashes,
//!   worker failures, stragglers, checkpoint-restore failures and dropped
//!   orchestrator ticks as first-class simulator events.
//!
//! ```no_run
//! use lyra_sim::{run_scenario, Scenario};
//! use lyra_trace::{InferenceTrace, InferenceTraceConfig, JobTrace, TraceConfig};
//!
//! let jobs = JobTrace::generate(TraceConfig::small(1));
//! let inference = InferenceTrace::generate(InferenceTraceConfig::default());
//! let report = run_scenario(&Scenario::basic(), &jobs, &inference).unwrap();
//! println!("mean JCT: {:.0}s", report.jct.mean);
//! ```

pub mod checkpoint;
pub mod engine;
pub mod faults;
pub mod metrics;
pub mod scenario;

pub use checkpoint::{CheckpointError, SimCheckpoint};
pub use engine::{EngineState, ObserverConfig, RunOutcome, SimConfig, SimError, Simulation};
pub use faults::{
    CarryTransition, FaultConfig, FaultEvent, FaultKind, FaultPlan, ReclaimCarry, ReclaimLedger,
};
pub use metrics::{
    percentiles, DeadlineStats, FaultStats, JobRecord, Percentiles, ReclaimRecord, SimReport,
    UsageIntegral,
};
pub use scenario::{
    build_scenario, generators, run_scenario, run_scenario_observed, transform, validate_scenario,
    zoo, ConfigError, Scenario,
};
