//! Simulation-level invariant and failure-injection tests: whatever the
//! workload and policy, conservation laws must hold at the end of a run.

use lyra_cluster::orchestrator::ReclaimPolicy;
use lyra_cluster::state::ClusterConfig;
use lyra_sim::{
    run_scenario, transform, FaultConfig, FaultPlan, Scenario, SimReport,
};
use lyra_trace::{InferenceTrace, InferenceTraceConfig, JobTrace, TraceConfig};
use proptest::prelude::*;

fn traces(seed: u64, load: f64) -> (JobTrace, InferenceTrace) {
    let jobs = JobTrace::generate(TraceConfig {
        days: 1,
        training_gpus: 80,
        target_load: load,
        max_demand_gpus: 40,
        seed,
        ..TraceConfig::default()
    });
    let inference = InferenceTrace::generate(InferenceTraceConfig {
        days: 3,
        total_gpus: 80,
        seed: seed ^ 0xFACE,
        ..InferenceTraceConfig::default()
    });
    (jobs, inference)
}

fn cluster() -> ClusterConfig {
    ClusterConfig {
        training_servers: 10,
        inference_servers: 10,
        gpus_per_server: 8,
        speed: lyra_core::gpu::SpeedFactors::default(),
    }
}

fn check_invariants(r: &SimReport, n_jobs: usize) {
    assert_eq!(r.submitted, n_jobs);
    assert_eq!(r.records.len(), n_jobs);
    let completed = r.records.iter().filter(|x| x.complete_s.is_some()).count();
    assert_eq!(completed, r.completed);
    for rec in &r.records {
        assert!(rec.queue_s >= -1e-9, "{:?} negative queue", rec.id);
        if let Some(start) = rec.first_start_s {
            assert!(start >= rec.submit_s - 1e-9);
        }
        if let Some(done) = rec.complete_s {
            let start = rec.first_start_s.expect("completed ⇒ started");
            assert!(done >= start);
        }
    }
    for u in [
        r.training_usage,
        r.overall_usage,
        r.on_loan_usage,
        r.on_loan_server_usage,
        r.preemption_ratio / 100.0, // can exceed 1 in pathological runs
        r.flex_satisfied,
    ] {
        assert!(u >= 0.0, "negative metric {u}");
    }
    for h in &r.hourly_overall_usage {
        assert!((0.0..=1.0 + 1e-9).contains(h), "hourly usage {h}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn invariants_hold_across_policies_and_seeds(
        seed in 0u64..1000,
        policy_idx in 0usize..5,
        load in 0.3f64..0.9,
    ) {
        let (jobs, inference) = traces(seed, load);
        let (policy, loaning) = [
            ("fifo-backfill", None),
            ("lyra", Some(ReclaimPolicy::Lyra)),
            ("lyra", Some(ReclaimPolicy::Random)),
            ("gandiva", None),
            ("afs", None),
        ][policy_idx];
        let mut s = Scenario::basic();
        s.policy = policy.to_string();
        s.loaning = loaning;
        s.cluster = cluster();
        s.seed = seed;
        let r = run_scenario(&s, &jobs, &inference).expect("run succeeds");
        check_invariants(&r, jobs.jobs.len());
        prop_assert_eq!(r.completed, jobs.jobs.len(), "all jobs complete");
    }

    #[test]
    fn invariants_hold_under_any_fault_plan(
        seed in 0u64..1000,
        fault_seed in 0u64..1000,
        crash_rate in 0.0f64..2.0,
        worker_rate in 0.0f64..20.0,
        restore_fail in 0.0f64..1.0,
    ) {
        let (mut jobs, inference) = traces(seed, 0.6);
        transform::set_elastic_fraction(&mut jobs, 0.5, seed);
        transform::set_checkpoint_fraction(&mut jobs, 0.5, seed ^ 1);
        let mut s = Scenario::basic();
        s.cluster = cluster();
        s.seed = seed;
        s.faults = Some(FaultPlan::generate(
            &FaultConfig {
                server_crash_rate_per_day: crash_rate,
                worker_failure_rate_per_day: worker_rate,
                checkpoint_restore_failure_prob: restore_fail,
                straggler_rate_per_day: 0.5,
                dropped_tick_prob: 0.1,
                horizon_s: 86_400.0,
                ..FaultConfig::default()
            },
            s.cluster.training_servers + s.cluster.inference_servers,
            fault_seed,
        ));
        let r = run_scenario(&s, &jobs, &inference).expect("survives faults");
        check_invariants(&r, jobs.jobs.len());
        // The in-run auditor (GPU accounting, orphaned assignments, loan
        // ledger) must never trip, faults or not.
        prop_assert_eq!(r.fault.audit_violations, 0);
        // No job may retain an allocation after the run: every record is
        // either complete or was accounted as waiting; killed jobs
        // restarted. Killed ⇒ restarts counted.
        prop_assert!(r.fault.restarts >= r.fault.jobs_killed);
        prop_assert!(
            r.fault.checkpoint_restores + r.fault.checkpoint_restore_failures
                <= r.fault.restarts
        );
        prop_assert!(r.fault.work_lost_s >= 0.0);
    }
}

#[test]
fn heavy_preemption_pressure_stays_consistent() {
    // A hostile inference trace that oscillates hard every few samples —
    // constant loan/reclaim churn with many preemptions.
    let (mut jobs, _) = traces(42, 0.7);
    transform::idealize(&mut jobs);
    let mut samples = Vec::new();
    for i in 0..(3 * 288) {
        samples.push(if (i / 6) % 2 == 0 { 0.2 } else { 0.9 });
    }
    let inference = InferenceTrace {
        config: InferenceTraceConfig {
            days: 3,
            total_gpus: 80,
            ..Default::default()
        },
        samples,
    };
    let mut s = Scenario::ideal();
    s.cluster = cluster();
    let r = run_scenario(&s, &jobs, &inference).expect("survives churn");
    check_invariants(&r, jobs.jobs.len());
    assert!(
        r.reclaim_ops > 10,
        "churn actually happened: {}",
        r.reclaim_ops
    );
}

#[test]
fn zero_job_trace_is_fine() {
    let (mut jobs, inference) = traces(1, 0.5);
    jobs.jobs.clear();
    let mut s = Scenario::basic();
    s.cluster = cluster();
    let r = run_scenario(&s, &jobs, &inference).expect("empty run");
    assert_eq!(r.submitted, 0);
    assert_eq!(r.completed, 0);
    assert_eq!(r.jct.mean, 0.0);
}

#[test]
fn single_giant_job_fills_the_cluster() {
    let (mut jobs, inference) = traces(2, 0.5);
    jobs.jobs.clear();
    jobs.jobs
        .push(lyra_core::JobSpec::inelastic(0, 10.0, 10, 8, 3600.0));
    let mut s = Scenario::basic();
    s.cluster = cluster();
    let r = run_scenario(&s, &jobs, &inference).expect("giant job runs");
    assert_eq!(r.completed, 1);
    let jct = r.records[0].jct_s().unwrap();
    assert!(
        (3600.0..4000.0).contains(&jct),
        "JCT {jct} ≈ runtime + launch overhead"
    );
}

#[test]
fn oversized_job_reports_incomplete_not_hang() {
    let (mut jobs, inference) = traces(3, 0.3);
    jobs.jobs.clear();
    // Demands 160 GPUs on an 80-GPU training cluster, non-fungible.
    jobs.jobs
        .push(lyra_core::JobSpec::inelastic(0, 10.0, 20, 8, 3600.0));
    let mut s = Scenario::basic();
    s.cluster = cluster();
    let r = run_scenario(&s, &jobs, &inference).expect("terminates");
    assert_eq!(r.completed, 0, "cannot ever run");
    assert!(r.records[0].first_start_s.is_none());
    assert!(r.records[0].queue_s > 0.0, "waited and was accounted");
}

#[test]
fn tuned_jobs_never_slow_down() {
    let (mut jobs, inference) = traces(4, 0.6);
    transform::set_elastic_fraction(&mut jobs, 0.5, 9);
    let mut plain = Scenario::elastic_only("lyra", "plain");
    plain.cluster = cluster();
    let mut tuned = Scenario::lyra_tuned();
    tuned.cluster = cluster();
    let rp = run_scenario(&plain, &jobs, &inference).unwrap();
    let rt = run_scenario(&tuned, &jobs, &inference).unwrap();
    // The tuning gain multiplies service rates by ≥1, so aggregate JCT
    // cannot get meaningfully worse.
    assert!(
        rt.jct.mean <= rp.jct.mean * 1.05,
        "tuned {:.0}s vs plain {:.0}s",
        rt.jct.mean,
        rp.jct.mean
    );
}

fn faulty_scenario(seed: u64) -> (Scenario, JobTrace, InferenceTrace) {
    let (mut jobs, inference) = traces(seed, 0.6);
    transform::set_elastic_fraction(&mut jobs, 0.6, seed);
    transform::set_checkpoint_fraction(&mut jobs, 0.5, seed ^ 1);
    let mut s = Scenario::basic();
    s.cluster = cluster();
    s.faults = Some(FaultPlan::generate(
        &FaultConfig {
            server_crash_rate_per_day: 1.0,
            worker_failure_rate_per_day: 8.0,
            checkpoint_restore_failure_prob: 0.2,
            straggler_rate_per_day: 0.5,
            dropped_tick_prob: 0.05,
            horizon_s: 86_400.0,
            ..FaultConfig::default()
        },
        s.cluster.training_servers + s.cluster.inference_servers,
        seed ^ 0xBAD,
    ));
    (s, jobs, inference)
}

#[test]
fn fault_runs_are_deterministic() {
    let (s, jobs, inference) = faulty_scenario(17);
    let a = run_scenario(&s, &jobs, &inference).expect("runs");
    let b = run_scenario(&s, &jobs, &inference).expect("runs");
    assert_eq!(a, b, "same seed + plan ⇒ identical report");
    assert!(a.fault.injected > 0, "the plan actually fired");
    assert!(
        a.fault.restarts > 0 || a.fault.elastic_absorbed > 0,
        "faults had visible effect: {:?}",
        a.fault
    );
    assert_eq!(a.fault.audit_violations, 0);
}

#[test]
fn high_crash_rate_still_completes_workload() {
    let (mut s, jobs, inference) = faulty_scenario(23);
    // Crank crashes an order of magnitude higher than the moderate preset.
    s.faults = Some(FaultPlan::generate(
        &FaultConfig {
            server_crash_rate_per_day: 3.0,
            crash_recovery_s: 1_200.0,
            worker_failure_rate_per_day: 20.0,
            checkpoint_restore_failure_prob: 0.3,
            horizon_s: 86_400.0,
            ..FaultConfig::default()
        },
        20,
        99,
    ));
    let r = run_scenario(&s, &jobs, &inference).expect("survives heavy crashes");
    check_invariants(&r, jobs.jobs.len());
    assert!(r.fault.server_crashes > 5, "crashes fired: {:?}", r.fault);
    assert!(r.fault.restarts > 0);
    assert_eq!(r.fault.audit_violations, 0);
    // Crashed servers recover, so the workload still finishes.
    assert!(
        r.completed >= jobs.jobs.len() * 90 / 100,
        "completed {}/{}",
        r.completed,
        jobs.jobs.len()
    );
}

#[test]
fn resource_manager_log_reflects_activity() {
    let (jobs, inference) = traces(11, 0.6);
    let mut s = Scenario::basic();
    s.cluster = cluster();
    let r = run_scenario(&s, &jobs, &inference).unwrap();
    // Every completed job issued at least one container launch; loans and
    // reclaims issued whitelist moves.
    assert!(
        r.rm_ops >= r.completed,
        "rm ops {} < completed {}",
        r.rm_ops,
        r.completed
    );
    assert!(r.control_plane_latency_s > 0.0);
    if r.loan_ops > 0 {
        // Loaned servers eventually returned: whitelist adds ≥ removes
        // only by what is still loaned at the end.
        assert!(r.rm_ops > r.completed);
    }
}
