//! Decision-provenance properties over randomly faulted scenarios.
//!
//! The engine's online [`ProvenanceTracker`] and the offline
//! [`build_provenance`] replay consume the same event stream through
//! the same transition function, so the two graphs must be equal for
//! any run — checked here as a differential over random faulted
//! scenarios, together with the structural invariants the graph
//! promises: acyclicity (causes strictly precede effects), every
//! preemption edge backed by exactly one `ReclaimChoice` audit record
//! naming the victim, and no orphan blame (every reclaim-preemption
//! delay interval reachable from a victim-ranking decision).

use lyra_cluster::state::ClusterConfig;
use lyra_obs::{
    attribute_log, blame_from_log, build_provenance, export_provenance_trace, render_why,
    validate_chrome_trace, why_from_log, AuditRecord, DelayCause, EdgeKind, NodeKind, SchedEvent,
};
use lyra_sim::{
    run_scenario_observed, transform, FaultConfig, FaultPlan, ObserverConfig, Scenario,
};
use lyra_trace::{InferenceTrace, InferenceTraceConfig, JobTrace, TraceConfig};
use proptest::prelude::*;

fn traces(seed: u64) -> (JobTrace, InferenceTrace) {
    let jobs = JobTrace::generate(TraceConfig {
        days: 1,
        training_gpus: 32,
        target_load: 0.6,
        max_demand_gpus: 16,
        seed,
        ..TraceConfig::default()
    });
    let inference = InferenceTrace::generate(InferenceTraceConfig {
        days: 3,
        total_gpus: 32,
        seed: seed ^ 0xFACE,
        ..InferenceTraceConfig::default()
    });
    (jobs, inference)
}

fn cluster() -> ClusterConfig {
    ClusterConfig {
        training_servers: 4,
        inference_servers: 4,
        gpus_per_server: 8,
        speed: lyra_core::gpu::SpeedFactors::default(),
    }
}

fn faulty_scenario(
    seed: u64,
    fault_seed: u64,
    crash_rate: f64,
    worker_rate: f64,
) -> (Scenario, JobTrace, InferenceTrace) {
    let (mut jobs, inference) = traces(seed);
    transform::set_elastic_fraction(&mut jobs, 0.6, seed);
    transform::set_checkpoint_fraction(&mut jobs, 0.5, seed ^ 1);
    let mut s = Scenario::basic();
    s.cluster = cluster();
    s.seed = seed;
    s.faults = Some(FaultPlan::generate(
        &FaultConfig {
            server_crash_rate_per_day: crash_rate,
            worker_failure_rate_per_day: worker_rate,
            straggler_rate_per_day: 0.5,
            checkpoint_restore_failure_prob: 0.2,
            dropped_tick_prob: 0.05,
            horizon_s: 86_400.0,
            ..FaultConfig::default()
        },
        s.cluster.training_servers + s.cluster.inference_servers,
        fault_seed,
    ));
    (s, jobs, inference)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any faulted run: the online graph equals the offline replay,
    /// the graph is acyclic, every preemption edge is backed by exactly
    /// one `ReclaimChoice` audit record naming the victim, and every
    /// reclaim-preemption delay interval anchors to a preemption node
    /// with an incoming victim-ranking edge (no orphan blame).
    #[test]
    fn provenance_graph_is_sound_under_faults(
        seed in 0u64..500,
        fault_seed in 0u64..500,
        crash_rate in 0.0f64..2.0,
        worker_rate in 0.0f64..10.0,
    ) {
        let (s, jobs, inference) = faulty_scenario(seed, fault_seed, crash_rate, worker_rate);
        let r = run_scenario_observed(&s, &jobs, &inference, ObserverConfig::default())
            .expect("faulted run completes");
        let parsed = lyra_obs::parse_log(&r.events.join("\n")).expect("log parses");

        // Online ≡ offline: the engine-maintained graph and the pure
        // log replay must be exactly equal.
        let offline = build_provenance(&parsed);
        prop_assert_eq!(&r.provenance, &offline, "online graph ≠ offline replay");

        // Causes strictly precede effects.
        prop_assert!(r.provenance.is_acyclic(), "provenance graph has a cycle or dangling edge");

        // Every preemption edge matches exactly one ReclaimChoice audit
        // record: the edge's source decision is the log event at that
        // seq, and its `preempted` list names the victim.
        for e in r.provenance.edges() {
            if e.kind != EdgeKind::Preemption {
                continue;
            }
            let from = r.provenance.node(e.from).expect("edge source exists");
            let to = r.provenance.node(e.to).expect("edge target exists");
            prop_assert_eq!(from.kind, NodeKind::ReclaimChoice);
            prop_assert_eq!(to.kind, NodeKind::Preempt);
            let victim = to.job.expect("preempt node names its victim");
            let matching: Vec<_> = parsed
                .iter()
                .filter(|ev| ev.seq == e.from)
                .filter_map(|ev| match &ev.event {
                    SchedEvent::Audit(AuditRecord::ReclaimChoice { preempted, .. }) => {
                        Some(preempted.clone())
                    }
                    _ => None,
                })
                .collect();
            prop_assert_eq!(
                matching.len(),
                1,
                "preemption edge #{} -> #{} must match exactly one ReclaimChoice record",
                e.from,
                e.to
            );
            prop_assert!(
                matching[0].contains(&victim),
                "ReclaimChoice #{} does not name victim job {}",
                e.from,
                victim
            );
        }

        // No orphan blame: every reclaim-preemption interval anchors to
        // a Preempt node carrying an incoming victim-ranking edge.
        for a in attribute_log(&parsed) {
            for iv in &a.intervals {
                if iv.cause != DelayCause::ReclaimPreemption {
                    continue;
                }
                let anchor = r
                    .provenance
                    .latest_for_job(a.job, NodeKind::Preempt, iv.start_ms)
                    .unwrap_or_else(|| {
                        panic!("job {}: reclaim-preemption interval at {}ms has no Preempt node",
                               a.job, iv.start_ms)
                    });
                prop_assert!(
                    r.provenance
                        .incoming(anchor.id)
                        .any(|e| e.kind == EdgeKind::Preemption),
                    "job {}: Preempt #{} has no incoming victim-ranking edge (orphan blame)",
                    a.job,
                    anchor.id
                );
            }
        }
    }
}

#[test]
fn why_is_byte_identical_live_vs_log_replay() {
    // High fault pressure so reclaim preemptions actually occur.
    let (s, jobs, inference) = faulty_scenario(17, 23, 1.0, 8.0);
    let r = run_scenario_observed(&s, &jobs, &inference, ObserverConfig::default()).expect("runs");
    let parsed = lyra_obs::parse_log(&r.events.join("\n")).expect("parses");
    let attrs = attribute_log(&parsed);
    // The live rendering reads the engine's online graph; the replay
    // rebuilds everything from the log. Same bytes, for every job.
    for a in &attrs {
        let live = render_why(&r.provenance, &attrs, a.job).expect("job is in the attribution");
        let replay = why_from_log(&parsed, a.job).expect("job is in the log");
        assert_eq!(live, replay, "job {}: live vs replay `why` diverged", a.job);
    }
    assert!(!attrs.is_empty(), "run admitted jobs");
}

#[test]
fn victims_trace_back_to_demand_and_ranking() {
    let (s, jobs, inference) = faulty_scenario(17, 23, 1.0, 8.0);
    let r = run_scenario_observed(&s, &jobs, &inference, ObserverConfig::default()).expect("runs");
    let parsed = lyra_obs::parse_log(&r.events.join("\n")).expect("parses");
    let victims: Vec<u64> = parsed
        .iter()
        .filter_map(|e| match &e.event {
            SchedEvent::JobPreempt { job, .. } => Some(*job),
            _ => None,
        })
        .collect();
    assert!(
        !victims.is_empty(),
        "scenario must produce at least one reclaim preemption for this test to bite"
    );
    for victim in victims {
        let why = why_from_log(&parsed, victim).expect("victim is in the log");
        assert!(
            why.contains("caused by preempt #"),
            "victim {victim}: `why` does not anchor the preemption:\n{why}"
        );
        assert!(
            why.contains("<- preempted by victim-ranking #"),
            "victim {victim}: `why` does not name the victim-ranking decision:\n{why}"
        );
        assert!(
            why.contains("<- reclaim-ranking by loan-demand #"),
            "victim {victim}: `why` does not name the loan-demand decision:\n{why}"
        );
    }
}

#[test]
fn same_seed_runs_pin_blame_and_provenance_export() {
    let (s, jobs, inference) = faulty_scenario(17, 23, 1.0, 8.0);
    let a = run_scenario_observed(&s, &jobs, &inference, ObserverConfig::default()).expect("runs");
    let b = run_scenario_observed(&s, &jobs, &inference, ObserverConfig::default()).expect("runs");
    assert_eq!(a.provenance, b.provenance, "online graphs match");
    let parsed_a = lyra_obs::parse_log(&a.events.join("\n")).expect("parses");
    let parsed_b = lyra_obs::parse_log(&b.events.join("\n")).expect("parses");
    assert_eq!(
        blame_from_log(&parsed_a, 10),
        blame_from_log(&parsed_b, 10),
        "blame tables are byte-identical"
    );
    let trace_a = export_provenance_trace(&parsed_a);
    let trace_b = export_provenance_trace(&parsed_b);
    assert_eq!(trace_a, trace_b, "provenance traces are byte-identical");
    let stats = validate_chrome_trace(&trace_a).expect("provenance trace is well-formed");
    assert!(
        stats.flow_events > 0,
        "provenance trace carries flow arrows"
    );
}

#[test]
fn provenance_can_be_disabled() {
    let (s, jobs, inference) = faulty_scenario(3, 5, 0.5, 2.0);
    let cfg = ObserverConfig {
        provenance: false,
        ..ObserverConfig::default()
    };
    let r = run_scenario_observed(&s, &jobs, &inference, cfg).expect("runs");
    assert_eq!(
        r.provenance.node_count(),
        0,
        "provenance off leaves an empty graph in the report"
    );
    // The log still supports the offline path.
    let parsed = lyra_obs::parse_log(&r.events.join("\n")).expect("parses");
    assert!(build_provenance(&parsed).node_count() > 0);
}
