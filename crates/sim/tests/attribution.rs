//! Delay-attribution properties over randomly faulted scenarios.
//!
//! The engine's online lifecycle tracker must produce, for every job, an
//! ordered, disjoint, gapless partition of `[arrival, completion)` —
//! the engine itself enforces this at the end of every observed run
//! (release builds included), and these tests check the same invariant
//! on the *log-derived* decomposition plus the differential between the
//! two paths and same-seed byte-identity of the rendered artifacts.

use lyra_cluster::state::ClusterConfig;
use lyra_obs::{attribute_log, export_chrome_trace, summarize, validate_chrome_trace};
use lyra_sim::{
    run_scenario_observed, transform, FaultConfig, FaultPlan, ObserverConfig, Scenario,
};
use lyra_trace::{InferenceTrace, InferenceTraceConfig, JobTrace, TraceConfig};
use proptest::prelude::*;

fn traces(seed: u64) -> (JobTrace, InferenceTrace) {
    let jobs = JobTrace::generate(TraceConfig {
        days: 1,
        training_gpus: 32,
        target_load: 0.6,
        max_demand_gpus: 16,
        seed,
        ..TraceConfig::default()
    });
    let inference = InferenceTrace::generate(InferenceTraceConfig {
        days: 3,
        total_gpus: 32,
        seed: seed ^ 0xFACE,
        ..InferenceTraceConfig::default()
    });
    (jobs, inference)
}

fn cluster() -> ClusterConfig {
    ClusterConfig {
        training_servers: 4,
        inference_servers: 4,
        gpus_per_server: 8,
        speed: lyra_core::gpu::SpeedFactors::default(),
    }
}

fn faulty_scenario(
    seed: u64,
    fault_seed: u64,
    crash_rate: f64,
    worker_rate: f64,
    straggler_rate: f64,
) -> (Scenario, JobTrace, InferenceTrace) {
    let (mut jobs, inference) = traces(seed);
    transform::set_elastic_fraction(&mut jobs, 0.6, seed);
    transform::set_checkpoint_fraction(&mut jobs, 0.5, seed ^ 1);
    let mut s = Scenario::basic();
    s.cluster = cluster();
    s.seed = seed;
    s.faults = Some(FaultPlan::generate(
        &FaultConfig {
            server_crash_rate_per_day: crash_rate,
            worker_failure_rate_per_day: worker_rate,
            straggler_rate_per_day: straggler_rate,
            checkpoint_restore_failure_prob: 0.2,
            dropped_tick_prob: 0.05,
            horizon_s: 86_400.0,
            ..FaultConfig::default()
        },
        s.cluster.training_servers + s.cluster.inference_servers,
        fault_seed,
    ));
    (s, jobs, inference)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every job's attributed intervals are ordered, disjoint and sum
    /// exactly to `completion − arrival`, whatever faults fired — and
    /// the log-derived decomposition agrees with the engine's online
    /// tracker.
    #[test]
    fn attribution_partitions_every_job_exactly(
        seed in 0u64..500,
        fault_seed in 0u64..500,
        crash_rate in 0.0f64..2.0,
        worker_rate in 0.0f64..10.0,
        straggler_rate in 0.0f64..2.0,
    ) {
        let (s, jobs, inference) =
            faulty_scenario(seed, fault_seed, crash_rate, worker_rate, straggler_rate);
        // The run itself reconciles every job (release-mode audit in
        // `finish_observation`); an error here means a partition broke.
        let r = run_scenario_observed(&s, &jobs, &inference, ObserverConfig::default())
            .expect("attribution reconciles inside the engine");
        let log = r.events.join("\n");
        let parsed = lyra_obs::parse_log(&log).expect("log parses");
        let admits = parsed
            .iter()
            .filter(|e| matches!(e.event, lyra_obs::SchedEvent::JobAdmit { .. }))
            .count();
        let attrs = attribute_log(&parsed);
        prop_assert_eq!(attrs.len(), admits, "one attribution per admitted job");
        for a in &attrs {
            if let Err(e) = a.reconcile() {
                return Err(TestCaseError::fail(e));
            }
            for w in a.intervals.windows(2) {
                prop_assert!(
                    w[0].end_ms <= w[1].start_ms,
                    "job {}: intervals out of order or overlapping",
                    a.job
                );
            }
            if let Some(done) = a.completion_ms {
                prop_assert_eq!(
                    a.attributed_ms(),
                    done - a.arrival_ms,
                    "job {}: Σ intervals ≠ completion − arrival",
                    a.job
                );
            }
        }
        // Differential: when the ring kept the whole log and every job
        // completed, the offline replay must roll up to exactly the
        // summary the engine computed online.
        if r.completed == r.submitted && admits == r.submitted {
            prop_assert_eq!(summarize(&attrs), r.attribution);
        }
    }
}

#[test]
fn same_seed_runs_yield_identical_tables_and_traces() {
    let (s, jobs, inference) = faulty_scenario(17, 23, 1.0, 8.0, 0.5);
    let a = run_scenario_observed(&s, &jobs, &inference, ObserverConfig::default()).expect("runs");
    let b = run_scenario_observed(&s, &jobs, &inference, ObserverConfig::default()).expect("runs");
    assert_eq!(a.attribution, b.attribution, "summaries match");
    assert_eq!(
        a.attribution.render_table(),
        b.attribution.render_table(),
        "attribution tables are byte-identical"
    );
    let parsed_a = lyra_obs::parse_log(&a.events.join("\n")).expect("parses");
    let parsed_b = lyra_obs::parse_log(&b.events.join("\n")).expect("parses");
    let trace_a = export_chrome_trace(&parsed_a);
    let trace_b = export_chrome_trace(&parsed_b);
    assert_eq!(trace_a, trace_b, "Chrome traces are byte-identical");
    let stats = validate_chrome_trace(&trace_a).expect("trace is well-formed");
    assert!(stats.events > 0 && stats.span_pairs > 0, "trace has content");
}

#[test]
fn fault_causes_show_up_in_the_summary() {
    let (s, jobs, inference) = faulty_scenario(41, 7, 2.0, 10.0, 1.0);
    let r = run_scenario_observed(&s, &jobs, &inference, ObserverConfig::default()).expect("runs");
    assert!(r.fault.injected > 0, "plan fired");
    let productive = r
        .attribution
        .causes
        .iter()
        .find(|c| c.cause == lyra_obs::DelayCause::Productive)
        .expect("productive time exists");
    assert!(productive.total_ms > 0);
    assert_eq!(
        r.attribution.jobs,
        r.submitted,
        "every submitted job is tracked"
    );
    if r.fault.jobs_killed > 0 {
        assert!(
            r.attribution
                .causes
                .iter()
                .any(|c| c.cause == lyra_obs::DelayCause::FaultRestart),
            "killed jobs charge fault-restart time: {:?}",
            r.attribution.causes
        );
    }
}
