//! The synthetic training-job trace (§7.1's 15-day production trace).
//!
//! The generator is calibrated to every scheduler-visible statistic the
//! paper reports about its trace:
//!
//! * 50,390 jobs over 15 days on a 3,544-GPU cluster at ~82 % average
//!   utilisation — the default configuration reproduces the job count to
//!   within a few percent by generating jobs until the offered load matches
//!   `target_load`;
//! * running times from minutes to days (heavy-tailed log-normal);
//! * a demand mix dominated by 1-GPU jobs with a multi-server tail, and
//!   jobs commonly demanding a whole 8-GPU server;
//! * 21 % fungible jobs (can run on either GPU type across runs);
//! * ~5 % large elastic jobs (ResNet/VGG/BERT/GNMT families) holding ≈36 %
//!   of cluster resources with ~14.2 h average running time, scaling range
//!   `[demand, 2·demand]`;
//! * diurnal, weekday-weighted arrivals (training clusters are less busy
//!   on weekends, the effect behind Figure 12's low-gain traces).

use crate::distributions::{log_normal, weighted_choice};
use lyra_core::job::{JobId, JobSpec, ModelFamily};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the job-trace generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Days the trace spans.
    pub days: u32,
    /// Training-cluster GPUs the load is calibrated against.
    pub training_gpus: u32,
    /// Offered load relative to cluster capacity (paper: ~0.82 average
    /// utilisation).
    pub target_load: f64,
    /// Explicit job count; overrides load calibration when set (used for
    /// the testbed workload of §7.5).
    pub num_jobs: Option<u32>,
    /// Fraction of fungible jobs (paper: 0.21).
    pub frac_fungible: f64,
    /// Fraction of elastic jobs (paper: ~0.05).
    pub frac_elastic: f64,
    /// Fraction of heterogeneous-capable jobs (0 in Basic, 0.10 in
    /// Advanced).
    pub frac_hetero: f64,
    /// Fraction of jobs with checkpointing (0 in the default conservative
    /// setup; swept in Figure 13).
    pub frac_checkpoint: f64,
    /// Median running time of ordinary jobs, seconds.
    pub inelastic_median_s: f64,
    /// Log-space sigma of ordinary running times.
    pub inelastic_sigma: f64,
    /// Median running time of elastic jobs at requested demand, seconds
    /// (calibrated so the mean is ≈14.2 h).
    pub elastic_median_s: f64,
    /// Log-space sigma of elastic running times.
    pub elastic_sigma: f64,
    /// Largest per-job GPU demand to generate (testbed caps at 16).
    pub max_demand_gpus: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            days: 15,
            training_gpus: 3544,
            target_load: 0.82,
            num_jobs: None,
            frac_fungible: 0.21,
            frac_elastic: 0.05,
            frac_hetero: 0.0,
            frac_checkpoint: 0.0,
            inelastic_median_s: 1500.0,
            inelastic_sigma: 1.6,
            elastic_median_s: 45_000.0,
            elastic_sigma: 0.5,
            max_demand_gpus: 128,
            seed: 0x7EACE,
        }
    }
}

impl TraceConfig {
    /// A quickly-simulated scaled-down configuration for tests and CI: two
    /// days on a 16-server cluster.
    pub fn small(seed: u64) -> Self {
        TraceConfig {
            days: 2,
            training_gpus: 128,
            seed,
            ..Default::default()
        }
    }

    /// The testbed workload of §7.5: 180 jobs (10 elastic) submitted over
    /// 8 hours, running times 2 minutes – 2 hours, demands ≤ 16 GPUs.
    pub fn testbed(seed: u64) -> Self {
        TraceConfig {
            days: 1,
            training_gpus: 32,
            target_load: 0.9,
            num_jobs: Some(180),
            frac_elastic: 10.0 / 180.0,
            inelastic_median_s: 900.0,
            inelastic_sigma: 0.9,
            elastic_median_s: 4_000.0,
            elastic_sigma: 0.4,
            max_demand_gpus: 16,
            seed,
            ..Default::default()
        }
    }
}

/// A generated job trace, sorted by submission time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobTrace {
    /// Configuration the trace was generated with.
    pub config: TraceConfig,
    /// Jobs in submission order.
    pub jobs: Vec<JobSpec>,
}

/// Trace-level statistics used to validate calibration against §7.1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of jobs.
    pub num_jobs: usize,
    /// Fraction of fungible jobs.
    pub frac_fungible: f64,
    /// Fraction of elastic jobs.
    pub frac_elastic: f64,
    /// Share of total GPU-seconds held by elastic jobs (paper: ≈0.36).
    pub elastic_resource_share: f64,
    /// Offered load relative to cluster capacity over the span.
    pub offered_load: f64,
    /// Mean elastic running time at requested demand, hours (paper: 14.2).
    pub elastic_mean_hours: f64,
    /// Median running time across all jobs, seconds.
    pub median_running_time_s: f64,
}

/// Relative arrival intensity at an absolute trace time.
///
/// Weekdays are busier than weekends and working hours busier than night —
/// the pattern behind Figure 2's hourly queuing ratio and Figure 12's
/// weekend observation. Day 0 is a Monday.
pub fn arrival_intensity(time_s: f64) -> f64 {
    let day = (time_s / 86_400.0).floor() as i64;
    let weekday = day.rem_euclid(7) as usize;
    let hour = (time_s % 86_400.0) / 3600.0;
    // Work-hour hump peaking mid-afternoon; nights are quiet, so the
    // daily peak runs well above the mean and congests the cluster the
    // way Figure 2's 100%-queuing hours do.
    let diurnal = 0.25
        + 1.30
            * (std::f64::consts::PI * ((hour - 3.0) / 12.0))
                .sin()
                .max(0.0);
    // Weekly rhythm: light Monday, mid-week crunch, quiet weekend. The
    // crunch days push offered load past capacity for hours, which is
    // what keeps mean queuing high for *every* scheduler in the paper's
    // trace.
    const WEEK: [f64; 7] = [0.90, 1.10, 1.25, 1.30, 1.10, 0.55, 0.50];
    diurnal * WEEK[weekday]
}

/// Samples an arrival time in `[0, horizon_s)` from the intensity via
/// rejection sampling.
fn sample_arrival(rng: &mut StdRng, horizon_s: f64) -> f64 {
    loop {
        let t = rng.gen_range(0.0..horizon_s);
        let u: f64 = rng.gen();
        if u < arrival_intensity(t) {
            return t;
        }
    }
}

/// Per-worker GPU count and worker count for an ordinary job.
fn sample_inelastic_shape(rng: &mut StdRng, max_gpus: u32) -> (u32, u32) {
    loop {
        let gpw = [1u32, 2, 4, 8][weighted_choice(rng, &[0.45, 0.20, 0.17, 0.18])];
        let workers = [1u32, 2, 4, 8, 16][weighted_choice(rng, &[0.45, 0.20, 0.15, 0.12, 0.08])];
        if gpw * workers <= max_gpus {
            return (gpw, workers);
        }
    }
}

/// Per-worker GPU count and base worker count for an elastic job.
fn sample_elastic_shape(rng: &mut StdRng, max_gpus: u32) -> (u32, u32) {
    loop {
        let gpw = [4u32, 8][weighted_choice(rng, &[0.6, 0.4])];
        let w_min = [1u32, 2, 4][weighted_choice(rng, &[0.30, 0.45, 0.25])];
        // The full range must fit the cap (w_max = 2·w_min).
        if gpw * w_min * 2 <= max_gpus {
            return (gpw, w_min);
        }
    }
}

impl JobTrace {
    /// Generates a trace from the configuration.
    ///
    /// Jobs are generated until either `num_jobs` is reached or the offered
    /// load (total GPU-seconds over capacity × span) reaches
    /// `target_load`; arrival times are then drawn from the diurnal
    /// intensity and the trace is sorted by submission.
    pub fn generate(config: TraceConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let horizon_s = f64::from(config.days) * 86_400.0;
        let capacity_gpu_s = f64::from(config.training_gpus) * horizon_s;
        let target_gpu_s = config.target_load * capacity_gpu_s;

        let elastic_families = [
            ModelFamily::ResNet50,
            ModelFamily::Vgg16,
            ModelFamily::Bert,
            ModelFamily::Gnmt16,
        ];

        // Elastic jobs are always fungible (they must reach the loaned
        // servers), so the inelastic fungible probability is derated to
        // keep the *overall* fungible fraction at `frac_fungible`.
        let frac_elastic = config.frac_elastic.clamp(0.0, 1.0);
        let inelastic_fungible = if frac_elastic < 1.0 {
            ((config.frac_fungible - frac_elastic) / (1.0 - frac_elastic)).clamp(0.0, 1.0)
        } else {
            0.0
        };

        let mut jobs: Vec<JobSpec> = Vec::new();
        let mut total_gpu_s = 0.0;
        let mut id = 0u64;
        loop {
            match config.num_jobs {
                Some(n) => {
                    if jobs.len() >= n as usize {
                        break;
                    }
                }
                None => {
                    if total_gpu_s >= target_gpu_s {
                        break;
                    }
                }
            }
            // With an explicit job count the elastic quota is exact (the
            // testbed needs exactly 10 of 180); otherwise Bernoulli.
            let elastic = match config.num_jobs {
                Some(n) => (jobs.len() as f64) < (frac_elastic * f64::from(n)).round(),
                None => rng.gen_bool(frac_elastic),
            };
            let spec = if elastic {
                let (gpw, w_min) = sample_elastic_shape(&mut rng, config.max_demand_gpus);
                let w_max = w_min * 2;
                // The sampled duration is the running time at the
                // *requested* (base) demand; `min_running_time_s` is at
                // `w_max`, i.e. half of it under linear scaling.
                let duration = log_normal(&mut rng, config.elastic_median_s, config.elastic_sigma);
                let family = elastic_families[rng.gen_range(0..elastic_families.len())];
                JobSpec::elastic(id, 0.0, w_min, w_max, gpw, duration / 2.0)
                    .with_model(family)
                    .with_fungible(true)
            } else {
                let (gpw, workers) = sample_inelastic_shape(&mut rng, config.max_demand_gpus);
                let duration =
                    log_normal(&mut rng, config.inelastic_median_s, config.inelastic_sigma)
                        // Keep ordinary jobs within "minutes to days".
                        .clamp(60.0, 3.0 * 86_400.0);
                JobSpec::inelastic(id, 0.0, workers, gpw, duration)
                    .with_fungible(rng.gen_bool(inelastic_fungible))
            };
            let spec = spec
                .with_hetero(rng.gen_bool(config.frac_hetero.clamp(0.0, 1.0)))
                .with_checkpointing(rng.gen_bool(config.frac_checkpoint.clamp(0.0, 1.0)));
            // Account resource usage at the requested demand.
            total_gpu_s += f64::from(spec.base_gpus()) * spec.running_time(spec.w_min());
            jobs.push(spec);
            id += 1;
        }

        // Arrival times from the diurnal intensity. A fraction of jobs
        // arrives in submission storms (hyperparameter sweeps submit many
        // related jobs at once), sharing a storm anchor with small jitter.
        let mut i = 0;
        while i < jobs.len() {
            let t = sample_arrival(&mut rng, horizon_s);
            if rng.gen_bool(0.08) {
                let burst = rng.gen_range(4..=48usize).min(jobs.len() - i);
                for job in jobs.iter_mut().skip(i).take(burst) {
                    job.submit_time_s = (t + rng.gen_range(0.0..120.0)).min(horizon_s - 1.0);
                }
                i += burst;
            } else {
                jobs[i].submit_time_s = t;
                i += 1;
            }
        }
        jobs.sort_by(|a, b| {
            a.submit_time_s
                .partial_cmp(&b.submit_time_s)
                .expect("no NaN submit times")
        });
        // Re-number in submission order so ids are monotone.
        for (i, job) in jobs.iter_mut().enumerate() {
            job.id = JobId(i as u64);
        }
        JobTrace { config, jobs }
    }

    /// Computes the calibration statistics of this trace.
    pub fn stats(&self) -> TraceStats {
        let n = self.jobs.len().max(1);
        let gpu_s = |j: &JobSpec| f64::from(j.base_gpus()) * j.running_time(j.w_min());
        let total: f64 = self.jobs.iter().map(gpu_s).sum();
        let elastic_total: f64 = self.jobs.iter().filter(|j| j.is_elastic()).map(gpu_s).sum();
        let elastic: Vec<&JobSpec> = self.jobs.iter().filter(|j| j.is_elastic()).collect();
        let elastic_mean_hours = if elastic.is_empty() {
            0.0
        } else {
            elastic
                .iter()
                .map(|j| j.running_time(j.w_min()))
                .sum::<f64>()
                / elastic.len() as f64
                / 3600.0
        };
        let mut runtimes: Vec<f64> = self
            .jobs
            .iter()
            .map(|j| j.running_time(j.w_min()))
            .collect();
        runtimes.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let capacity =
            f64::from(self.config.training_gpus) * f64::from(self.config.days) * 86_400.0;
        TraceStats {
            num_jobs: self.jobs.len(),
            frac_fungible: self.jobs.iter().filter(|j| j.fungible).count() as f64 / n as f64,
            frac_elastic: elastic.len() as f64 / n as f64,
            elastic_resource_share: if total > 0.0 {
                elastic_total / total
            } else {
                0.0
            },
            offered_load: if capacity > 0.0 {
                total / capacity
            } else {
                0.0
            },
            elastic_mean_hours,
            median_running_time_s: runtimes.get(n / 2).copied().unwrap_or(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_trace_matches_paper_statistics() {
        let trace = JobTrace::generate(TraceConfig::default());
        let s = trace.stats();
        // ~50 k jobs on the full configuration (the paper has 50,390).
        assert!(
            (35_000..70_000).contains(&s.num_jobs),
            "job count {}",
            s.num_jobs
        );
        assert!((s.frac_fungible - 0.21).abs() < 0.03, "{}", s.frac_fungible);
        assert!((s.frac_elastic - 0.05).abs() < 0.02, "{}", s.frac_elastic);
        assert!(
            (0.25..0.50).contains(&s.elastic_resource_share),
            "elastic share {}",
            s.elastic_resource_share
        );
        assert!(
            (s.offered_load - 0.82).abs() < 0.05,
            "load {}",
            s.offered_load
        );
        assert!(
            (10.0..18.0).contains(&s.elastic_mean_hours),
            "elastic mean hours {}",
            s.elastic_mean_hours
        );
    }

    #[test]
    fn running_times_span_minutes_to_days() {
        let trace = JobTrace::generate(TraceConfig::default());
        let max = trace
            .jobs
            .iter()
            .map(|j| j.running_time(j.w_min()))
            .fold(0.0, f64::max);
        let min = trace
            .jobs
            .iter()
            .map(|j| j.running_time(j.w_min()))
            .fold(f64::INFINITY, f64::min);
        assert!(min < 600.0, "shortest job {min}s");
        assert!(max > 86_400.0, "longest job {max}s");
    }

    #[test]
    fn jobs_sorted_with_monotone_ids() {
        let trace = JobTrace::generate(TraceConfig::small(3));
        for w in trace.jobs.windows(2) {
            assert!(w[0].submit_time_s <= w[1].submit_time_s);
            assert!(w[0].id < w[1].id);
        }
        let horizon = f64::from(trace.config.days) * 86_400.0;
        assert!(trace.jobs.iter().all(|j| j.submit_time_s < horizon));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = JobTrace::generate(TraceConfig::small(9));
        let b = JobTrace::generate(TraceConfig::small(9));
        assert_eq!(a, b);
        let c = JobTrace::generate(TraceConfig::small(10));
        assert_ne!(a, c, "different seed → different trace");
    }

    #[test]
    fn testbed_workload_shape() {
        let trace = JobTrace::generate(TraceConfig::testbed(1));
        assert_eq!(trace.jobs.len(), 180);
        let elastic = trace.jobs.iter().filter(|j| j.is_elastic()).count();
        assert!((5..=20).contains(&elastic), "{elastic} elastic jobs");
        assert!(trace
            .jobs
            .iter()
            .all(|j| j.w_max() * j.gpus_per_worker <= 16));
    }

    #[test]
    fn elastic_jobs_have_doubled_range_and_fungibility() {
        let trace = JobTrace::generate(TraceConfig::small(4));
        for j in trace.jobs.iter().filter(|j| j.is_elastic()) {
            assert_eq!(j.w_max(), 2 * j.w_min());
            assert!(j.fungible, "elastic jobs can use loaned servers");
            assert!(j.model.scales_well());
        }
    }

    #[test]
    fn weekend_arrivals_are_lighter() {
        let trace = JobTrace::generate(TraceConfig::default());
        // Days 0–4 are weekdays, 5–6 weekend (two full weeks in 15 days).
        let mut weekday = 0usize;
        let mut weekend = 0usize;
        for j in &trace.jobs {
            let day = (j.submit_time_s / 86_400.0).floor() as i64 % 7;
            if day >= 5 {
                weekend += 1;
            } else {
                weekday += 1;
            }
        }
        let weekday_rate = weekday as f64 / 5.0;
        let weekend_rate = weekend as f64 / 2.0;
        assert!(
            weekend_rate < 0.75 * weekday_rate,
            "weekend {weekend_rate:.0} vs weekday {weekday_rate:.0}"
        );
    }

    #[test]
    fn hetero_and_checkpoint_fractions_apply() {
        let config = TraceConfig {
            frac_hetero: 0.10,
            frac_checkpoint: 0.50,
            ..TraceConfig::small(5)
        };
        let trace = JobTrace::generate(config);
        let n = trace.jobs.len() as f64;
        let hetero = trace.jobs.iter().filter(|j| j.hetero_capable).count() as f64 / n;
        let ckpt = trace.jobs.iter().filter(|j| j.checkpointing).count() as f64 / n;
        assert!((hetero - 0.10).abs() < 0.05, "hetero {hetero}");
        assert!((ckpt - 0.50).abs() < 0.08, "ckpt {ckpt}");
    }
}
