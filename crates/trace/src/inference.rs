//! The inference-cluster utilisation trace (Figure 1).
//!
//! The paper measures the fraction of inference GPUs serving at least one
//! request at 5-minute intervals over one week: a clear diurnal pattern
//! with a ~4-hour ~95 % peak at night, a 42 % trough before dawn, ~65 %
//! mean and a ~2.2 peak-to-trough ratio. Short traffic bursts within a
//! 5-minute orchestrator interval have a median size of ~2 % of cluster
//! capacity, which motivates Lyra's fixed 2 % headroom (§7.1).
//!
//! The model: a smooth diurnal base curve (trough before dawn at 5 am,
//! ramp through the day, peak plateau 8 pm–midnight) plus AR(1) noise and
//! occasional exponential bursts, clamped to `[0, 1]`.

use crate::distributions::{exponential, standard_normal};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Seconds per trace sample (the paper measures every 5 minutes).
pub const SAMPLE_INTERVAL_S: u64 = 300;

/// Configuration of the synthetic utilisation model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceTraceConfig {
    /// Days of trace to generate.
    pub days: u32,
    /// Total GPUs in the inference cluster (the paper's has ~4,160).
    pub total_gpus: u32,
    /// Utilisation at the pre-dawn trough (paper: 0.42).
    pub trough: f64,
    /// Utilisation at the nightly peak (paper: 0.95).
    pub peak: f64,
    /// AR(1) noise amplitude.
    pub noise: f64,
    /// Probability of a burst starting at any sample.
    pub burst_prob: f64,
    /// Mean burst size as a fraction of capacity (median ≈ 2 %).
    pub burst_mean: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for InferenceTraceConfig {
    fn default() -> Self {
        InferenceTraceConfig {
            days: 15,
            total_gpus: 4160,
            trough: 0.42,
            peak: 0.95,
            noise: 0.02,
            burst_prob: 0.05,
            burst_mean: 0.03,
            seed: 0x1F5A,
        }
    }
}

/// A generated utilisation trace: one sample per 5-minute interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceTrace {
    /// Configuration it was generated with.
    pub config: InferenceTraceConfig,
    /// Utilisation samples in `[0, 1]`.
    pub samples: Vec<f64>,
}

/// Smooth diurnal base shape in `[0, 1]` for an hour-of-day in `[0, 24)`:
/// 0 at the 5 am trough, 1 on the 20:00–24:00 peak plateau.
fn diurnal_shape(hour: f64) -> f64 {
    // Piecewise-smooth: cosine ramp up 5→20, plateau 20→24, cosine ramp
    // down 0→5 (continuing the previous night's peak).
    if (20.0..24.0).contains(&hour) {
        1.0
    } else if hour >= 5.0 {
        // Rise from trough (5:00) to peak (20:00).
        let x = (hour - 5.0) / 15.0;
        0.5 - 0.5 * (std::f64::consts::PI * x).cos()
    } else {
        // Fall from peak (0:00, carried over) to trough (5:00).
        let x = hour / 5.0;
        0.5 + 0.5 * (std::f64::consts::PI * x).cos()
    }
}

impl InferenceTrace {
    /// Generates a trace from the configuration.
    pub fn generate(config: InferenceTraceConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let samples_per_day = (86_400 / SAMPLE_INTERVAL_S) as usize;
        let n = samples_per_day * config.days as usize;
        let mut samples = Vec::with_capacity(n);
        let mut ar = 0.0_f64;
        let mut burst = 0.0_f64;
        for i in 0..n {
            let hour = (i % samples_per_day) as f64 * (SAMPLE_INTERVAL_S as f64 / 3600.0);
            // The squared shape widens the trough so the weekly mean
            // lands near the paper's ~65 %.
            let base = config.trough + (config.peak - config.trough) * diurnal_shape(hour).powi(2);
            // AR(1) noise with coefficient 0.8.
            ar = 0.8 * ar + config.noise * standard_normal(&mut rng);
            // Bursts decay geometrically once started.
            burst *= 0.6;
            if rng.gen_bool(config.burst_prob) {
                burst += exponential(&mut rng, 1.0 / config.burst_mean);
            }
            samples.push((base + ar + burst).clamp(0.0, 1.0));
        }
        InferenceTrace { config, samples }
    }

    /// Utilisation at an absolute time (seconds from trace start), clamped
    /// to the last sample beyond the end.
    pub fn utilization_at(&self, time_s: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let idx = (time_s.max(0.0) as u64 / SAMPLE_INTERVAL_S) as usize;
        self.samples[idx.min(self.samples.len() - 1)]
    }

    /// GPUs busy with inference at `time_s`.
    pub fn gpus_busy_at(&self, time_s: f64) -> u32 {
        (self.utilization_at(time_s) * f64::from(self.config.total_gpus)).round() as u32
    }

    /// Servers (of `gpus_per_server`) the inference scheduler needs at
    /// `time_s` to serve the load — the whole-server ceiling of busy GPUs.
    pub fn servers_needed_at(&self, time_s: f64, gpus_per_server: u32) -> u32 {
        self.gpus_busy_at(time_s).div_ceil(gpus_per_server.max(1))
    }

    /// Mean utilisation across the trace.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// `(trough, peak)` as the 1st / 99th percentiles, robust to bursts.
    pub fn trough_peak(&self) -> (f64, f64) {
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in trace"));
        let p = |q: f64| sorted[((sorted.len() - 1) as f64 * q) as usize];
        (p(0.01), p(0.99))
    }

    /// Median positive 5-minute utilisation increase, as a fraction of
    /// capacity — the paper's burst statistic behind the 2 % headroom.
    pub fn median_burst(&self) -> f64 {
        let mut ups: Vec<f64> = self
            .samples
            .windows(2)
            .map(|w| w[1] - w[0])
            .filter(|d| *d > 0.0)
            .collect();
        if ups.is_empty() {
            return 0.0;
        }
        ups.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        ups[ups.len() / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn week() -> InferenceTrace {
        InferenceTrace::generate(InferenceTraceConfig {
            days: 7,
            ..Default::default()
        })
    }

    #[test]
    fn figure1_statistics() {
        let t = week();
        let mean = t.mean();
        assert!((0.60..0.72).contains(&mean), "mean utilisation {mean}");
        let (trough, peak) = t.trough_peak();
        assert!((0.35..0.50).contains(&trough), "trough {trough}");
        assert!(peak > 0.90, "peak {peak}");
        let ratio = peak / trough;
        assert!((1.8..2.8).contains(&ratio), "peak-to-trough {ratio}");
    }

    #[test]
    fn burst_median_near_two_percent() {
        let t = week();
        let burst = t.median_burst();
        assert!(
            (0.005..0.04).contains(&burst),
            "median 5-minute burst {burst}"
        );
    }

    #[test]
    fn samples_are_bounded_and_deterministic() {
        let a = week();
        let b = week();
        assert_eq!(a, b, "same seed → same trace");
        assert!(a.samples.iter().all(|&x| (0.0..=1.0).contains(&x)));
        assert_eq!(a.samples.len(), 7 * 288);
    }

    #[test]
    fn diurnal_shape_has_trough_and_peak() {
        assert!(diurnal_shape(5.0) < 0.01);
        assert!(diurnal_shape(22.0) > 0.99);
        // Continuous at midnight: end of plateau matches start of decline.
        assert!((diurnal_shape(0.0) - 1.0).abs() < 1e-9);
        // Monotone rise through the afternoon.
        assert!(diurnal_shape(12.0) < diurnal_shape(16.0));
    }

    #[test]
    fn lookup_helpers() {
        let t = week();
        assert_eq!(t.utilization_at(-5.0), t.samples[0]);
        assert_eq!(t.utilization_at(1e12), *t.samples.last().unwrap());
        let busy = t.gpus_busy_at(0.0);
        assert!(busy <= t.config.total_gpus);
        let servers = t.servers_needed_at(0.0, 8);
        assert_eq!(servers, busy.div_ceil(8));
    }

    #[test]
    fn empty_trace_is_safe() {
        let t = InferenceTrace {
            config: InferenceTraceConfig::default(),
            samples: vec![],
        };
        assert_eq!(t.utilization_at(0.0), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.median_burst(), 0.0);
    }
}
