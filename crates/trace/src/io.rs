//! CSV import/export for traces.
//!
//! A small self-contained CSV codec (the traces have no quoting needs) so
//! generated traces can be inspected, archived and replayed — the workflow
//! the paper uses with its production traces.

use crate::inference::{InferenceTrace, InferenceTraceConfig};
use crate::jobgen::{JobTrace, TraceConfig};
use lyra_core::gpu::GpuType;
use lyra_core::job::{Elasticity, JobId, JobSpec, ModelFamily, ScalingCurve};
use std::fmt::Write as _;

/// Errors raised by the CSV codec.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceIoError {
    /// A row had the wrong number of fields.
    BadRow {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// The header line did not match the expected schema.
    BadHeader(String),
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::BadRow { line, reason } => {
                write!(f, "bad trace row at line {line}: {reason}")
            }
            TraceIoError::BadHeader(h) => write!(f, "bad trace header: {h}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

const JOB_HEADER: &str =
    "id,submit_s,gpus_per_worker,demand,w_min,w_max,min_running_time_s,fungible,hetero,checkpoint,model,curve";

fn model_tag(m: ModelFamily) -> &'static str {
    match m {
        ModelFamily::ResNet50 => "resnet50",
        ModelFamily::Vgg16 => "vgg16",
        ModelFamily::Bert => "bert",
        ModelFamily::Gnmt16 => "gnmt16",
        ModelFamily::Generic => "generic",
    }
}

fn parse_model(tag: &str) -> Option<ModelFamily> {
    Some(match tag {
        "resnet50" => ModelFamily::ResNet50,
        "vgg16" => ModelFamily::Vgg16,
        "bert" => ModelFamily::Bert,
        "gnmt16" => ModelFamily::Gnmt16,
        "generic" => ModelFamily::Generic,
        _ => return None,
    })
}

fn curve_tag(c: &ScalingCurve) -> String {
    match c {
        ScalingCurve::Linear => "linear".to_string(),
        ScalingCurve::PerWorkerLoss { loss } => format!("loss:{loss}"),
        ScalingCurve::Table(t) => {
            let vals: Vec<String> = t.iter().map(|v| v.to_string()).collect();
            format!("table:{}", vals.join(";"))
        }
    }
}

fn parse_curve(tag: &str) -> Option<ScalingCurve> {
    if tag == "linear" {
        return Some(ScalingCurve::Linear);
    }
    if let Some(loss) = tag.strip_prefix("loss:") {
        return Some(ScalingCurve::PerWorkerLoss {
            loss: loss.parse().ok()?,
        });
    }
    if let Some(vals) = tag.strip_prefix("table:") {
        let table: Option<Vec<f64>> = vals.split(';').map(|v| v.parse().ok()).collect();
        return Some(ScalingCurve::Table(table?));
    }
    None
}

/// Serialises a job trace to CSV.
pub fn jobs_to_csv(trace: &JobTrace) -> String {
    let mut out = String::new();
    out.push_str(JOB_HEADER);
    out.push('\n');
    for j in &trace.jobs {
        let (w_min, w_max) = (j.w_min(), j.w_max());
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            j.id.0,
            j.submit_time_s,
            j.gpus_per_worker,
            j.demand,
            if j.is_elastic() { w_min } else { 0 },
            if j.is_elastic() { w_max } else { 0 },
            j.min_running_time_s,
            u8::from(j.fungible),
            u8::from(j.hetero_capable),
            u8::from(j.checkpointing),
            model_tag(j.model),
            curve_tag(&j.curve),
        )
        .expect("string write cannot fail");
    }
    out
}

/// Parses a job trace from CSV produced by [`jobs_to_csv`].
///
/// The returned trace carries `config` (CSV does not embed it — pass the
/// one used for generation, or a default for foreign traces).
pub fn jobs_from_csv(csv: &str, config: TraceConfig) -> Result<JobTrace, TraceIoError> {
    let mut lines = csv.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h == JOB_HEADER => {}
        Some((_, h)) => return Err(TraceIoError::BadHeader(h.to_string())),
        None => return Err(TraceIoError::BadHeader("empty input".to_string())),
    }
    let mut jobs = Vec::new();
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        let bad = |reason: &str| TraceIoError::BadRow {
            line: i + 1,
            reason: reason.to_string(),
        };
        if fields.len() != 12 {
            return Err(bad(&format!("expected 12 fields, got {}", fields.len())));
        }
        let parse_u32 = |s: &str, what: &str| {
            s.parse::<u32>()
                .map_err(|_| bad(&format!("bad {what}: {s}")))
        };
        let parse_f64 = |s: &str, what: &str| {
            s.parse::<f64>()
                .map_err(|_| bad(&format!("bad {what}: {s}")))
        };
        let id = fields[0]
            .parse::<u64>()
            .map_err(|_| bad(&format!("bad id: {}", fields[0])))?;
        let submit = parse_f64(fields[1], "submit_s")?;
        let gpw = parse_u32(fields[2], "gpus_per_worker")?;
        let demand = parse_u32(fields[3], "demand")?;
        let w_min = parse_u32(fields[4], "w_min")?;
        let w_max = parse_u32(fields[5], "w_max")?;
        let min_rt = parse_f64(fields[6], "min_running_time_s")?;
        let flag = |s: &str, what: &str| match s {
            "0" => Ok(false),
            "1" => Ok(true),
            _ => Err(bad(&format!("bad {what}: {s}"))),
        };
        let fungible = flag(fields[7], "fungible")?;
        let hetero = flag(fields[8], "hetero")?;
        let checkpoint = flag(fields[9], "checkpoint")?;
        let model = parse_model(fields[10]).ok_or_else(|| bad("unknown model"))?;
        let curve = parse_curve(fields[11]).ok_or_else(|| bad("unknown curve"))?;
        let elasticity = if w_min == 0 && w_max == 0 {
            None
        } else {
            if w_min == 0 || w_min > w_max {
                return Err(bad("invalid elasticity range"));
            }
            Some(Elasticity::new(w_min, w_max))
        };
        jobs.push(JobSpec {
            id: JobId(id),
            submit_time_s: submit,
            gpus_per_worker: gpw,
            demand,
            elasticity,
            min_running_time_s: min_rt,
            fungible,
            hetero_capable: hetero,
            checkpointing: checkpoint,
            model,
            curve,
            reference_gpu: GpuType::V100,
            shrink_cost_s: 0.0,
            expand_cost_s: 0.0,
            deadline_s: None,
        });
    }
    Ok(JobTrace { config, jobs })
}

/// Serialises an inference utilisation trace to CSV.
pub fn utilization_to_csv(trace: &InferenceTrace) -> String {
    let mut out = String::from("interval,utilization\n");
    for (i, u) in trace.samples.iter().enumerate() {
        writeln!(out, "{i},{u}").expect("string write cannot fail");
    }
    out
}

/// Parses a utilisation trace from CSV produced by [`utilization_to_csv`].
pub fn utilization_from_csv(
    csv: &str,
    config: InferenceTraceConfig,
) -> Result<InferenceTrace, TraceIoError> {
    let mut lines = csv.lines().enumerate();
    match lines.next() {
        Some((_, "interval,utilization")) => {}
        Some((_, h)) => return Err(TraceIoError::BadHeader(h.to_string())),
        None => return Err(TraceIoError::BadHeader("empty input".to_string())),
    }
    let mut samples = Vec::new();
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let (_, v) = line.split_once(',').ok_or(TraceIoError::BadRow {
            line: i + 1,
            reason: "expected 2 fields".to_string(),
        })?;
        samples.push(v.parse::<f64>().map_err(|_| TraceIoError::BadRow {
            line: i + 1,
            reason: format!("bad utilization: {v}"),
        })?);
    }
    Ok(InferenceTrace { config, samples })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::InferenceTrace;

    #[test]
    fn job_trace_roundtrips() {
        let trace = JobTrace::generate(TraceConfig::small(2));
        let csv = jobs_to_csv(&trace);
        let parsed = jobs_from_csv(&csv, trace.config).expect("roundtrip parses");
        assert_eq!(parsed.jobs.len(), trace.jobs.len());
        for (a, b) in trace.jobs.iter().zip(&parsed.jobs) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn utilization_roundtrips() {
        let config = InferenceTraceConfig {
            days: 1,
            ..Default::default()
        };
        let trace = InferenceTrace::generate(config);
        let csv = utilization_to_csv(&trace);
        let parsed = utilization_from_csv(&csv, config).expect("roundtrip parses");
        assert_eq!(parsed, trace);
    }

    #[test]
    fn bad_header_is_rejected() {
        let err = jobs_from_csv("id,oops\n", TraceConfig::small(1)).unwrap_err();
        assert!(matches!(err, TraceIoError::BadHeader(_)));
        let err = utilization_from_csv("nope\n", InferenceTraceConfig::default()).unwrap_err();
        assert!(matches!(err, TraceIoError::BadHeader(_)));
    }

    #[test]
    fn bad_rows_report_line_numbers() {
        let csv = format!("{JOB_HEADER}\n1,2,3\n");
        match jobs_from_csv(&csv, TraceConfig::small(1)) {
            Err(TraceIoError::BadRow { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected BadRow, got {other:?}"),
        }
    }

    #[test]
    fn curve_tags_roundtrip() {
        for curve in [
            ScalingCurve::Linear,
            ScalingCurve::PerWorkerLoss { loss: 0.2 },
            ScalingCurve::Table(vec![1.0, 1.9, 2.75]),
        ] {
            let tag = curve_tag(&curve);
            assert_eq!(parse_curve(&tag), Some(curve));
        }
        assert_eq!(parse_curve("nonsense"), None);
    }

    #[test]
    fn invalid_elasticity_rejected() {
        let csv = format!("{JOB_HEADER}\n0,0,1,2,3,2,10,0,0,0,generic,linear\n");
        assert!(jobs_from_csv(&csv, TraceConfig::small(1)).is_err());
    }
}
