//! Bootstrap resampling of job traces (Figure 12).
//!
//! The paper validates reproducibility by composing ten 10-day traces from
//! the full 15-day trace with bootstrapping. We resample whole days with
//! replacement — preserving intra-day arrival structure and the
//! weekday/weekend signature that explains the low-gain traces the paper
//! calls out (traces that happen to draw two weekends).

use crate::jobgen::JobTrace;
use lyra_core::job::JobId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a `days`-day trace by sampling source days (with replacement)
/// from `base` and concatenating their jobs on a fresh timeline.
///
/// Jobs keep their intra-day submission offsets; ids are renumbered in the
/// new submission order. The resulting trace's `config` reflects the new
/// span but is otherwise inherited.
///
/// # Examples
///
/// ```
/// use lyra_trace::{bootstrap_trace, JobTrace, TraceConfig};
/// let base = JobTrace::generate(TraceConfig::small(1));
/// let resampled = bootstrap_trace(&base, 2, 7);
/// assert_eq!(resampled.config.days, 2);
/// ```
pub fn bootstrap_trace(base: &JobTrace, days: u32, seed: u64) -> JobTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let source_days = base.config.days.max(1);
    let mut jobs = Vec::new();
    for day in 0..days {
        let src = rng.gen_range(0..source_days);
        let lo = f64::from(src) * 86_400.0;
        let hi = lo + 86_400.0;
        for j in &base.jobs {
            if j.submit_time_s >= lo && j.submit_time_s < hi {
                let mut job = j.clone();
                job.submit_time_s = f64::from(day) * 86_400.0 + (j.submit_time_s - lo);
                jobs.push(job);
            }
        }
    }
    jobs.sort_by(|a, b| {
        a.submit_time_s
            .partial_cmp(&b.submit_time_s)
            .expect("no NaN submit times")
    });
    for (i, job) in jobs.iter_mut().enumerate() {
        job.id = JobId(i as u64);
    }
    let mut config = base.config;
    config.days = days;
    config.seed = seed;
    JobTrace { config, jobs }
}

/// Number of weekend source days a bootstrapped trace drew, assuming the
/// base trace starts on a Monday — used to flag Figure 12's low-gain
/// traces.
pub fn weekend_days(trace: &JobTrace) -> u32 {
    // Recover per-day arrival counts; weekend days have visibly lighter
    // load under the generator's intensity model.
    let mut count = 0;
    for day in 0..trace.config.days {
        let lo = f64::from(day) * 86_400.0;
        let hi = lo + 86_400.0;
        let jobs_in_day = trace
            .jobs
            .iter()
            .filter(|j| j.submit_time_s >= lo && j.submit_time_s < hi)
            .count();
        let avg = trace.jobs.len() as f64 / f64::from(trace.config.days.max(1));
        if (jobs_in_day as f64) < 0.75 * avg {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobgen::TraceConfig;

    fn base() -> JobTrace {
        JobTrace::generate(TraceConfig::small(11))
    }

    #[test]
    fn resampled_span_and_order() {
        let b = base();
        let t = bootstrap_trace(&b, 3, 5);
        assert_eq!(t.config.days, 3);
        let horizon = 3.0 * 86_400.0;
        for w in t.jobs.windows(2) {
            assert!(w[0].submit_time_s <= w[1].submit_time_s);
        }
        assert!(t.jobs.iter().all(|j| j.submit_time_s < horizon));
        assert!(t.jobs.iter().enumerate().all(|(i, j)| j.id.0 == i as u64));
    }

    #[test]
    fn deterministic_per_seed() {
        let b = base();
        assert_eq!(bootstrap_trace(&b, 2, 3), bootstrap_trace(&b, 2, 3));
        assert_ne!(bootstrap_trace(&b, 2, 3), bootstrap_trace(&b, 2, 4));
    }

    #[test]
    fn jobs_come_from_base_population() {
        let b = base();
        let t = bootstrap_trace(&b, 2, 9);
        assert!(!t.jobs.is_empty());
        // Every resampled job matches some base job up to id/submit time.
        for j in t.jobs.iter().take(50) {
            assert!(b.jobs.iter().any(|x| {
                x.gpus_per_worker == j.gpus_per_worker
                    && x.demand == j.demand
                    && (x.min_running_time_s - j.min_running_time_s).abs() < 1e-9
            }));
        }
    }

    #[test]
    fn ten_traces_differ() {
        let b = JobTrace::generate(TraceConfig::default());
        let mut sizes = Vec::new();
        for seed in 0..10 {
            let t = bootstrap_trace(&b, 10, seed);
            sizes.push(t.jobs.len());
        }
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max > min, "resampling varies trace volume: {sizes:?}");
    }
}
