//! Seeded samplers for the distributions the trace generators need.
//!
//! Implemented from scratch (Box–Muller for normals, inverse CDF for the
//! exponential, cumulative search for weighted choice) so the crate only
//! depends on `rand`'s uniform source.

use rand::Rng;

/// Samples a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    // Avoid ln(0).
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a normal with the given mean and standard deviation.
pub fn normal<R: Rng>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Samples a log-normal given the *median* and the log-space sigma.
///
/// `ln X ~ N(ln median, sigma²)`, so the median of `X` is exactly
/// `median` and the mean is `median · exp(sigma²/2)`.
///
/// # Examples
///
/// ```
/// use lyra_trace::distributions::log_normal;
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(1);
/// let xs: Vec<f64> = (0..10_000).map(|_| log_normal(&mut rng, 100.0, 1.0)).collect();
/// let mut sorted = xs.clone();
/// sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
/// let median = sorted[5_000];
/// assert!((median / 100.0 - 1.0).abs() < 0.1);
/// ```
pub fn log_normal<R: Rng>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    (median.ln() + sigma * standard_normal(rng)).exp()
}

/// Samples an exponential with the given rate (mean `1/rate`).
pub fn exponential<R: Rng>(rng: &mut R, rate: f64) -> f64 {
    let u: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    -u.ln() / rate
}

/// Picks an index from `weights` proportionally (weights need not sum to
/// one).
///
/// # Panics
///
/// Panics if `weights` is empty or sums to a non-positive value.
pub fn weighted_choice<R: Rng>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must have positive mass");
    let mut x = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn standard_normal_has_zero_mean_unit_variance() {
        let mut r = rng();
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(&mut r, 10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = rng();
        let n = 50_000;
        let mean = (0..n).map(|_| exponential(&mut r, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn log_normal_is_positive_and_heavy_tailed() {
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| log_normal(&mut r, 60.0, 1.5)).collect();
        assert!(xs.iter().all(|&x| x > 0.0));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        // Mean = median · exp(sigma²/2) ≈ 60 · 3.08.
        assert!(mean > 120.0, "heavy tail pulls the mean up: {mean}");
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut r = rng();
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[weighted_choice(&mut r, &[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let frac2 = counts[2] as f64 / 30_000.0;
        assert!((frac2 - 0.7).abs() < 0.02, "frac {frac2}");
    }

    #[test]
    #[should_panic(expected = "positive mass")]
    fn weighted_choice_rejects_zero_mass() {
        let mut r = rng();
        weighted_choice(&mut r, &[0.0, 0.0]);
    }
}
