#![warn(missing_docs)]

//! # lyra-trace
//!
//! Synthetic substitutes for the paper's production traces (§7.1).
//!
//! The paper drives its evaluation with two proprietary traces we cannot
//! ship: a 15-day job trace from a 3,544-GPU training cluster (50,390
//! jobs) and a GPU-utilisation trace from a ~4,160-GPU inference cluster.
//! This crate generates statistical twins of both:
//!
//! * [`jobgen`] — a job-trace generator calibrated to the scheduler-visible
//!   statistics the paper reports: heavy-tailed running times (minutes to
//!   days), a demand mix dominated by small jobs with a fat multi-server
//!   tail, 21 % fungible jobs, ~5 % elastic jobs holding ≈36 % of cluster
//!   resources with ~14.2 h average runtime, diurnal and weekday-weighted
//!   arrivals, and a target average utilisation of ~82 %.
//! * [`inference`] — a diurnal utilisation model matching Figure 1: 42 %
//!   trough before dawn, ~95 % peak for about four hours at night, ~65 %
//!   mean, peak-to-trough ≈ 2.2, with autocorrelated noise and short
//!   traffic bursts whose 5-minute median is ≈2 % of capacity (the origin
//!   of the paper's 2 % headroom rule).
//! * [`bootstrap`] — the ten 10-day resampled traces of Figure 12.
//! * [`io`] — CSV import/export so traces can be inspected and replayed.
//!
//! Everything is seeded and deterministic.

pub mod bootstrap;
pub mod distributions;
pub mod inference;
pub mod io;
pub mod jobgen;

pub use bootstrap::bootstrap_trace;
pub use inference::{InferenceTrace, InferenceTraceConfig};
pub use jobgen::{JobTrace, TraceConfig, TraceStats};
