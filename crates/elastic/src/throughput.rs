//! Throughput scaling of the elastic model families (Figure 3).
//!
//! The paper profiles four models on 8-GPU V100 servers (NVLink within a
//! server, 100G InfiniBand across), doubling the number of 2-GPU workers
//! every five epochs from one worker, and finds all four scale well enough
//! for elastic scheduling. This module provides per-family profiles:
//! single-worker throughput in samples/second and an efficiency knee that
//! captures the mild communication overhead as workers span servers.
//!
//! The exported [`family_curve`] lowers a profile onto a
//! [`ScalingCurve::Table`] that the scheduler's allocation math consumes,
//! and [`figure3_series`] regenerates the figure's time series.

use lyra_core::job::{ModelFamily, ScalingCurve};
use serde::{Deserialize, Serialize};

/// Empirical scaling profile of a model family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Family this profile describes.
    pub family: ModelFamily,
    /// Throughput of one 2-GPU worker, samples per second.
    pub base_throughput: f64,
    /// Units label for the figure ("img/s" or "sequence/s").
    pub unit: &'static str,
    /// Per-doubling efficiency: speedup(2w) = speedup(w) · 2 · eff.
    pub doubling_efficiency: f64,
    /// Workers per server before cross-server communication kicks in.
    pub workers_per_server: u32,
    /// Extra efficiency factor applied beyond one server.
    pub cross_server_efficiency: f64,
}

impl ModelProfile {
    /// The profile of a family, calibrated to Figure 3's axes: ResNet/VGG
    /// in 10³ images/s, BERT/GNMT in 10³ sequences/s, all near-linear up
    /// to 16 workers.
    pub fn of(family: ModelFamily) -> Self {
        match family {
            ModelFamily::ResNet50 => ModelProfile {
                family,
                base_throughput: 1500.0,
                unit: "img/s",
                doubling_efficiency: 0.98,
                workers_per_server: 4,
                cross_server_efficiency: 0.97,
            },
            ModelFamily::Vgg16 => ModelProfile {
                family,
                base_throughput: 520.0,
                unit: "img/s",
                doubling_efficiency: 0.96,
                workers_per_server: 4,
                cross_server_efficiency: 0.95,
            },
            ModelFamily::Bert => ModelProfile {
                family,
                base_throughput: 380.0,
                unit: "sequence/s",
                doubling_efficiency: 0.97,
                workers_per_server: 4,
                cross_server_efficiency: 0.96,
            },
            ModelFamily::Gnmt16 => ModelProfile {
                family,
                base_throughput: 900.0,
                unit: "sequence/s",
                doubling_efficiency: 0.96,
                workers_per_server: 4,
                cross_server_efficiency: 0.95,
            },
            ModelFamily::Generic => ModelProfile {
                family,
                base_throughput: 100.0,
                unit: "samples/s",
                doubling_efficiency: 0.90,
                workers_per_server: 4,
                cross_server_efficiency: 0.90,
            },
        }
    }

    /// Aggregate speedup over one worker with `workers` workers.
    pub fn speedup(&self, workers: u32) -> f64 {
        if workers == 0 {
            return 0.0;
        }
        let doublings = (f64::from(workers)).log2();
        let mut s = f64::from(workers) * self.doubling_efficiency.powf(doublings);
        if workers > self.workers_per_server {
            let cross = (f64::from(workers) / f64::from(self.workers_per_server))
                .log2()
                .max(0.0);
            s *= self.cross_server_efficiency.powf(cross);
        }
        s
    }

    /// Absolute throughput (samples/s) with `workers` workers.
    pub fn throughput(&self, workers: u32) -> f64 {
        self.base_throughput * self.speedup(workers)
    }
}

/// Lowers a family profile onto a [`ScalingCurve::Table`] covering
/// `1..=max_workers` workers.
///
/// # Examples
///
/// ```
/// use lyra_core::job::ModelFamily;
/// use lyra_elastic::family_curve;
/// let curve = family_curve(ModelFamily::ResNet50, 16);
/// // Near-linear: 16 workers deliver well over 13× one worker.
/// assert!(curve.speedup(16) > 13.0);
/// assert!(curve.speedup(16) <= 16.0);
/// ```
pub fn family_curve(family: ModelFamily, max_workers: u32) -> ScalingCurve {
    let profile = ModelProfile::of(family);
    ScalingCurve::Table(
        (1..=max_workers.max(1))
            .map(|w| profile.speedup(w))
            .collect(),
    )
}

/// One point of Figure 3's time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Figure3Point {
    /// Epoch index (x-axis).
    pub epoch: u32,
    /// Workers active during this epoch (doubled every five epochs).
    pub workers: u32,
    /// Throughput in the family's unit (y-axis).
    pub throughput: f64,
}

/// Regenerates one sub-plot of Figure 3: workers double every `stride`
/// epochs starting from one worker, for `epochs` epochs.
pub fn figure3_series(family: ModelFamily, epochs: u32, stride: u32) -> Vec<Figure3Point> {
    let profile = ModelProfile::of(family);
    (0..epochs)
        .map(|epoch| {
            let workers = 1u32 << (epoch / stride.max(1)).min(16);
            Figure3Point {
                epoch: epoch + 1,
                workers,
                throughput: profile.throughput(workers),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const FAMILIES: [ModelFamily; 4] = [
        ModelFamily::ResNet50,
        ModelFamily::Vgg16,
        ModelFamily::Bert,
        ModelFamily::Gnmt16,
    ];

    #[test]
    fn speedup_is_monotone_and_sublinear() {
        for family in FAMILIES {
            let p = ModelProfile::of(family);
            let mut last = 0.0;
            for w in 1..=32u32 {
                let s = p.speedup(w);
                assert!(s > last, "{family:?} speedup not monotone at {w}");
                assert!(s <= f64::from(w) + 1e-9, "{family:?} superlinear at {w}");
                last = s;
            }
        }
    }

    #[test]
    fn figure3_families_scale_well() {
        // §2.2: these models "enjoy good throughput scalability" — at
        // 16 workers every family keeps ≥75 % efficiency.
        for family in FAMILIES {
            let p = ModelProfile::of(family);
            let eff = p.speedup(16) / 16.0;
            assert!(eff > 0.75, "{family:?} efficiency {eff}");
        }
    }

    #[test]
    fn vgg_scales_worst_resnet_best() {
        // VGG's huge dense layers make it the most communication-bound of
        // the four (visible in Figure 3's flattening at high worker
        // counts).
        let worst = ModelProfile::of(ModelFamily::Vgg16).speedup(16);
        let best = ModelProfile::of(ModelFamily::ResNet50).speedup(16);
        assert!(worst < best);
    }

    #[test]
    fn figure3_series_doubles_workers_every_stride() {
        let series = figure3_series(ModelFamily::ResNet50, 30, 5);
        assert_eq!(series.len(), 30);
        assert_eq!(series[0].workers, 1);
        assert_eq!(series[4].workers, 1);
        assert_eq!(series[5].workers, 2);
        assert_eq!(series[25].workers, 32);
        // Throughput jumps at each doubling.
        assert!(series[5].throughput > series[4].throughput * 1.5);
    }

    #[test]
    fn family_curve_matches_profile() {
        let curve = family_curve(ModelFamily::Bert, 8);
        let p = ModelProfile::of(ModelFamily::Bert);
        for w in 1..=8u32 {
            assert!((curve.speedup(w) - p.speedup(w)).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_workers_zero_speedup() {
        assert_eq!(ModelProfile::of(ModelFamily::Bert).speedup(0), 0.0);
        assert_eq!(ModelProfile::of(ModelFamily::Bert).throughput(0), 0.0);
    }

    #[test]
    fn units_match_figure3_axes() {
        assert_eq!(ModelProfile::of(ModelFamily::ResNet50).unit, "img/s");
        assert_eq!(ModelProfile::of(ModelFamily::Vgg16).unit, "img/s");
        assert_eq!(ModelProfile::of(ModelFamily::Bert).unit, "sequence/s");
        assert_eq!(ModelProfile::of(ModelFamily::Gnmt16).unit, "sequence/s");
    }
}
