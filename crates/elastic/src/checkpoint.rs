//! Checkpointing model (§4, Figure 13).
//!
//! "A job with checkpointing would incur overheads to save and load the
//! checkpoint when resuming training later. If the job does not perform
//! checkpointing, … its entire progress is lost." Checkpoints are taken
//! periodically (CheckFreq-style), so a preempted job resumes from the
//! *last completed checkpoint*, not from the exact preemption point — the
//! work since that checkpoint is lost even for checkpointing jobs.

use serde::{Deserialize, Serialize};

/// Periodic checkpointing policy of one job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Work units (reference worker-seconds) between checkpoints.
    pub interval_work: f64,
    /// Seconds to save + restore a checkpoint around a preemption (§7.5
    /// measures the full preempt–resume cycle at 63 s).
    pub overhead_s: f64,
}

impl CheckpointPolicy {
    /// A policy checkpointing every `interval_work` units with the
    /// testbed-measured 63 s overhead.
    pub fn every(interval_work: f64) -> Self {
        CheckpointPolicy {
            interval_work: interval_work.max(1e-9),
            overhead_s: 63.0,
        }
    }

    /// Work preserved when preempted after completing `done` work units:
    /// the last multiple of the interval.
    ///
    /// # Examples
    ///
    /// ```
    /// use lyra_elastic::checkpoint::CheckpointPolicy;
    /// let p = CheckpointPolicy::every(100.0);
    /// assert_eq!(p.preserved_work(250.0), 200.0);
    /// assert_eq!(p.preserved_work(99.9), 0.0);
    /// ```
    pub fn preserved_work(&self, done: f64) -> f64 {
        if done <= 0.0 {
            return 0.0;
        }
        let interval = self.interval_work.max(1e-9);
        ((done / interval).floor() * interval).min(done)
    }

    /// Work lost to the preemption (progress since the last checkpoint).
    pub fn lost_work(&self, done: f64) -> f64 {
        (done - self.preserved_work(done)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_whole_checkpoints_only() {
        let p = CheckpointPolicy::every(60.0);
        assert_eq!(p.preserved_work(0.0), 0.0);
        assert_eq!(p.preserved_work(59.0), 0.0);
        assert_eq!(p.preserved_work(60.0), 60.0);
        assert_eq!(p.preserved_work(185.0), 180.0);
        assert!((p.lost_work(185.0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn negative_and_zero_inputs_are_safe() {
        let p = CheckpointPolicy::every(60.0);
        assert_eq!(p.preserved_work(-5.0), 0.0);
        assert_eq!(p.lost_work(-5.0), 0.0);
    }

    #[test]
    fn degenerate_interval_is_clamped() {
        let p = CheckpointPolicy::every(0.0);
        // Clamped to a positive epsilon: everything is preserved.
        assert!(p.preserved_work(10.0) <= 10.0 + 1e-9);
        assert!(p.preserved_work(10.0) > 9.999);
    }

    #[test]
    fn default_overhead_matches_testbed() {
        assert_eq!(CheckpointPolicy::every(100.0).overhead_s, 63.0);
    }
}
