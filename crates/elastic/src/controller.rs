//! The per-job elastic controller (§6).
//!
//! "We embed a controller process to each elastic job that coordinates the
//! worker join and departure." The controller tracks the desired versus
//! actual worker set, serialises membership changes through a rendezvous
//! barrier, and accounts the pause each change costs — training stalls
//! while gradients re-shard, which the simulator charges against the job's
//! progress.

use serde::{Deserialize, Serialize};

/// Lifecycle of one worker under the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerState {
    /// Container requested, not yet joined the collective.
    Joining,
    /// Participating in training.
    Active,
    /// Asked to leave at the next step boundary.
    Draining,
}

/// Events the controller reports to the scheduler/simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ControllerEvent {
    /// Membership changed; training paused for `pause_s` seconds.
    Rescaled {
        /// Workers after the change.
        workers: u32,
        /// Rendezvous pause charged to the job.
        pause_s: f64,
    },
}

/// Per-job elastic controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElasticController {
    /// Workers currently active.
    active: u32,
    /// Seconds one rendezvous (join/leave barrier) costs.
    rendezvous_pause_s: f64,
    /// Total scaling operations performed.
    ops: u32,
    /// Involuntary membership shrinks (worker/server failures) absorbed.
    failures: u32,
    /// Total pause seconds charged.
    total_pause_s: f64,
}

impl ElasticController {
    /// Creates a controller for a job starting with `workers` workers.
    ///
    /// `rendezvous_pause_s` is the training stall per membership change;
    /// the prototype's rendezvous (container launch + collective re-init)
    /// is in the tens of seconds.
    pub fn new(workers: u32, rendezvous_pause_s: f64) -> Self {
        ElasticController {
            active: workers,
            rendezvous_pause_s,
            ops: 0,
            failures: 0,
            total_pause_s: 0.0,
        }
    }

    /// Workers currently active.
    pub fn active_workers(&self) -> u32 {
        self.active
    }

    /// Number of scaling operations performed so far.
    pub fn scaling_ops(&self) -> u32 {
        self.ops
    }

    /// Total training stall charged so far, seconds.
    pub fn total_pause_s(&self) -> f64 {
        self.total_pause_s
    }

    /// Applies a resize to `target` workers; a no-op returns `None`.
    ///
    /// One rendezvous covers the whole membership change regardless of how
    /// many workers join or leave (the barrier is collective).
    pub fn resize(&mut self, target: u32) -> Option<ControllerEvent> {
        if target == self.active {
            return None;
        }
        let _timing = lyra_obs::span::span("elastic.rendezvous");
        self.active = target;
        self.ops += 1;
        self.total_pause_s += self.rendezvous_pause_s;
        Some(ControllerEvent::Rescaled {
            workers: target,
            pause_s: self.rendezvous_pause_s,
        })
    }

    /// Involuntary membership shrink count absorbed so far.
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// Handles an involuntary worker loss (server crash or container
    /// death): membership drops to `survivors` and one rendezvous is
    /// charged, exactly as for a voluntary resize — the collective must
    /// re-form either way. The loss is tracked separately from planned
    /// scaling.
    pub fn workers_lost(&mut self, survivors: u32) -> Option<ControllerEvent> {
        if survivors >= self.active {
            return None;
        }
        self.failures += 1;
        self.resize(survivors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resize_changes_membership_and_charges_pause() {
        let mut c = ElasticController::new(2, 15.0);
        let ev = c.resize(6).expect("resize happens");
        assert_eq!(
            ev,
            ControllerEvent::Rescaled {
                workers: 6,
                pause_s: 15.0
            }
        );
        assert_eq!(c.active_workers(), 6);
        assert_eq!(c.scaling_ops(), 1);
        assert_eq!(c.total_pause_s(), 15.0);
    }

    #[test]
    fn noop_resize_is_free() {
        let mut c = ElasticController::new(4, 15.0);
        assert!(c.resize(4).is_none());
        assert_eq!(c.scaling_ops(), 0);
        assert_eq!(c.total_pause_s(), 0.0);
    }

    #[test]
    fn scale_in_and_out_both_count() {
        let mut c = ElasticController::new(4, 10.0);
        c.resize(8);
        c.resize(2);
        c.resize(5);
        assert_eq!(c.scaling_ops(), 3);
        assert_eq!(c.total_pause_s(), 30.0);
        assert_eq!(c.active_workers(), 5);
    }

    #[test]
    fn worker_loss_counts_as_failure_and_charges_pause() {
        let mut c = ElasticController::new(4, 15.0);
        let ev = c.workers_lost(3).expect("loss rescales");
        assert_eq!(
            ev,
            ControllerEvent::Rescaled {
                workers: 3,
                pause_s: 15.0
            }
        );
        assert_eq!(c.failures(), 1);
        assert_eq!(c.scaling_ops(), 1);
        // A "loss" that does not shrink membership is ignored.
        assert!(c.workers_lost(3).is_none());
        assert!(c.workers_lost(5).is_none());
        assert_eq!(c.failures(), 1);
    }
}
