//! Local-batch-size adjustment for cross-GPU fungibility (§2.1).
//!
//! A fungible job sized for V100s (32 GB) cannot hold its local batch on a
//! T4 (16 GB). The paper's recipe: shrink the local batch to fit, and add
//! workers so the *global* batch size — and hence model quality — is
//! unchanged. "This is straightforward since we know the GPU memory
//! differences."

use lyra_core::gpu::GpuType;
use serde::{Deserialize, Serialize};

/// The adjusted execution plan of a job moved to a different GPU type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchPlan {
    /// GPU type the plan targets.
    pub gpu: GpuType,
    /// Workers after adjustment.
    pub workers: u32,
    /// Local batch size per worker after adjustment.
    pub local_batch: u32,
    /// Global batch size (invariant across plans of the same job).
    pub global_batch: u32,
}

/// Errors from batch planning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchError {
    /// The local batch cannot shrink enough to preserve the global batch
    /// with integral workers.
    Indivisible {
        /// The global batch that could not be factored.
        global_batch: u32,
    },
    /// Zero workers or zero batch requested.
    Degenerate,
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::Indivisible { global_batch } => {
                write!(
                    f,
                    "global batch {global_batch} not divisible for target GPU"
                )
            }
            BatchError::Degenerate => write!(f, "workers and batch must be positive"),
        }
    }
}

impl std::error::Error for BatchError {}

/// Adjusts a `(workers, local_batch)` plan sized for `reference` onto
/// `target`, preserving the global batch size.
///
/// The local batch shrinks by the memory ratio (the worker multiplier) and
/// the worker count grows by the same factor, so
/// `workers · local_batch` is invariant.
///
/// # Examples
///
/// ```
/// use lyra_core::gpu::GpuType;
/// use lyra_elastic::adjust_batch;
/// // 4 V100 workers at local batch 64 → 8 T4 workers at local batch 32.
/// let plan = adjust_batch(4, 64, GpuType::V100, GpuType::T4).unwrap();
/// assert_eq!(plan.workers, 8);
/// assert_eq!(plan.local_batch, 32);
/// assert_eq!(plan.global_batch, 256);
/// ```
pub fn adjust_batch(
    workers: u32,
    local_batch: u32,
    reference: GpuType,
    target: GpuType,
) -> Result<BatchPlan, BatchError> {
    if workers == 0 || local_batch == 0 {
        return Err(BatchError::Degenerate);
    }
    let global_batch = workers * local_batch;
    let mult = target.worker_multiplier(reference);
    if !local_batch.is_multiple_of(mult) {
        return Err(BatchError::Indivisible { global_batch });
    }
    Ok(BatchPlan {
        gpu: target,
        workers: workers * mult,
        local_batch: local_batch / mult,
        global_batch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_gpu_is_identity() {
        let plan = adjust_batch(4, 32, GpuType::V100, GpuType::V100).unwrap();
        assert_eq!(plan.workers, 4);
        assert_eq!(plan.local_batch, 32);
    }

    #[test]
    fn global_batch_is_invariant() {
        for (w, b) in [(1u32, 64u32), (2, 32), (8, 128)] {
            let plan = adjust_batch(w, b, GpuType::V100, GpuType::T4).unwrap();
            assert_eq!(plan.global_batch, w * b);
            assert_eq!(plan.workers * plan.local_batch, w * b);
        }
    }

    #[test]
    fn upsizing_gpu_keeps_workers() {
        // Moving to a *larger* GPU never multiplies workers.
        let plan = adjust_batch(8, 16, GpuType::T4, GpuType::V100).unwrap();
        assert_eq!(plan.workers, 8);
        assert_eq!(plan.local_batch, 16);
    }

    #[test]
    fn odd_batch_is_rejected() {
        let err = adjust_batch(2, 33, GpuType::V100, GpuType::T4).unwrap_err();
        assert_eq!(err, BatchError::Indivisible { global_batch: 66 });
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert_eq!(
            adjust_batch(0, 32, GpuType::V100, GpuType::T4),
            Err(BatchError::Degenerate)
        );
        assert_eq!(
            adjust_batch(4, 0, GpuType::V100, GpuType::T4),
            Err(BatchError::Degenerate)
        );
    }
}
