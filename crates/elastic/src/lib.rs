#![warn(missing_docs)]

//! # lyra-elastic
//!
//! The elastic-training substrate: everything Lyra assumes exists inside
//! the ML frameworks it schedules (§2.2, §6).
//!
//! * [`throughput`] — empirical throughput-vs-workers curves for the four
//!   model families Figure 3 profiles (ResNet-50, VGG16, BERT, GNMT-16),
//!   exported both as plot series (to regenerate the figure) and as
//!   [`lyra_core::ScalingCurve`] tables the scheduler consumes.
//! * [`batch`] — local-batch-size adjustment when a job moves to a GPU
//!   with less memory, preserving the global batch size by adding workers
//!   (§2.1's fungibility mechanism).
//! * [`controller`] — the per-job controller process that coordinates
//!   worker join and departure during scale-out/in (§6), with rendezvous
//!   latency accounting.
//! * [`hetero`] — the heterogeneous-GPU training model: aggregate
//!   throughput over mixed device groups with the ≤70 %-of-ideal penalty
//!   the paper measures (§7.1, Advanced scenario).

pub mod batch;
pub mod checkpoint;
pub mod controller;
pub mod hetero;
pub mod throughput;

pub use batch::{adjust_batch, BatchPlan};
pub use checkpoint::CheckpointPolicy;
pub use controller::{ControllerEvent, ElasticController, WorkerState};
pub use hetero::{hetero_rate, hetero_rate_scaled, HeteroGroup};
pub use throughput::{family_curve, figure3_series, ModelProfile};
