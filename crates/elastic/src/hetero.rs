//! Heterogeneous-GPU training (§2.1, §7.2).
//!
//! A small fraction of jobs can run on V100 and T4 GPUs *simultaneously*.
//! Workers on different devices progress at different paces, so delicate
//! batch balancing is needed and, per the paper's measurements (and prior
//! work it cites), "heterogeneous training jobs only achieve at most 70 %
//! of the ideal results". The model: aggregate capability-weighted rate
//! scaled by the penalty whenever the device set is actually mixed.

use lyra_core::gpu::{GpuType, SpeedFactors};
use serde::{Deserialize, Serialize};

/// The default fraction of ideal throughput a mixed-device run achieves.
pub const DEFAULT_HETERO_EFFICIENCY: f64 = 0.70;

/// One homogeneous slice of a heterogeneous worker set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeteroGroup {
    /// Device type of this slice.
    pub gpu: GpuType,
    /// Workers running on it.
    pub workers: u32,
}

/// Aggregate service rate (reference-worker equivalents per second) of a
/// possibly-mixed worker set.
///
/// Homogeneous sets pay no penalty; mixed sets are scaled by
/// `efficiency` (≤ 1, the paper's 0.70 by default).
///
/// # Examples
///
/// ```
/// use lyra_core::gpu::GpuType;
/// use lyra_elastic::{hetero_rate, HeteroGroup};
/// let mixed = [
///     HeteroGroup { gpu: GpuType::V100, workers: 2 },
///     HeteroGroup { gpu: GpuType::T4, workers: 3 },
/// ];
/// let ideal = 2.0 + 3.0 / 3.0; // capability-weighted
/// assert!((hetero_rate(&mixed, 0.7) - 0.7 * ideal).abs() < 1e-9);
/// ```
pub fn hetero_rate(groups: &[HeteroGroup], efficiency: f64) -> f64 {
    hetero_rate_scaled(groups, SpeedFactors::default(), efficiency)
}

/// [`hetero_rate`] with per-generation speed factors applied: each
/// group's capability is multiplied by the factor of its GPU type before
/// aggregation. `SpeedFactors::default()` (all 1.0) reproduces
/// [`hetero_rate`] bit-for-bit.
///
/// # Examples
///
/// ```
/// use lyra_core::gpu::{GpuType, SpeedFactors};
/// use lyra_elastic::{hetero_rate_scaled, HeteroGroup};
/// let v100 = [HeteroGroup { gpu: GpuType::V100, workers: 2 }];
/// let speed = SpeedFactors { v100: 1.5, t4: 1.0 };
/// assert!((hetero_rate_scaled(&v100, speed, 0.7) - 3.0).abs() < 1e-9);
/// ```
pub fn hetero_rate_scaled(groups: &[HeteroGroup], speed: SpeedFactors, efficiency: f64) -> f64 {
    let ideal: f64 = groups
        .iter()
        .map(|g| f64::from(g.workers) * g.gpu.capability() * speed.factor(g.gpu))
        .sum();
    let kinds = groups
        .iter()
        .filter(|g| g.workers > 0)
        .map(|g| g.gpu)
        .collect::<std::collections::HashSet<_>>()
        .len();
    if kinds > 1 {
        ideal * efficiency.clamp(0.0, 1.0)
    } else {
        ideal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_sets_pay_no_penalty() {
        let v100 = [HeteroGroup {
            gpu: GpuType::V100,
            workers: 4,
        }];
        assert_eq!(hetero_rate(&v100, 0.7), 4.0);
        let t4 = [HeteroGroup {
            gpu: GpuType::T4,
            workers: 3,
        }];
        assert!((hetero_rate(&t4, 0.7) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_sets_pay_the_penalty() {
        let mixed = [
            HeteroGroup {
                gpu: GpuType::V100,
                workers: 4,
            },
            HeteroGroup {
                gpu: GpuType::T4,
                workers: 6,
            },
        ];
        let ideal = 4.0 + 2.0;
        assert!((hetero_rate(&mixed, DEFAULT_HETERO_EFFICIENCY) - 0.7 * ideal).abs() < 1e-9);
    }

    #[test]
    fn empty_groups_do_not_trigger_penalty() {
        let groups = [
            HeteroGroup {
                gpu: GpuType::V100,
                workers: 4,
            },
            HeteroGroup {
                gpu: GpuType::T4,
                workers: 0,
            },
        ];
        assert_eq!(hetero_rate(&groups, 0.7), 4.0);
    }

    #[test]
    fn efficiency_is_clamped() {
        let mixed = [
            HeteroGroup {
                gpu: GpuType::V100,
                workers: 1,
            },
            HeteroGroup {
                gpu: GpuType::T4,
                workers: 3,
            },
        ];
        assert_eq!(hetero_rate(&mixed, 2.0), 2.0); // clamped to 1.0
        assert_eq!(hetero_rate(&mixed, -1.0), 0.0);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(hetero_rate(&[], 0.7), 0.0);
    }

    #[test]
    fn identity_speed_factors_reproduce_hetero_rate() {
        let mixed = [
            HeteroGroup {
                gpu: GpuType::V100,
                workers: 4,
            },
            HeteroGroup {
                gpu: GpuType::T4,
                workers: 7,
            },
        ];
        assert_eq!(
            hetero_rate(&mixed, 0.7).to_bits(),
            hetero_rate_scaled(&mixed, SpeedFactors::default(), 0.7).to_bits(),
        );
    }

    #[test]
    fn speed_factors_scale_each_generation() {
        let mixed = [
            HeteroGroup {
                gpu: GpuType::V100,
                workers: 2,
            },
            HeteroGroup {
                gpu: GpuType::T4,
                workers: 3,
            },
        ];
        let speed = SpeedFactors { v100: 2.0, t4: 0.5 };
        let ideal = 2.0 * 2.0 + 3.0 * (1.0 / 3.0) * 0.5;
        assert!((hetero_rate_scaled(&mixed, speed, 0.7) - 0.7 * ideal).abs() < 1e-9);
    }
}
