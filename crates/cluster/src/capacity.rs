//! Latency-aware inference capacity estimation (§4's assumption).
//!
//! "We presume that the inference cluster scheduler dynamically estimates
//! the capacity needed to meet the latency, GPU utilization, or other
//! performance targets, based on the predicted inference traffic."
//! This module builds that estimator: the inference fleet is modelled as
//! an M/M/c queue of GPUs (requests arrive Poisson at rate λ, each GPU
//! serves at rate μ) and the estimator finds the smallest GPU count whose
//! **Erlang-C** expected queueing delay meets the latency SLO.
//!
//! The Erlang-B blocking probability is computed with the numerically
//! stable recurrence `B(0) = 1`, `B(k) = a·B(k−1) / (k + a·B(k−1))`, and
//! Erlang C follows as `C = B / (1 − ρ(1 − B))`.

use serde::{Deserialize, Serialize};

/// Erlang-B blocking probability for `servers` servers at offered load
/// `a = λ/μ` (in Erlangs).
///
/// # Examples
///
/// ```
/// use lyra_cluster::capacity::erlang_b;
/// assert!((erlang_b(1, 1.0) - 0.5).abs() < 1e-12);
/// assert!((erlang_b(2, 1.0) - 0.2).abs() < 1e-12);
/// ```
pub fn erlang_b(servers: u32, offered_load: f64) -> f64 {
    if offered_load <= 0.0 {
        return 0.0;
    }
    let mut b = 1.0;
    for k in 1..=servers {
        b = offered_load * b / (f64::from(k) + offered_load * b);
    }
    b
}

/// Erlang-C waiting probability (the chance an arriving request queues)
/// for an M/M/c system; returns 1.0 when the system is unstable
/// (`λ ≥ c·μ`).
///
/// # Examples
///
/// ```
/// use lyra_cluster::capacity::erlang_c;
/// // The textbook value: c = 2, a = 1 Erlang → C = 1/3.
/// assert!((erlang_c(2, 1.0) - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn erlang_c(servers: u32, offered_load: f64) -> f64 {
    if servers == 0 || offered_load >= f64::from(servers) {
        return 1.0;
    }
    let rho = offered_load / f64::from(servers);
    let b = erlang_b(servers, offered_load);
    b / (1.0 - rho * (1.0 - b))
}

/// The latency-driven capacity estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityEstimator {
    /// Requests per second one GPU serves (µ).
    pub service_rate_per_gpu: f64,
    /// Target mean queueing delay, seconds.
    pub mean_wait_slo_s: f64,
}

impl CapacityEstimator {
    /// A typical online-serving profile: 50 requests/s per GPU with a
    /// 10 ms mean-wait budget.
    pub fn typical() -> Self {
        CapacityEstimator {
            service_rate_per_gpu: 50.0,
            mean_wait_slo_s: 0.010,
        }
    }

    /// Expected queueing delay (seconds) with `gpus` GPUs at arrival rate
    /// `lambda` requests/s: `W_q = C / (c·µ − λ)`.
    pub fn mean_wait_s(&self, gpus: u32, lambda: f64) -> f64 {
        let mu = self.service_rate_per_gpu;
        if lambda <= 0.0 {
            return 0.0;
        }
        let capacity = f64::from(gpus) * mu;
        if lambda >= capacity {
            return f64::INFINITY;
        }
        let a = lambda / mu;
        erlang_c(gpus, a) / (capacity - lambda)
    }

    /// Smallest GPU count meeting the mean-wait SLO at arrival rate
    /// `lambda` — the number the inference scheduler reports as "needed".
    ///
    /// # Examples
    ///
    /// ```
    /// use lyra_cluster::capacity::CapacityEstimator;
    /// let est = CapacityEstimator::typical();
    /// let quiet = est.gpus_needed(100.0);
    /// let busy = est.gpus_needed(4000.0);
    /// assert!(busy > quiet);
    /// // Stability requires at least λ/µ GPUs.
    /// assert!(f64::from(busy) > 4000.0 / 50.0);
    /// ```
    pub fn gpus_needed(&self, lambda: f64) -> u32 {
        if lambda <= 0.0 {
            return 0;
        }
        // Start at the stability bound and grow until the SLO holds.
        let mut gpus = (lambda / self.service_rate_per_gpu).floor() as u32 + 1;
        while self.mean_wait_s(gpus, lambda) > self.mean_wait_slo_s {
            gpus += 1;
        }
        gpus
    }

    /// Whole servers needed at arrival rate `lambda`.
    pub fn servers_needed(&self, lambda: f64, gpus_per_server: u32) -> u32 {
        self.gpus_needed(lambda).div_ceil(gpus_per_server.max(1))
    }

    /// Arrival rate that drives a fleet of `total_gpus` to the given
    /// busy-GPU utilisation — converts Figure 1-style utilisation traces
    /// into request-rate traces (`λ = util · c · µ`).
    pub fn rate_for_utilization(&self, utilization: f64, total_gpus: u32) -> f64 {
        utilization.clamp(0.0, 1.0) * f64::from(total_gpus) * self.service_rate_per_gpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erlang_b_textbook_values() {
        assert_eq!(erlang_b(5, 0.0), 0.0);
        assert!((erlang_b(1, 1.0) - 0.5).abs() < 1e-12);
        assert!((erlang_b(2, 1.0) - 0.2).abs() < 1e-12);
        // B(3, 2) = (2·B2)/(3 + 2·B2) with B2 = 0.4: 0.8/3.8.
        assert!((erlang_b(3, 2.0) - 0.8 / 3.8).abs() < 1e-12);
    }

    #[test]
    fn erlang_c_textbook_values_and_bounds() {
        assert!((erlang_c(2, 1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(erlang_c(0, 1.0), 1.0);
        assert_eq!(erlang_c(2, 2.0), 1.0, "unstable system always queues");
        assert_eq!(erlang_c(2, 5.0), 1.0);
        // Waiting probability shrinks as servers grow.
        let mut last = 1.0;
        for c in 2..20u32 {
            let p = erlang_c(c, 1.5);
            assert!(p <= last + 1e-12);
            last = p;
        }
    }

    #[test]
    fn mean_wait_decreases_with_capacity() {
        let est = CapacityEstimator::typical();
        let lambda = 400.0;
        let w9 = est.mean_wait_s(9, lambda);
        let w12 = est.mean_wait_s(12, lambda);
        let w20 = est.mean_wait_s(20, lambda);
        assert!(w9 > w12 && w12 > w20);
        assert_eq!(est.mean_wait_s(8, lambda), f64::INFINITY, "at capacity");
        assert_eq!(est.mean_wait_s(20, 0.0), 0.0);
    }

    #[test]
    fn gpus_needed_meets_the_slo_minimally() {
        let est = CapacityEstimator::typical();
        for lambda in [10.0, 250.0, 1000.0, 5000.0] {
            let c = est.gpus_needed(lambda);
            assert!(est.mean_wait_s(c, lambda) <= est.mean_wait_slo_s);
            if c > 1 {
                assert!(
                    est.mean_wait_s(c - 1, lambda) > est.mean_wait_slo_s,
                    "λ={lambda}: {c} is minimal"
                );
            }
        }
        assert_eq!(est.gpus_needed(0.0), 0);
    }

    #[test]
    fn needed_capacity_has_economies_of_scale() {
        // Larger pools run hotter at the same SLO: needed/λ falls with λ
        // (statistical multiplexing).
        let est = CapacityEstimator::typical();
        let small = f64::from(est.gpus_needed(100.0)) / 100.0;
        let large = f64::from(est.gpus_needed(10_000.0)) / 10_000.0;
        assert!(large < small);
    }

    #[test]
    fn utilization_roundtrip() {
        let est = CapacityEstimator::typical();
        let lambda = est.rate_for_utilization(0.65, 4160);
        assert!((lambda - 0.65 * 4160.0 * 50.0).abs() < 1e-9);
        // Serving that load within SLO needs a bit more than 65 % of the
        // fleet — the headroom the paper's 2 % rule supplements.
        let needed = est.gpus_needed(lambda);
        assert!(needed > (0.65f64 * 4160.0) as u32);
        assert!(needed < 4160);
    }

    #[test]
    fn servers_needed_rounds_up() {
        let est = CapacityEstimator::typical();
        let gpus = est.gpus_needed(430.0);
        assert_eq!(est.servers_needed(430.0, 8), gpus.div_ceil(8));
    }
}
