//! Cluster-wide state: the two management domains, loans and occupancy.
//!
//! The training scheduler controls exactly the servers on its *whitelist*
//! (§6): its dedicated V100 servers plus whatever inference servers are
//! currently on loan. Inference-owned servers never appear in scheduler
//! snapshots. All occupancy mutations validate first and apply atomically,
//! so a buggy policy cannot corrupt the bookkeeping.

use crate::server::Server;
use lyra_core::gpu::{GpuType, SpeedFactors};
use lyra_core::job::JobId;
use lyra_core::reclaim::{JobFootprint, ReclaimRequest, ReclaimServerView};
use lyra_core::snapshot::{PoolKind, ServerGroup, ServerId, ServerView};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Cluster shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Dedicated training servers (the paper: 443).
    pub training_servers: u32,
    /// Inference-owned servers (the paper: 520).
    pub inference_servers: u32,
    /// GPUs per server (8 in both clusters).
    pub gpus_per_server: u32,
    /// Per-generation speed multipliers stamped onto every server of the
    /// matching GPU type; all 1.0 reproduces the paper's environment.
    pub speed: SpeedFactors,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            training_servers: 443,
            inference_servers: 520,
            gpus_per_server: 8,
            speed: SpeedFactors::default(),
        }
    }
}

impl ClusterConfig {
    /// The testbed shape of §7.5: four training and four inference
    /// servers.
    pub fn testbed() -> Self {
        ClusterConfig {
            training_servers: 4,
            inference_servers: 4,
            gpus_per_server: 8,
            speed: SpeedFactors::default(),
        }
    }

    /// Sets the per-generation speed multipliers.
    pub fn with_speed(mut self, speed: SpeedFactors) -> Self {
        self.speed = speed;
        self
    }
}

/// Errors from cluster-state operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The server id does not exist.
    UnknownServer(ServerId),
    /// The server is not under training-scheduler control.
    NotWhitelisted(ServerId),
    /// The server is not currently on loan.
    NotLoaned(ServerId),
    /// The server is down (crashed) and cannot take part in the
    /// operation.
    ServerDown(ServerId),
    /// A loaned server cannot be returned while occupied.
    Occupied(ServerId),
    /// An occupancy mutation would overflow or underflow a server.
    Occupancy(String),
    /// Not enough idle inference servers to loan.
    InsufficientLoanable {
        /// Servers requested.
        requested: u32,
        /// Servers actually available.
        available: u32,
    },
    /// The state failed a consistency audit (see [`ClusterState::audit`]).
    AuditViolation(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::UnknownServer(s) => write!(f, "unknown {s}"),
            ClusterError::NotWhitelisted(s) => write!(f, "{s} is not whitelisted"),
            ClusterError::NotLoaned(s) => write!(f, "{s} is not on loan"),
            ClusterError::ServerDown(s) => write!(f, "{s} is down"),
            ClusterError::Occupied(s) => write!(f, "{s} still hosts workers"),
            ClusterError::Occupancy(msg) => write!(f, "occupancy violation: {msg}"),
            ClusterError::InsufficientLoanable {
                requested,
                available,
            } => write!(
                f,
                "asked to loan {requested} servers, only {available} idle"
            ),
            ClusterError::AuditViolation(msg) => write!(f, "audit violation: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Cluster-wide footprint of one running job: the GPUs it holds on each
/// hosting server (any pool). Maintained eagerly by every occupancy
/// mutator so reclaim-request assembly never rescans the whole cluster.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
struct JobOccupancy {
    /// GPUs held per hosting server; entries are removed at zero, so
    /// `hosts.len()` is the paper's `servers(j)` denominator.
    hosts: BTreeMap<ServerId, u32>,
    /// Total GPUs across all hosts (the sum of `hosts` values).
    gpus: u32,
}

/// The whole cluster as the training scheduler and orchestrator see it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterState {
    /// Shape the state was built with.
    pub config: ClusterConfig,
    servers: BTreeMap<ServerId, Server>,
    whitelist: BTreeSet<ServerId>,
    loaned: BTreeSet<ServerId>,
    /// Derived index: the loaned servers currently hosting no workers —
    /// exactly the ones eligible for a prompt return. Kept in lockstep by
    /// every mutator (checked by [`ClusterState::audit`]) so the
    /// scheduler's per-epoch surplus check is O(idle) instead of a walk
    /// over the whole loan ledger.
    idle_loaned: BTreeSet<ServerId>,
    /// Servers currently crashed: off the whitelist, off the loan ledger,
    /// and ineligible for loans until they recover.
    down: BTreeSet<ServerId>,
    /// Derived index: every running job's cluster-wide footprint. Updated
    /// on launch, scale, preemption, vacate and crash transitions (checked
    /// by [`ClusterState::audit`]) so [`ClusterState::reclaim_request`]
    /// assembles footprints in O(loaned servers + their jobs) instead of a
    /// full-cluster scan, and [`ClusterState::evict_job`] touches only the
    /// servers actually hosting the job.
    occupancy: BTreeMap<JobId, JobOccupancy>,
    /// Derived index: `(used, total)` GPUs across whitelisted Training
    /// servers. Kept in lockstep by every mutator (checked by
    /// [`ClusterState::audit`]) so [`ClusterState::gpu_usage`] — on the
    /// scheduler's per-epoch loan-demand path — is O(1) instead of a
    /// whitelist walk.
    usage_training: (u32, u32),
    /// Same as `usage_training` for whitelisted OnLoan servers.
    usage_on_loan: (u32, u32),
}

impl ClusterState {
    /// Builds the cluster: training servers get ids `0..T`, inference
    /// servers `T..T+I`.
    pub fn new(config: ClusterConfig) -> Self {
        let mut servers = BTreeMap::new();
        let mut whitelist = BTreeSet::new();
        for i in 0..config.training_servers {
            let s = Server::new(i, GpuType::V100, config.gpus_per_server, PoolKind::Training)
                .with_speed_factor(config.speed.factor(GpuType::V100));
            whitelist.insert(s.id);
            servers.insert(s.id, s);
        }
        for i in 0..config.inference_servers {
            let s = Server::new(
                config.training_servers + i,
                GpuType::T4,
                config.gpus_per_server,
                PoolKind::OnLoan,
            )
            .with_speed_factor(config.speed.factor(GpuType::T4));
            servers.insert(s.id, s);
        }
        ClusterState {
            servers,
            whitelist,
            loaned: BTreeSet::new(),
            idle_loaned: BTreeSet::new(),
            down: BTreeSet::new(),
            occupancy: BTreeMap::new(),
            usage_training: (0, config.training_servers * config.gpus_per_server),
            usage_on_loan: (0, 0),
            config,
        }
    }

    /// The mutable usage counter of `pool`.
    fn usage_mut(&mut self, pool: PoolKind) -> &mut (u32, u32) {
        match pool {
            PoolKind::Training => &mut self.usage_training,
            PoolKind::OnLoan => &mut self.usage_on_loan,
        }
    }

    /// Records `gpus` of `job` landing on `server` in the footprint index.
    fn occupancy_add(&mut self, job: JobId, server: ServerId, gpus: u32) {
        if gpus == 0 {
            return;
        }
        let entry = self.occupancy.entry(job).or_default();
        *entry.hosts.entry(server).or_insert(0) += gpus;
        entry.gpus += gpus;
    }

    /// Records `gpus` of `job` leaving `server` in the footprint index,
    /// dropping host entries at zero and the job once it runs nowhere.
    fn occupancy_remove(&mut self, job: JobId, server: ServerId, gpus: u32) {
        if gpus == 0 {
            return;
        }
        if let Some(entry) = self.occupancy.get_mut(&job) {
            if let Some(held) = entry.hosts.get_mut(&server) {
                *held = held.saturating_sub(gpus);
                if *held == 0 {
                    entry.hosts.remove(&server);
                }
            }
            entry.gpus = entry.gpus.saturating_sub(gpus);
            if entry.hosts.is_empty() {
                self.occupancy.remove(&job);
            }
        }
    }

    /// Loaned servers currently hosting no workers, ascending — the ones
    /// eligible for [`ClusterState::return_servers`] right now. O(idle).
    pub fn idle_loaned_ids(&self) -> impl Iterator<Item = ServerId> + '_ {
        self.idle_loaned.iter().copied()
    }

    /// The scheduler-facing views of all whitelisted servers.
    pub fn server_views(&self) -> Vec<ServerView> {
        self.whitelist
            .iter()
            .filter_map(|id| self.servers.get(id).map(Server::view))
            .collect()
    }

    /// Access one server.
    pub fn server(&self, id: ServerId) -> Option<&Server> {
        self.servers.get(&id)
    }

    /// Ids of servers currently on loan, ascending.
    pub fn loaned_ids(&self) -> Vec<ServerId> {
        self.loaned.iter().copied().collect()
    }

    /// Number of servers currently on loan.
    pub fn loaned_count(&self) -> u32 {
        self.loaned.len() as u32
    }

    /// Whether `id` is on loan to training.
    pub fn is_loaned(&self, id: ServerId) -> bool {
        self.loaned.contains(&id)
    }

    /// `(used, total)` GPUs across whitelisted servers of `pool` — O(1)
    /// from the eagerly-maintained counters.
    pub fn gpu_usage(&self, pool: PoolKind) -> (u32, u32) {
        match pool {
            PoolKind::Training => self.usage_training,
            PoolKind::OnLoan => self.usage_on_loan,
        }
    }

    /// GPUs currently used by workers on loaned *Flexible*-group
    /// servers — the capacity that §5.3 can hand back preemption-free.
    /// Telemetry samples this per epoch as the `flexible` slice of the
    /// utilization split.
    pub fn flexible_gpu_usage(&self) -> u32 {
        self.loaned
            .iter()
            .filter_map(|id| self.servers.get(id))
            .filter(|s| s.group == ServerGroup::Flexible)
            .map(Server::used_gpus)
            .sum()
    }

    /// Fragmentation index over the whitelisted servers: the fraction
    /// of free GPUs stranded on *partially occupied* servers, `0.0`
    /// (every free GPU sits on an empty server — gang-friendly) to
    /// `1.0` (all free capacity is slivers no full-server gang fits
    /// in). `0.0` when nothing is free.
    pub fn fragmentation_index(&self) -> f64 {
        let mut free_total = 0u32;
        let mut free_on_empty = 0u32;
        for id in &self.whitelist {
            let Some(s) = self.servers.get(id) else {
                continue;
            };
            let free = s.free_gpus();
            free_total += free;
            if s.is_empty() {
                free_on_empty += free;
            }
        }
        if free_total == 0 {
            0.0
        } else {
            1.0 - f64::from(free_on_empty) / f64::from(free_total)
        }
    }

    /// Whether `id` is currently down (crashed).
    pub fn is_down(&self, id: ServerId) -> bool {
        self.down.contains(&id)
    }

    /// Ids of servers currently down, ascending.
    pub fn down_ids(&self) -> Vec<ServerId> {
        self.down.iter().copied().collect()
    }

    /// Crashes a server: every worker on it is lost, it leaves the
    /// whitelist and the loan ledger, and it stays ineligible for loans
    /// until [`Self::recover_server`]. Returns the `(job, gpus)` pairs
    /// that were running there.
    pub fn crash_server(&mut self, id: ServerId) -> Result<Vec<(JobId, u32)>, ClusterError> {
        if self.down.contains(&id) {
            return Err(ClusterError::ServerDown(id));
        }
        let s = self
            .servers
            .get_mut(&id)
            .ok_or(ClusterError::UnknownServer(id))?;
        let victims: Vec<(JobId, u32)> = s.jobs().collect();
        let (pool, total) = (s.pool, s.total_gpus);
        for (job, _) in &victims {
            s.evict(*job);
        }
        for &(job, gpus) in &victims {
            self.occupancy_remove(job, id, gpus);
        }
        if self.whitelist.remove(&id) {
            let victim_gpus: u32 = victims.iter().map(|&(_, g)| g).sum();
            let u = self.usage_mut(pool);
            u.0 -= victim_gpus;
            u.1 -= total;
        }
        self.loaned.remove(&id);
        self.idle_loaned.remove(&id);
        self.down.insert(id);
        self.debug_audit();
        Ok(victims)
    }

    /// Brings a crashed server back: dedicated training servers rejoin
    /// the whitelist immediately; inference-owned servers return to the
    /// inference pool and become loanable again.
    pub fn recover_server(&mut self, id: ServerId) -> Result<(), ClusterError> {
        if !self.down.remove(&id) {
            return Err(ClusterError::UnknownServer(id));
        }
        let s = self
            .servers
            .get_mut(&id)
            .ok_or(ClusterError::UnknownServer(id))?;
        s.group = ServerGroup::Unassigned;
        let total = s.total_gpus;
        if s.gpu_type == GpuType::V100 {
            s.pool = PoolKind::Training;
            // Down servers host no workers, so only the capacity returns.
            if self.whitelist.insert(id) {
                self.usage_training.1 += total;
            }
        }
        self.debug_audit();
        Ok(())
    }

    /// Audits the bookkeeping invariants and returns a typed error on the
    /// first violation:
    ///
    /// * per-server GPU accounting never exceeds capacity;
    /// * the loan ledger is a subset of the whitelist and only ever holds
    ///   inference-owned (T4) servers;
    /// * down servers are neither whitelisted nor loaned, and host no
    ///   workers;
    /// * no orphaned assignments: servers outside the whitelist host no
    ///   workers.
    ///
    /// Release builds call this explicitly where they want degradation
    /// instead of a crash; debug builds additionally run it after every
    /// mutation (via `debug_audit`) so tests fail fast at the corrupting
    /// operation.
    pub fn audit(&self) -> Result<(), ClusterError> {
        let violation = |msg: String| Err(ClusterError::AuditViolation(msg));
        for s in self.servers.values() {
            if s.used_gpus() > s.total_gpus {
                return violation(format!(
                    "{}: {} GPUs used of {}",
                    s.id,
                    s.used_gpus(),
                    s.total_gpus
                ));
            }
        }
        for id in &self.whitelist {
            if !self.servers.contains_key(id) {
                return violation(format!("whitelisted {id} does not exist"));
            }
        }
        for id in &self.loaned {
            if !self.whitelist.contains(id) {
                return violation(format!("loaned {id} is not whitelisted"));
            }
            match self.servers.get(id) {
                Some(s) if s.gpu_type != GpuType::T4 => {
                    return violation(format!("loaned {id} is a dedicated training server"));
                }
                Some(_) => {}
                None => return violation(format!("loaned {id} does not exist")),
            }
        }
        for id in &self.down {
            if self.whitelist.contains(id) {
                return violation(format!("down {id} is still whitelisted"));
            }
            if self.loaned.contains(id) {
                return violation(format!("down {id} is still on the loan ledger"));
            }
            if self.servers.get(id).is_some_and(|s| !s.is_empty()) {
                return violation(format!("down {id} still hosts workers"));
            }
        }
        for s in self.servers.values() {
            if !self.whitelist.contains(&s.id) && !s.is_empty() {
                return violation(format!(
                    "{} hosts workers but is outside the whitelist",
                    s.id
                ));
            }
        }
        for id in &self.loaned {
            let empty = self.servers.get(id).is_some_and(|s| s.is_empty());
            if empty != self.idle_loaned.contains(id) {
                return violation(format!(
                    "idle-loan index out of lockstep for {id} (empty: {empty})"
                ));
            }
        }
        if let Some(id) = self.idle_loaned.difference(&self.loaned).next() {
            return violation(format!("idle-loan index holds non-loaned {id}"));
        }
        // The job-footprint index must equal what a full-cluster rebuild
        // produces — every mutator keeps it in lockstep.
        let mut rebuilt: BTreeMap<JobId, JobOccupancy> = BTreeMap::new();
        for s in self.servers.values() {
            for (job, gpus) in s.jobs() {
                let entry = rebuilt.entry(job).or_default();
                entry.hosts.insert(s.id, gpus);
                entry.gpus += gpus;
            }
        }
        if rebuilt != self.occupancy {
            return violation("job-footprint index out of lockstep".to_string());
        }
        // The pool GPU-usage counters must equal a whitelist walk.
        let mut training = (0u32, 0u32);
        let mut on_loan = (0u32, 0u32);
        for id in &self.whitelist {
            let Some(s) = self.servers.get(id) else {
                continue;
            };
            let slot = match s.pool {
                PoolKind::Training => &mut training,
                PoolKind::OnLoan => &mut on_loan,
            };
            slot.0 += s.used_gpus();
            slot.1 += s.total_gpus;
        }
        if (training, on_loan) != (self.usage_training, self.usage_on_loan) {
            return violation(format!(
                "pool GPU-usage counters out of lockstep: training {:?} vs {:?}, \
                 on-loan {:?} vs {:?}",
                self.usage_training, training, self.usage_on_loan, on_loan
            ));
        }
        Ok(())
    }

    /// In debug builds, panics at the corrupting mutation instead of
    /// letting an inconsistency propagate. No-op in release.
    #[inline]
    fn debug_audit(&self) {
        #[cfg(debug_assertions)]
        if let Err(e) = self.audit() {
            panic!("cluster-state {e}");
        }
    }

    /// Loans `n` idle inference-owned servers to training, adding them to
    /// the whitelist. Returns the loaned ids.
    pub fn loan(&mut self, n: u32) -> Result<Vec<ServerId>, ClusterError> {
        let candidates: Vec<ServerId> = self
            .servers
            .values()
            .filter(|s| {
                s.gpu_type == GpuType::T4
                    && !self.whitelist.contains(&s.id)
                    && !self.down.contains(&s.id)
                    && s.is_empty()
            })
            .map(|s| s.id)
            .take(n as usize)
            .collect();
        if (candidates.len() as u32) < n {
            return Err(ClusterError::InsufficientLoanable {
                requested: n,
                available: candidates.len() as u32,
            });
        }
        for id in &candidates {
            self.whitelist.insert(*id);
            self.loaned.insert(*id);
            // Freshly loaned servers arrive empty.
            self.idle_loaned.insert(*id);
            if let Some(s) = self.servers.get_mut(id) {
                s.pool = PoolKind::OnLoan;
                s.group = ServerGroup::Unassigned;
                let total = s.total_gpus;
                self.usage_on_loan.1 += total;
            }
        }
        self.debug_audit();
        Ok(candidates)
    }

    /// Returns loaned servers to the inference cluster. Each must be on
    /// loan and empty.
    pub fn return_servers(&mut self, ids: &[ServerId]) -> Result<(), ClusterError> {
        for id in ids {
            let s = self
                .servers
                .get(id)
                .ok_or(ClusterError::UnknownServer(*id))?;
            if !self.loaned.contains(id) {
                return Err(ClusterError::NotLoaned(*id));
            }
            if !s.is_empty() {
                return Err(ClusterError::Occupied(*id));
            }
        }
        for id in ids {
            let total = self.servers.get(id).map_or(0, |s| s.total_gpus);
            // Returned servers are validated empty above, so only the
            // capacity leaves the counter.
            if self.whitelist.remove(id) {
                self.usage_on_loan.1 -= total;
            }
            self.loaned.remove(id);
            self.idle_loaned.remove(id);
        }
        self.debug_audit();
        Ok(())
    }

    /// Allocates workers of `job` per the assignment, labelling on-loan
    /// servers with `group` when unassigned. Validates every leg first;
    /// applies atomically.
    pub fn allocate(
        &mut self,
        job: JobId,
        assignment: &[(ServerId, u32)],
        gpus_per_worker: u32,
        group: ServerGroup,
    ) -> Result<(), ClusterError> {
        for (id, workers) in assignment {
            let s = self
                .servers
                .get(id)
                .ok_or(ClusterError::UnknownServer(*id))?;
            if !self.whitelist.contains(id) {
                return Err(ClusterError::NotWhitelisted(*id));
            }
            let need = workers * gpus_per_worker;
            if need > s.free_gpus() {
                return Err(ClusterError::Occupancy(format!(
                    "{id}: need {need}, free {}",
                    s.free_gpus()
                )));
            }
        }
        for (id, workers) in assignment {
            let gpus = workers * gpus_per_worker;
            let s = self.servers.get_mut(id).expect("validated above");
            s.allocate(job, gpus).map_err(ClusterError::Occupancy)?;
            if s.pool == PoolKind::OnLoan && s.group == ServerGroup::Unassigned {
                s.group = group;
            }
            let pool = s.pool;
            self.occupancy_add(job, *id, gpus);
            self.usage_mut(pool).0 += gpus;
            // No-op unless the server was an idle loaner.
            self.idle_loaned.remove(id);
        }
        self.debug_audit();
        Ok(())
    }

    /// Releases workers of `job` per the assignment (scale-in). Validates
    /// first; applies atomically.
    pub fn release(
        &mut self,
        job: JobId,
        assignment: &[(ServerId, u32)],
        gpus_per_worker: u32,
    ) -> Result<(), ClusterError> {
        for (id, workers) in assignment {
            let s = self
                .servers
                .get(id)
                .ok_or(ClusterError::UnknownServer(*id))?;
            if s.gpus_of(job) < workers * gpus_per_worker {
                return Err(ClusterError::Occupancy(format!(
                    "{id}: {job} holds {} GPUs, releasing {}",
                    s.gpus_of(job),
                    workers * gpus_per_worker
                )));
            }
        }
        for (id, workers) in assignment {
            let gpus = workers * gpus_per_worker;
            let s = self.servers.get_mut(id).expect("validated above");
            s.release(job, gpus).map_err(ClusterError::Occupancy)?;
            let now_empty = s.is_empty();
            let pool = s.pool;
            self.occupancy_remove(job, *id, gpus);
            self.usage_mut(pool).0 -= gpus;
            if now_empty && self.loaned.contains(id) {
                self.idle_loaned.insert(*id);
            }
        }
        self.debug_audit();
        Ok(())
    }

    /// Vacates every allocation on one server (flexible-group release),
    /// returning the `(job, gpus)` pairs that were freed.
    pub fn vacate_server(&mut self, id: ServerId) -> Result<Vec<(JobId, u32)>, ClusterError> {
        let s = self
            .servers
            .get_mut(&id)
            .ok_or(ClusterError::UnknownServer(id))?;
        let jobs: Vec<(JobId, u32)> = s.jobs().collect();
        let pool = s.pool;
        for (job, _) in &jobs {
            s.evict(*job);
        }
        for &(job, gpus) in &jobs {
            self.occupancy_remove(job, id, gpus);
        }
        // Occupied servers are always whitelisted (audited invariant),
        // so the freed GPUs leave the pool counter; an empty server
        // frees nothing.
        let freed: u32 = jobs.iter().map(|&(_, g)| g).sum();
        self.usage_mut(pool).0 -= freed;
        if self.loaned.contains(&id) {
            self.idle_loaned.insert(id);
        }
        self.debug_audit();
        Ok(jobs)
    }

    /// Evicts `job` everywhere (preemption). Returns `(server, gpus)`
    /// freed. O(hosting servers) via the footprint index.
    pub fn evict_job(&mut self, job: JobId) -> Vec<(ServerId, u32)> {
        let hosts: Vec<ServerId> = self
            .occupancy
            .get(&job)
            .map(|o| o.hosts.keys().copied().collect())
            .unwrap_or_default();
        let mut freed = Vec::new();
        for &sid in &hosts {
            let Some(s) = self.servers.get_mut(&sid) else {
                continue;
            };
            let g = s.evict(job);
            let pool = s.pool;
            if g > 0 {
                freed.push((sid, g));
                self.usage_mut(pool).0 -= g;
            }
        }
        self.occupancy.remove(&job);
        for &(sid, _) in &freed {
            if self.loaned.contains(&sid)
                && self.servers.get(&sid).is_some_and(|s| s.is_empty())
            {
                self.idle_loaned.insert(sid);
            }
        }
        self.debug_audit();
        freed
    }

    /// Servers on loan whose group is `Flexible`, with their jobs — the
    /// candidates for §5.3's preemption-free release.
    pub fn flexible_group_servers(&self) -> Vec<(ServerId, Vec<(JobId, u32)>)> {
        self.loaned
            .iter()
            .filter_map(|id| {
                let s = self.servers.get(id)?;
                (s.group == ServerGroup::Flexible).then(|| (s.id, s.jobs().collect()))
            })
            .collect()
    }

    /// Builds the §4 reclaim request over the currently loaned servers.
    ///
    /// Footprints count each job's servers and GPUs cluster-wide, so the
    /// preemption-cost denominators include training-side placements. Runs
    /// in O(loaned servers + their jobs): footprints come straight from the
    /// job-occupancy index instead of a scan over every server.
    pub fn reclaim_request(&self, need: usize) -> ReclaimRequest {
        let servers: Vec<ReclaimServerView> = self
            .loaned
            .iter()
            .filter_map(|id| {
                let s = self.servers.get(id)?;
                Some(ReclaimServerView {
                    id: s.id,
                    total_gpus: s.total_gpus,
                    jobs: s.jobs().collect(),
                })
            })
            .collect();
        let jobs: Vec<JobFootprint> = servers
            .iter()
            .flat_map(|s| s.jobs.iter().map(|(j, _)| *j))
            .collect::<BTreeSet<JobId>>()
            .into_iter()
            .map(|id| {
                let occ = self.occupancy.get(&id);
                JobFootprint {
                    id,
                    total_servers: occ.map_or(0, |o| o.hosts.len() as u32),
                    total_gpus: occ.map_or(0, |o| o.gpus),
                }
            })
            .collect();
        let request = ReclaimRequest {
            servers,
            jobs,
            need,
        };
        // The engine must never hand the reclaim heuristics a request with
        // duplicate candidates or duplicate per-server job entries.
        debug_assert!(
            request.validate().is_ok(),
            "engine-built reclaim request failed validation: {:?}",
            request.validate()
        );
        request
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ClusterState {
        ClusterState::new(ClusterConfig {
            training_servers: 2,
            inference_servers: 3,
            gpus_per_server: 8,
            speed: SpeedFactors::default(),
        })
    }

    #[test]
    fn initial_whitelist_is_training_only() {
        let c = small();
        let views = c.server_views();
        assert_eq!(views.len(), 2);
        assert!(views.iter().all(|v| v.pool == PoolKind::Training));
        assert_eq!(c.gpu_usage(PoolKind::Training), (0, 16));
        assert_eq!(c.gpu_usage(PoolKind::OnLoan), (0, 0));
    }

    #[test]
    fn loan_and_return_roundtrip() {
        let mut c = small();
        let loaned = c.loan(2).expect("2 of 3 idle");
        assert_eq!(loaned.len(), 2);
        assert_eq!(c.loaned_count(), 2);
        assert_eq!(c.server_views().len(), 4);
        assert_eq!(c.gpu_usage(PoolKind::OnLoan), (0, 16));
        c.return_servers(&loaned).expect("all empty");
        assert_eq!(c.loaned_count(), 0);
        assert_eq!(c.server_views().len(), 2);
    }

    #[test]
    fn loan_rejects_over_request() {
        let mut c = small();
        match c.loan(4) {
            Err(ClusterError::InsufficientLoanable {
                requested: 4,
                available: 3,
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.loaned_count(), 0, "failed loan changes nothing");
    }

    #[test]
    fn cannot_return_occupied_or_unloaned() {
        let mut c = small();
        let loaned = c.loan(1).unwrap();
        c.allocate(JobId(1), &[(loaned[0], 2)], 2, ServerGroup::Base)
            .unwrap();
        assert_eq!(
            c.return_servers(&loaned),
            Err(ClusterError::Occupied(loaned[0]))
        );
        assert_eq!(
            c.return_servers(&[ServerId(0)]),
            Err(ClusterError::NotLoaned(ServerId(0)))
        );
    }

    #[test]
    fn fragmentation_index_tracks_stranded_free_gpus() {
        let mut c = small();
        // Empty cluster: all free GPUs sit on empty servers.
        assert_eq!(c.fragmentation_index(), 0.0);
        // Half-fill one server: its 4 free GPUs are stranded, the other
        // server's 8 are not → 4/12 fragmented.
        c.allocate(JobId(1), &[(ServerId(0), 4)], 1, ServerGroup::Base)
            .unwrap();
        assert!((c.fragmentation_index() - 4.0 / 12.0).abs() < 1e-12);
        // Fill everything: no free GPUs at all → defined as 0.
        c.allocate(
            JobId(2),
            &[(ServerId(0), 4), (ServerId(1), 8)],
            1,
            ServerGroup::Base,
        )
        .unwrap();
        assert_eq!(c.fragmentation_index(), 0.0);
    }

    #[test]
    fn flexible_gpu_usage_counts_only_flexible_loaned_workers() {
        let mut c = small();
        let loaned = c.loan(2).unwrap();
        assert_eq!(c.flexible_gpu_usage(), 0);
        c.allocate(JobId(1), &[(loaned[0], 3)], 1, ServerGroup::Flexible)
            .unwrap();
        c.allocate(JobId(2), &[(loaned[1], 2)], 1, ServerGroup::Base)
            .unwrap();
        // Training-side placement never counts.
        c.allocate(JobId(3), &[(ServerId(0), 4)], 1, ServerGroup::Flexible)
            .unwrap();
        assert_eq!(c.flexible_gpu_usage(), 3);
    }

    #[test]
    fn allocate_is_atomic_across_servers() {
        let mut c = small();
        // First leg fits, second overflows → nothing applies.
        let a = [(ServerId(0), 2u32), (ServerId(1), 5u32)];
        let err = c.allocate(JobId(1), &a, 2, ServerGroup::Base);
        assert!(matches!(err, Err(ClusterError::Occupancy(_))));
        assert_eq!(c.gpu_usage(PoolKind::Training).0, 0);
    }

    #[test]
    fn allocate_requires_whitelist() {
        let mut c = small();
        // Server 2 is inference-owned, not loaned.
        let err = c.allocate(JobId(1), &[(ServerId(2), 1)], 1, ServerGroup::Base);
        assert_eq!(err, Err(ClusterError::NotWhitelisted(ServerId(2))));
    }

    #[test]
    fn release_and_evict() {
        let mut c = small();
        c.allocate(
            JobId(1),
            &[(ServerId(0), 2), (ServerId(1), 1)],
            2,
            ServerGroup::Base,
        )
        .unwrap();
        c.release(JobId(1), &[(ServerId(0), 1)], 2).unwrap();
        assert_eq!(c.gpu_usage(PoolKind::Training).0, 4);
        let freed = c.evict_job(JobId(1));
        assert_eq!(freed, vec![(ServerId(0), 2), (ServerId(1), 2)]);
        assert_eq!(c.gpu_usage(PoolKind::Training).0, 0);
    }

    #[test]
    fn release_validates_holdings() {
        let mut c = small();
        c.allocate(JobId(1), &[(ServerId(0), 1)], 2, ServerGroup::Base)
            .unwrap();
        let err = c.release(JobId(1), &[(ServerId(0), 2)], 2);
        assert!(matches!(err, Err(ClusterError::Occupancy(_))));
        assert_eq!(c.gpu_usage(PoolKind::Training).0, 2, "unchanged");
    }

    #[test]
    fn group_labels_follow_allocations() {
        let mut c = small();
        let loaned = c.loan(2).unwrap();
        c.allocate(JobId(1), &[(loaned[0], 1)], 1, ServerGroup::Flexible)
            .unwrap();
        assert_eq!(c.server(loaned[0]).unwrap().group, ServerGroup::Flexible);
        assert_eq!(
            c.flexible_group_servers(),
            vec![(loaned[0], vec![(JobId(1), 1)])]
        );
        // Releasing everything resets the label.
        c.release(JobId(1), &[(loaned[0], 1)], 1).unwrap();
        assert!(c.flexible_group_servers().is_empty());
    }

    #[test]
    fn reclaim_request_footprints_span_pools() {
        let mut c = small();
        let loaned = c.loan(1).unwrap();
        // Job 1 spans a training server and the loaned server.
        c.allocate(
            JobId(1),
            &[(ServerId(0), 1), (loaned[0], 1)],
            4,
            ServerGroup::Base,
        )
        .unwrap();
        let req = c.reclaim_request(1);
        assert_eq!(req.need, 1);
        assert_eq!(req.servers.len(), 1);
        assert_eq!(req.jobs.len(), 1);
        assert_eq!(req.jobs[0].total_servers, 2);
        assert_eq!(req.jobs[0].total_gpus, 8);
        req.validate().expect("request is consistent");
    }

    #[test]
    fn crash_evicts_and_delists() {
        let mut c = small();
        c.allocate(JobId(1), &[(ServerId(0), 2)], 2, ServerGroup::Base)
            .unwrap();
        let victims = c.crash_server(ServerId(0)).expect("crashes");
        assert_eq!(victims, vec![(JobId(1), 4)]);
        assert!(c.is_down(ServerId(0)));
        assert_eq!(c.down_ids(), vec![ServerId(0)]);
        assert_eq!(c.server_views().len(), 1, "left the whitelist");
        // Down servers reject double-crash and cannot take allocations.
        assert_eq!(
            c.crash_server(ServerId(0)),
            Err(ClusterError::ServerDown(ServerId(0)))
        );
        assert!(matches!(
            c.allocate(JobId(2), &[(ServerId(0), 1)], 1, ServerGroup::Base),
            Err(ClusterError::NotWhitelisted(_))
        ));
    }

    #[test]
    fn crashed_training_server_recovers_to_whitelist() {
        let mut c = small();
        c.crash_server(ServerId(0)).unwrap();
        c.recover_server(ServerId(0)).expect("recovers");
        assert!(!c.is_down(ServerId(0)));
        assert_eq!(c.server_views().len(), 2);
        assert!(matches!(
            c.recover_server(ServerId(0)),
            Err(ClusterError::UnknownServer(_))
        ));
    }

    #[test]
    fn crashed_loaned_server_recovers_to_inference_pool() {
        let mut c = small();
        let loaned = c.loan(1).unwrap();
        c.allocate(JobId(1), &[(loaned[0], 1)], 2, ServerGroup::Flexible)
            .unwrap();
        let victims = c.crash_server(loaned[0]).unwrap();
        assert_eq!(victims.len(), 1);
        assert_eq!(c.loaned_count(), 0, "off the loan ledger");
        // While down it cannot be loaned again.
        assert!(matches!(
            c.loan(3),
            Err(ClusterError::InsufficientLoanable { available: 2, .. })
        ));
        c.recover_server(loaned[0]).unwrap();
        assert_eq!(c.server_views().len(), 2, "not auto-rewhitelisted");
        let again = c.loan(3).expect("recovered server is loanable again");
        assert!(again.contains(&loaned[0]));
    }

    #[test]
    fn audit_accepts_all_legal_histories() {
        let mut c = small();
        c.audit().expect("fresh state is consistent");
        let loaned = c.loan(2).unwrap();
        c.allocate(JobId(1), &[(ServerId(0), 2), (loaned[0], 1)], 2, ServerGroup::Base)
            .unwrap();
        c.crash_server(loaned[1]).unwrap();
        c.audit().expect("after loan/allocate/crash");
        c.recover_server(loaned[1]).unwrap();
        c.evict_job(JobId(1));
        c.audit().expect("after recover/evict");
    }
}
