//! Cluster-wide state: the two management domains, loans and occupancy.
//!
//! The training scheduler controls exactly the servers on its *whitelist*
//! (§6): its dedicated V100 servers plus whatever inference servers are
//! currently on loan. Inference-owned servers never appear in scheduler
//! snapshots. All occupancy mutations validate first and apply atomically,
//! so a buggy policy cannot corrupt the bookkeeping.

use crate::server::Server;
use lyra_core::gpu::GpuType;
use lyra_core::job::JobId;
use lyra_core::reclaim::{JobFootprint, ReclaimRequest, ReclaimServerView};
use lyra_core::snapshot::{PoolKind, ServerGroup, ServerId, ServerView};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Cluster shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Dedicated training servers (the paper: 443).
    pub training_servers: u32,
    /// Inference-owned servers (the paper: 520).
    pub inference_servers: u32,
    /// GPUs per server (8 in both clusters).
    pub gpus_per_server: u32,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            training_servers: 443,
            inference_servers: 520,
            gpus_per_server: 8,
        }
    }
}

impl ClusterConfig {
    /// The testbed shape of §7.5: four training and four inference
    /// servers.
    pub fn testbed() -> Self {
        ClusterConfig {
            training_servers: 4,
            inference_servers: 4,
            gpus_per_server: 8,
        }
    }
}

/// Errors from cluster-state operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The server id does not exist.
    UnknownServer(ServerId),
    /// The server is not under training-scheduler control.
    NotWhitelisted(ServerId),
    /// The server is not currently on loan.
    NotLoaned(ServerId),
    /// A loaned server cannot be returned while occupied.
    Occupied(ServerId),
    /// An occupancy mutation would overflow or underflow a server.
    Occupancy(String),
    /// Not enough idle inference servers to loan.
    InsufficientLoanable {
        /// Servers requested.
        requested: u32,
        /// Servers actually available.
        available: u32,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::UnknownServer(s) => write!(f, "unknown {s}"),
            ClusterError::NotWhitelisted(s) => write!(f, "{s} is not whitelisted"),
            ClusterError::NotLoaned(s) => write!(f, "{s} is not on loan"),
            ClusterError::Occupied(s) => write!(f, "{s} still hosts workers"),
            ClusterError::Occupancy(msg) => write!(f, "occupancy violation: {msg}"),
            ClusterError::InsufficientLoanable {
                requested,
                available,
            } => write!(
                f,
                "asked to loan {requested} servers, only {available} idle"
            ),
        }
    }
}

impl std::error::Error for ClusterError {}

/// The whole cluster as the training scheduler and orchestrator see it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterState {
    /// Shape the state was built with.
    pub config: ClusterConfig,
    servers: BTreeMap<ServerId, Server>,
    whitelist: BTreeSet<ServerId>,
    loaned: BTreeSet<ServerId>,
}

impl ClusterState {
    /// Builds the cluster: training servers get ids `0..T`, inference
    /// servers `T..T+I`.
    pub fn new(config: ClusterConfig) -> Self {
        let mut servers = BTreeMap::new();
        let mut whitelist = BTreeSet::new();
        for i in 0..config.training_servers {
            let s = Server::new(i, GpuType::V100, config.gpus_per_server, PoolKind::Training);
            whitelist.insert(s.id);
            servers.insert(s.id, s);
        }
        for i in 0..config.inference_servers {
            let s = Server::new(
                config.training_servers + i,
                GpuType::T4,
                config.gpus_per_server,
                PoolKind::OnLoan,
            );
            servers.insert(s.id, s);
        }
        ClusterState {
            config,
            servers,
            whitelist,
            loaned: BTreeSet::new(),
        }
    }

    /// The scheduler-facing views of all whitelisted servers.
    pub fn server_views(&self) -> Vec<ServerView> {
        self.whitelist
            .iter()
            .map(|id| self.servers[id].view())
            .collect()
    }

    /// Access one server.
    pub fn server(&self, id: ServerId) -> Option<&Server> {
        self.servers.get(&id)
    }

    /// Ids of servers currently on loan, ascending.
    pub fn loaned_ids(&self) -> Vec<ServerId> {
        self.loaned.iter().copied().collect()
    }

    /// Number of servers currently on loan.
    pub fn loaned_count(&self) -> u32 {
        self.loaned.len() as u32
    }

    /// Whether `id` is on loan to training.
    pub fn is_loaned(&self, id: ServerId) -> bool {
        self.loaned.contains(&id)
    }

    /// `(used, total)` GPUs across whitelisted servers of `pool`.
    pub fn gpu_usage(&self, pool: PoolKind) -> (u32, u32) {
        let mut used = 0;
        let mut total = 0;
        for id in &self.whitelist {
            let s = &self.servers[id];
            if s.pool == pool {
                used += s.used_gpus();
                total += s.total_gpus;
            }
        }
        (used, total)
    }

    /// Loans `n` idle inference-owned servers to training, adding them to
    /// the whitelist. Returns the loaned ids.
    pub fn loan(&mut self, n: u32) -> Result<Vec<ServerId>, ClusterError> {
        let candidates: Vec<ServerId> = self
            .servers
            .values()
            .filter(|s| {
                s.gpu_type == GpuType::T4 && !self.whitelist.contains(&s.id) && s.is_empty()
            })
            .map(|s| s.id)
            .take(n as usize)
            .collect();
        if (candidates.len() as u32) < n {
            return Err(ClusterError::InsufficientLoanable {
                requested: n,
                available: candidates.len() as u32,
            });
        }
        for id in &candidates {
            self.whitelist.insert(*id);
            self.loaned.insert(*id);
            if let Some(s) = self.servers.get_mut(id) {
                s.pool = PoolKind::OnLoan;
                s.group = ServerGroup::Unassigned;
            }
        }
        Ok(candidates)
    }

    /// Returns loaned servers to the inference cluster. Each must be on
    /// loan and empty.
    pub fn return_servers(&mut self, ids: &[ServerId]) -> Result<(), ClusterError> {
        for id in ids {
            let s = self
                .servers
                .get(id)
                .ok_or(ClusterError::UnknownServer(*id))?;
            if !self.loaned.contains(id) {
                return Err(ClusterError::NotLoaned(*id));
            }
            if !s.is_empty() {
                return Err(ClusterError::Occupied(*id));
            }
        }
        for id in ids {
            self.whitelist.remove(id);
            self.loaned.remove(id);
        }
        Ok(())
    }

    /// Allocates workers of `job` per the assignment, labelling on-loan
    /// servers with `group` when unassigned. Validates every leg first;
    /// applies atomically.
    pub fn allocate(
        &mut self,
        job: JobId,
        assignment: &[(ServerId, u32)],
        gpus_per_worker: u32,
        group: ServerGroup,
    ) -> Result<(), ClusterError> {
        for (id, workers) in assignment {
            let s = self
                .servers
                .get(id)
                .ok_or(ClusterError::UnknownServer(*id))?;
            if !self.whitelist.contains(id) {
                return Err(ClusterError::NotWhitelisted(*id));
            }
            let need = workers * gpus_per_worker;
            if need > s.free_gpus() {
                return Err(ClusterError::Occupancy(format!(
                    "{id}: need {need}, free {}",
                    s.free_gpus()
                )));
            }
        }
        for (id, workers) in assignment {
            let s = self.servers.get_mut(id).expect("validated above");
            s.allocate(job, workers * gpus_per_worker)
                .map_err(ClusterError::Occupancy)?;
            if s.pool == PoolKind::OnLoan && s.group == ServerGroup::Unassigned {
                s.group = group;
            }
        }
        Ok(())
    }

    /// Releases workers of `job` per the assignment (scale-in). Validates
    /// first; applies atomically.
    pub fn release(
        &mut self,
        job: JobId,
        assignment: &[(ServerId, u32)],
        gpus_per_worker: u32,
    ) -> Result<(), ClusterError> {
        for (id, workers) in assignment {
            let s = self
                .servers
                .get(id)
                .ok_or(ClusterError::UnknownServer(*id))?;
            if s.gpus_of(job) < workers * gpus_per_worker {
                return Err(ClusterError::Occupancy(format!(
                    "{id}: {job} holds {} GPUs, releasing {}",
                    s.gpus_of(job),
                    workers * gpus_per_worker
                )));
            }
        }
        for (id, workers) in assignment {
            let s = self.servers.get_mut(id).expect("validated above");
            s.release(job, workers * gpus_per_worker)
                .map_err(ClusterError::Occupancy)?;
        }
        Ok(())
    }

    /// Vacates every allocation on one server (flexible-group release),
    /// returning the `(job, gpus)` pairs that were freed.
    pub fn vacate_server(&mut self, id: ServerId) -> Result<Vec<(JobId, u32)>, ClusterError> {
        let s = self
            .servers
            .get_mut(&id)
            .ok_or(ClusterError::UnknownServer(id))?;
        let jobs: Vec<(JobId, u32)> = s.jobs().collect();
        for (job, _) in &jobs {
            s.evict(*job);
        }
        Ok(jobs)
    }

    /// Evicts `job` everywhere (preemption). Returns `(server, gpus)`
    /// freed.
    pub fn evict_job(&mut self, job: JobId) -> Vec<(ServerId, u32)> {
        let mut freed = Vec::new();
        for s in self.servers.values_mut() {
            let g = s.evict(job);
            if g > 0 {
                freed.push((s.id, g));
            }
        }
        freed
    }

    /// Servers on loan whose group is `Flexible`, with their jobs — the
    /// candidates for §5.3's preemption-free release.
    pub fn flexible_group_servers(&self) -> Vec<(ServerId, Vec<(JobId, u32)>)> {
        self.loaned
            .iter()
            .filter_map(|id| {
                let s = &self.servers[id];
                (s.group == ServerGroup::Flexible).then(|| (s.id, s.jobs().collect()))
            })
            .collect()
    }

    /// Builds the §4 reclaim request over the currently loaned servers.
    ///
    /// Footprints count each job's servers and GPUs cluster-wide, so the
    /// preemption-cost denominators include training-side placements.
    pub fn reclaim_request(&self, need: usize) -> ReclaimRequest {
        let mut footprints: HashMap<JobId, (u32, u32)> = HashMap::new();
        for s in self.servers.values() {
            for (job, gpus) in s.jobs() {
                let e = footprints.entry(job).or_insert((0, 0));
                e.0 += 1;
                e.1 += gpus;
            }
        }
        let servers: Vec<ReclaimServerView> = self
            .loaned
            .iter()
            .map(|id| {
                let s = &self.servers[id];
                ReclaimServerView {
                    id: s.id,
                    total_gpus: s.total_gpus,
                    jobs: s.jobs().collect(),
                }
            })
            .collect();
        let mut jobs: Vec<JobFootprint> = servers
            .iter()
            .flat_map(|s| s.jobs.iter().map(|(j, _)| *j))
            .collect::<BTreeSet<JobId>>()
            .into_iter()
            .map(|id| {
                let (total_servers, total_gpus) = footprints[&id];
                JobFootprint {
                    id,
                    total_servers,
                    total_gpus,
                }
            })
            .collect();
        jobs.sort_by_key(|f| f.id);
        ReclaimRequest {
            servers,
            jobs,
            need,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ClusterState {
        ClusterState::new(ClusterConfig {
            training_servers: 2,
            inference_servers: 3,
            gpus_per_server: 8,
        })
    }

    #[test]
    fn initial_whitelist_is_training_only() {
        let c = small();
        let views = c.server_views();
        assert_eq!(views.len(), 2);
        assert!(views.iter().all(|v| v.pool == PoolKind::Training));
        assert_eq!(c.gpu_usage(PoolKind::Training), (0, 16));
        assert_eq!(c.gpu_usage(PoolKind::OnLoan), (0, 0));
    }

    #[test]
    fn loan_and_return_roundtrip() {
        let mut c = small();
        let loaned = c.loan(2).expect("2 of 3 idle");
        assert_eq!(loaned.len(), 2);
        assert_eq!(c.loaned_count(), 2);
        assert_eq!(c.server_views().len(), 4);
        assert_eq!(c.gpu_usage(PoolKind::OnLoan), (0, 16));
        c.return_servers(&loaned).expect("all empty");
        assert_eq!(c.loaned_count(), 0);
        assert_eq!(c.server_views().len(), 2);
    }

    #[test]
    fn loan_rejects_over_request() {
        let mut c = small();
        match c.loan(4) {
            Err(ClusterError::InsufficientLoanable {
                requested: 4,
                available: 3,
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(c.loaned_count(), 0, "failed loan changes nothing");
    }

    #[test]
    fn cannot_return_occupied_or_unloaned() {
        let mut c = small();
        let loaned = c.loan(1).unwrap();
        c.allocate(JobId(1), &[(loaned[0], 2)], 2, ServerGroup::Base)
            .unwrap();
        assert_eq!(
            c.return_servers(&loaned),
            Err(ClusterError::Occupied(loaned[0]))
        );
        assert_eq!(
            c.return_servers(&[ServerId(0)]),
            Err(ClusterError::NotLoaned(ServerId(0)))
        );
    }

    #[test]
    fn allocate_is_atomic_across_servers() {
        let mut c = small();
        // First leg fits, second overflows → nothing applies.
        let a = [(ServerId(0), 2u32), (ServerId(1), 5u32)];
        let err = c.allocate(JobId(1), &a, 2, ServerGroup::Base);
        assert!(matches!(err, Err(ClusterError::Occupancy(_))));
        assert_eq!(c.gpu_usage(PoolKind::Training).0, 0);
    }

    #[test]
    fn allocate_requires_whitelist() {
        let mut c = small();
        // Server 2 is inference-owned, not loaned.
        let err = c.allocate(JobId(1), &[(ServerId(2), 1)], 1, ServerGroup::Base);
        assert_eq!(err, Err(ClusterError::NotWhitelisted(ServerId(2))));
    }

    #[test]
    fn release_and_evict() {
        let mut c = small();
        c.allocate(
            JobId(1),
            &[(ServerId(0), 2), (ServerId(1), 1)],
            2,
            ServerGroup::Base,
        )
        .unwrap();
        c.release(JobId(1), &[(ServerId(0), 1)], 2).unwrap();
        assert_eq!(c.gpu_usage(PoolKind::Training).0, 4);
        let freed = c.evict_job(JobId(1));
        assert_eq!(freed, vec![(ServerId(0), 2), (ServerId(1), 2)]);
        assert_eq!(c.gpu_usage(PoolKind::Training).0, 0);
    }

    #[test]
    fn release_validates_holdings() {
        let mut c = small();
        c.allocate(JobId(1), &[(ServerId(0), 1)], 2, ServerGroup::Base)
            .unwrap();
        let err = c.release(JobId(1), &[(ServerId(0), 2)], 2);
        assert!(matches!(err, Err(ClusterError::Occupancy(_))));
        assert_eq!(c.gpu_usage(PoolKind::Training).0, 2, "unchanged");
    }

    #[test]
    fn group_labels_follow_allocations() {
        let mut c = small();
        let loaned = c.loan(2).unwrap();
        c.allocate(JobId(1), &[(loaned[0], 1)], 1, ServerGroup::Flexible)
            .unwrap();
        assert_eq!(c.server(loaned[0]).unwrap().group, ServerGroup::Flexible);
        assert_eq!(
            c.flexible_group_servers(),
            vec![(loaned[0], vec![(JobId(1), 1)])]
        );
        // Releasing everything resets the label.
        c.release(JobId(1), &[(loaned[0], 1)], 1).unwrap();
        assert!(c.flexible_group_servers().is_empty());
    }

    #[test]
    fn reclaim_request_footprints_span_pools() {
        let mut c = small();
        let loaned = c.loan(1).unwrap();
        // Job 1 spans a training server and the loaned server.
        c.allocate(
            JobId(1),
            &[(ServerId(0), 1), (loaned[0], 1)],
            4,
            ServerGroup::Base,
        )
        .unwrap();
        let req = c.reclaim_request(1);
        assert_eq!(req.need, 1);
        assert_eq!(req.servers.len(), 1);
        assert_eq!(req.jobs.len(), 1);
        assert_eq!(req.jobs[0].total_servers, 2);
        assert_eq!(req.jobs[0].total_gpus, 8);
        req.validate().expect("request is consistent");
    }
}
