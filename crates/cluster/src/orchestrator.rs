//! The resource orchestrator (§3, §4).
//!
//! Executes the inference scheduler's instructions: moves idle inference
//! servers onto the training whitelist when loaning, and picks which
//! servers to hand back when reclaiming. Reclaiming is two-phase per the
//! paper's key insight:
//!
//! 1. **Flexible-group release** — on-loan servers hosting only flexible
//!    workers are vacated by scaling the affected elastic jobs *in*,
//!    which preempts nobody (§5.3; the paper measures this alone
//!    satisfies 53.5 % of reclaiming demand on average in Basic).
//! 2. **Cost-guided preemption** — remaining demand falls to §4's greedy
//!    heuristic over server preemption costs (or the Random / SCF /
//!    exhaustive-optimal comparators of §7.3).

use crate::state::{ClusterError, ClusterState};
use lyra_core::job::JobId;
use lyra_core::reclaim::{
    reclaim_exhaustive_optimal, reclaim_random, reclaim_scf, reclaim_servers, CostModel,
    ReclaimEngine, ReclaimOutcome, ReclaimRequest,
};
use lyra_core::snapshot::ServerId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Which server-selection policy reclaiming uses (§7.3's comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReclaimPolicy {
    /// Lyra's server-fraction preemption-cost heuristic.
    Lyra,
    /// The inferior GPU-fraction cost variant (Table 1's ablation).
    GpuFraction,
    /// Uniformly random server selection.
    Random,
    /// Smallest-job-count-first.
    Scf,
    /// Exhaustive optimal (falls back to Lyra's heuristic above
    /// [`Orchestrator::OPTIMAL_JOB_LIMIT`] distinct jobs).
    Optimal,
}

/// What the orchestrator did at a tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OrchestratorDecision {
    /// Servers newly loaned to training.
    Loaned(Vec<ServerId>),
    /// Servers returned to inference.
    Reclaimed {
        /// Elastic scale-ins applied during flexible-group release:
        /// `(job, server, gpus freed there)`.
        flex_releases: Vec<(JobId, ServerId, u32)>,
        /// Servers returned by scaling elastic jobs in (the flexible
        /// server group of §5.3).
        returned_flex: Vec<ServerId>,
        /// Servers that were already idle and returned for free.
        returned_idle: Vec<ServerId>,
        /// The preemption phase's outcome (empty `preempted` when the
        /// flexible phase sufficed).
        outcome: ReclaimOutcome,
    },
    /// Nothing to do.
    Hold,
}

impl OrchestratorDecision {
    /// Total servers returned by this decision.
    pub fn servers_returned(&self) -> usize {
        match self {
            OrchestratorDecision::Reclaimed {
                returned_flex,
                returned_idle,
                outcome,
                ..
            } => returned_flex.len() + returned_idle.len() + outcome.returned.len(),
            _ => 0,
        }
    }
}

/// The orchestrator.
#[derive(Debug, Clone)]
pub struct Orchestrator {
    /// Reclaiming policy.
    pub policy: ReclaimPolicy,
    /// Tick interval in seconds (the paper: every five minutes).
    pub interval_s: f64,
    /// Whether cost-model reclaims (`Lyra`, `GpuFraction`) run through
    /// the incremental [`ReclaimEngine`] instead of the from-scratch
    /// greedy. Outcomes are identical (pinned by the core equivalence
    /// proptest and the perf harness's divergence gate); the flag exists
    /// as a differential baseline.
    pub incremental: bool,
    rng: StdRng,
    engine: ReclaimEngine,
}

impl Orchestrator {
    /// Above this many distinct jobs the `Optimal` policy falls back to
    /// the heuristic (the exhaustive search is exponential; §7.3 reports
    /// its running time at ~420,000× Lyra's).
    pub const OPTIMAL_JOB_LIMIT: usize = 16;

    /// Creates an orchestrator with a seeded RNG (used by `Random`).
    /// Cost-model reclaims default to the incremental engine.
    pub fn new(policy: ReclaimPolicy, seed: u64) -> Self {
        Orchestrator {
            policy,
            interval_s: 300.0,
            incremental: true,
            rng: StdRng::seed_from_u64(seed),
            engine: ReclaimEngine::new(),
        }
    }

    /// Raw RNG state, for checkpointing.
    pub fn rng_state(&self) -> u64 {
        self.rng.state()
    }

    /// Restores the RNG to a previously captured state so `Random`
    /// reclaims resume the identical draw sequence.
    pub fn restore_rng_state(&mut self, state: u64) {
        self.rng = StdRng::seed_from_u64(state);
    }

    /// Runs a cost-model reclaim through the incremental engine or the
    /// from-scratch greedy, per [`Orchestrator::incremental`].
    fn cost_reclaim(&mut self, request: &ReclaimRequest, model: CostModel) -> ReclaimOutcome {
        if self.incremental {
            self.engine.reclaim(request, model)
        } else {
            reclaim_servers(request, model)
        }
    }

    /// Executes a loan of up to `n` servers (bounded by idle inference
    /// servers — the instruction says how many are *available*).
    pub fn execute_loan(
        &mut self,
        state: &mut ClusterState,
        n: u32,
    ) -> Result<OrchestratorDecision, ClusterError> {
        if n == 0 {
            return Ok(OrchestratorDecision::Hold);
        }
        let _timing = lyra_obs::span::span("cluster.loan");
        let loaned = state.loan(n)?;
        Ok(OrchestratorDecision::Loaned(loaned))
    }

    /// Executes a reclaim of `n` servers: flexible-group release first,
    /// then the configured preemption policy.
    ///
    /// Cluster occupancy is updated (scale-in releases and evictions);
    /// the caller must mirror the worker-count changes onto its job
    /// bookkeeping from the returned decision.
    pub fn execute_reclaim(
        &mut self,
        state: &mut ClusterState,
        n: u32,
    ) -> Result<OrchestratorDecision, ClusterError> {
        if n == 0 {
            return Ok(OrchestratorDecision::Hold);
        }
        let _timing = lyra_obs::span::span("cluster.reclaim");
        let mut remaining = n as usize;
        let mut flex_releases: Vec<(JobId, ServerId, u32)> = Vec::new();
        let mut returned_flex: Vec<ServerId> = Vec::new();
        let mut returned_idle: Vec<ServerId> = Vec::new();

        // Phase 0: already-idle loaned servers are free to return.
        for sid in state.loaned_ids() {
            if remaining == 0 {
                break;
            }
            if state.server(sid).is_some_and(|s| s.is_empty()) {
                returned_idle.push(sid);
                remaining -= 1;
            }
        }
        // Phase 1: release whole flexible-group servers, fewest GPUs
        // lost first.
        let mut flex = state.flexible_group_servers();
        flex.sort_by_key(|(id, jobs)| (jobs.iter().map(|(_, g)| *g).sum::<u32>(), *id));
        for (sid, _) in flex {
            if remaining == 0 {
                break;
            }
            let freed = state.vacate_server(sid)?;
            for (job, gpus) in freed {
                flex_releases.push((job, sid, gpus));
            }
            returned_flex.push(sid);
            remaining -= 1;
        }
        state.return_servers(&returned_idle)?;
        state.return_servers(&returned_flex)?;

        // Phase 2: preemption-based reclaiming for the remainder.
        let outcome = if remaining > 0 {
            let request = state.reclaim_request(remaining);
            let outcome = match self.policy {
                ReclaimPolicy::Lyra => self.cost_reclaim(&request, CostModel::ServerFraction),
                ReclaimPolicy::GpuFraction => self.cost_reclaim(&request, CostModel::GpuFraction),
                ReclaimPolicy::Random => reclaim_random(&request, &mut self.rng),
                ReclaimPolicy::Scf => reclaim_scf(&request),
                ReclaimPolicy::Optimal => {
                    if request.jobs.len() <= Self::OPTIMAL_JOB_LIMIT {
                        reclaim_exhaustive_optimal(&request)
                            .unwrap_or_else(|| reclaim_servers(&request, CostModel::ServerFraction))
                    } else {
                        reclaim_servers(&request, CostModel::ServerFraction)
                    }
                }
            };
            for job in &outcome.preempted {
                state.evict_job(*job);
            }
            state.return_servers(&outcome.returned)?;
            outcome
        } else {
            ReclaimOutcome {
                returned: vec![],
                preempted: vec![],
                collateral_gpus: 0,
                shortfall: 0,
            }
        };

        Ok(OrchestratorDecision::Reclaimed {
            flex_releases,
            returned_flex,
            returned_idle,
            outcome,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ClusterConfig;
    use lyra_core::snapshot::ServerGroup;

    fn cluster() -> ClusterState {
        ClusterState::new(ClusterConfig {
            training_servers: 2,
            inference_servers: 4,
            gpus_per_server: 8,
            speed: lyra_core::gpu::SpeedFactors::default(),
        })
    }

    fn orch() -> Orchestrator {
        Orchestrator::new(ReclaimPolicy::Lyra, 1)
    }

    #[test]
    fn loan_moves_servers() {
        let mut state = cluster();
        let d = orch().execute_loan(&mut state, 3).unwrap();
        match d {
            OrchestratorDecision::Loaned(ids) => assert_eq!(ids.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(state.loaned_count(), 3);
    }

    #[test]
    fn zero_requests_hold() {
        let mut state = cluster();
        assert_eq!(
            orch().execute_loan(&mut state, 0).unwrap(),
            OrchestratorDecision::Hold
        );
        assert_eq!(
            orch().execute_reclaim(&mut state, 0).unwrap(),
            OrchestratorDecision::Hold
        );
    }

    #[test]
    fn flexible_group_released_before_preemption() {
        let mut state = cluster();
        let loaned = state.loan(3).unwrap();
        // Server A: flexible workers of elastic job 1; server B: base of
        // job 2; server C: idle.
        state
            .allocate(JobId(1), &[(loaned[0], 2)], 2, ServerGroup::Flexible)
            .unwrap();
        state
            .allocate(JobId(2), &[(loaned[1], 2)], 2, ServerGroup::Base)
            .unwrap();
        let d = orch().execute_reclaim(&mut state, 2).unwrap();
        match &d {
            OrchestratorDecision::Reclaimed {
                flex_releases,
                returned_flex,
                returned_idle,
                outcome,
            } => {
                // Flex server + idle server satisfy the demand with zero
                // preemptions.
                assert_eq!(flex_releases.len(), 1);
                assert_eq!(flex_releases[0].0, JobId(1));
                assert_eq!(returned_flex.len(), 1);
                assert_eq!(returned_idle.len(), 1);
                assert!(outcome.preempted.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(d.servers_returned(), 2);
        assert_eq!(state.loaned_count(), 1);
    }

    #[test]
    fn preemption_happens_when_flex_insufficient() {
        let mut state = cluster();
        let loaned = state.loan(2).unwrap();
        state
            .allocate(JobId(1), &[(loaned[0], 2)], 2, ServerGroup::Base)
            .unwrap();
        state
            .allocate(JobId(2), &[(loaned[1], 2)], 2, ServerGroup::Base)
            .unwrap();
        let d = orch().execute_reclaim(&mut state, 1).unwrap();
        match &d {
            OrchestratorDecision::Reclaimed {
                flex_releases,
                returned_flex,
                returned_idle,
                outcome,
            } => {
                assert!(flex_releases.is_empty());
                assert!(returned_flex.is_empty());
                assert!(returned_idle.is_empty());
                assert_eq!(outcome.preempted.len(), 1);
                assert_eq!(outcome.returned.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(state.loaned_count(), 1);
    }

    #[test]
    fn all_policies_meet_feasible_demand() {
        for policy in [
            ReclaimPolicy::Lyra,
            ReclaimPolicy::GpuFraction,
            ReclaimPolicy::Random,
            ReclaimPolicy::Scf,
            ReclaimPolicy::Optimal,
        ] {
            let mut state = cluster();
            let loaned = state.loan(3).unwrap();
            for (i, sid) in loaned.iter().enumerate() {
                state
                    .allocate(JobId(i as u64), &[(*sid, 2)], 2, ServerGroup::Base)
                    .unwrap();
            }
            let mut o = Orchestrator::new(policy, 42);
            let d = o.execute_reclaim(&mut state, 2).unwrap();
            assert_eq!(d.servers_returned(), 2, "{policy:?}");
            assert_eq!(state.loaned_count(), 1, "{policy:?}");
        }
    }

    #[test]
    fn shortfall_when_loans_exhausted() {
        let mut state = cluster();
        let loaned = state.loan(1).unwrap();
        state
            .allocate(JobId(1), &[(loaned[0], 1)], 1, ServerGroup::Base)
            .unwrap();
        let d = orch().execute_reclaim(&mut state, 3).unwrap();
        match d {
            OrchestratorDecision::Reclaimed { outcome, .. } => {
                assert_eq!(outcome.shortfall, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
