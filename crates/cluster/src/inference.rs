//! The inference-cluster scheduler (§4's assumptions).
//!
//! "The inference cluster scheduler autonomously determines when and which
//! servers to lend, and when and how many servers to ask back, based on
//! its own policy. The inference performance is not affected by capacity
//! loaning." Its policy here: serve the utilisation trace's demand, keep
//! the 2 % headroom of never-loaned machines (§7.1), and lend everything
//! else. With the optional LSTM predictor it asks back *in advance* of a
//! predicted rise (§6).

use crate::capacity::CapacityEstimator;
use lyra_predictor::UsagePredictor;
use lyra_trace::inference::{InferenceTrace, SAMPLE_INTERVAL_S};
use serde::{Deserialize, Serialize};

/// What the inference scheduler tells the orchestrator at a tick (§3's
/// flow (a)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoanInstruction {
    /// This many more servers are available for loaning.
    Loan(u32),
    /// This many on-loan servers must come back.
    Reclaim(u32),
    /// No change.
    Hold,
}

/// The inference-side scheduler.
#[derive(Debug, Clone)]
pub struct InferenceScheduler {
    /// Utilisation trace driving the demand.
    pub trace: InferenceTrace,
    /// Fraction of the cluster never loaned (paper: 0.02).
    pub headroom_frac: f64,
    /// GPUs per server.
    pub gpus_per_server: u32,
    /// Total servers the inference cluster owns.
    pub total_servers: u32,
    /// Optional usage predictor: reclaim ahead of predicted demand.
    pub predictor: Option<UsagePredictor>,
    /// Optional latency-aware capacity model: when set, the utilisation
    /// sample is converted to a request rate and the Erlang-C estimator
    /// decides how many GPUs the SLO needs, instead of the proportional
    /// busy-GPU count.
    pub capacity_model: Option<CapacityEstimator>,
}

impl InferenceScheduler {
    /// Creates the scheduler over a trace.
    pub fn new(trace: InferenceTrace, total_servers: u32, gpus_per_server: u32) -> Self {
        InferenceScheduler {
            trace,
            headroom_frac: 0.02,
            gpus_per_server,
            total_servers,
            predictor: None,
            capacity_model: None,
        }
    }

    /// Servers that must stay under inference control at `time_s`: current
    /// (or predicted) demand plus headroom.
    pub fn servers_needed(&self, time_s: f64) -> u32 {
        let mut util = self.trace.utilization_at(time_s);
        if let Some(p) = &self.predictor {
            // Feed the last `window` samples; reclaim ahead of a rise by
            // taking the max of now and the prediction.
            let w = p.config.window;
            let idx = (time_s.max(0.0) as u64 / SAMPLE_INTERVAL_S) as usize;
            if idx + 1 >= w && !self.trace.samples.is_empty() {
                let end = (idx + 1).min(self.trace.samples.len());
                if end >= w {
                    let window = &self.trace.samples[end - w..end];
                    util = util.max(p.predict(window).clamp(0.0, 1.0));
                }
            }
        }
        let total_gpus = self.total_servers * self.gpus_per_server;
        let demand_gpus = match &self.capacity_model {
            Some(model) => {
                let lambda = model.rate_for_utilization(util, total_gpus);
                f64::from(model.gpus_needed(lambda).min(total_gpus))
            }
            None => util * f64::from(total_gpus),
        };
        let demand_servers = (demand_gpus / f64::from(self.gpus_per_server)).ceil() as u32;
        // Small clusters need an absolute floor: one server of noise is
        // proportionally huge when the fleet has only a handful. Tiny
        // fleets (the 4-server testbed) keep the floor at one server or
        // they could never lend anything.
        let floor = if self.total_servers < 16 { 1 } else { 2 };
        let headroom = ((self.headroom_frac * f64::from(self.total_servers)).ceil() as u32)
            .max(floor)
            .min(self.total_servers / 2);
        (demand_servers + headroom).min(self.total_servers)
    }

    /// The instruction for the orchestrator given how many servers are
    /// currently on loan.
    pub fn instruction_at(&self, time_s: f64, currently_loaned: u32) -> LoanInstruction {
        let needed = self.servers_needed(time_s);
        let in_control = self.total_servers.saturating_sub(currently_loaned);
        if needed > in_control {
            LoanInstruction::Reclaim(needed - in_control)
        } else {
            let loanable = in_control - needed;
            if loanable > 0 {
                LoanInstruction::Loan(loanable)
            } else {
                LoanInstruction::Hold
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyra_trace::inference::InferenceTraceConfig;

    fn flat_trace(util: f64) -> InferenceTrace {
        InferenceTrace {
            config: InferenceTraceConfig {
                days: 1,
                total_gpus: 80,
                ..Default::default()
            },
            samples: vec![util; 288],
        }
    }

    fn sched(util: f64) -> InferenceScheduler {
        InferenceScheduler::new(flat_trace(util), 10, 8)
    }

    #[test]
    fn headroom_is_never_loaned() {
        let s = sched(0.0);
        // Zero demand: a 10-server fleet keeps a 1-server floor.
        assert_eq!(s.servers_needed(0.0), 1);
        assert_eq!(s.instruction_at(0.0, 0), LoanInstruction::Loan(9));
    }

    #[test]
    fn half_utilisation_lends_the_rest() {
        let s = sched(0.5);
        // 40 busy GPUs → 5 servers + 1 headroom = 6 needed.
        assert_eq!(s.servers_needed(0.0), 6);
        assert_eq!(s.instruction_at(0.0, 0), LoanInstruction::Loan(4));
        assert_eq!(s.instruction_at(0.0, 4), LoanInstruction::Hold);
    }

    #[test]
    fn bigger_fleets_keep_a_two_server_floor() {
        let trace = InferenceTrace {
            config: InferenceTraceConfig {
                days: 1,
                total_gpus: 160,
                ..Default::default()
            },
            samples: vec![0.0; 288],
        };
        let s = InferenceScheduler::new(trace, 20, 8);
        assert_eq!(s.servers_needed(0.0), 2);
    }

    #[test]
    fn demand_spike_triggers_reclaim() {
        let s = sched(0.9);
        // 72 GPUs → 9 servers + 2 headroom, capped at the fleet = 10.
        assert_eq!(s.servers_needed(0.0), 10);
        assert_eq!(s.instruction_at(0.0, 4), LoanInstruction::Reclaim(4));
    }

    #[test]
    fn needed_never_exceeds_fleet() {
        let s = sched(1.0);
        assert_eq!(s.servers_needed(0.0), 10);
    }

    #[test]
    fn capacity_model_adds_latency_headroom() {
        // At 65 % utilisation the Erlang-C SLO needs more GPUs than the
        // busy count alone, so fewer servers are loanable.
        let mut with_model = sched(0.65);
        with_model.capacity_model = Some(CapacityEstimator::typical());
        let without = sched(0.65);
        assert!(with_model.servers_needed(0.0) >= without.servers_needed(0.0));
        // At zero traffic both need only the headroom floor.
        let mut idle = sched(0.0);
        idle.capacity_model = Some(CapacityEstimator::typical());
        assert_eq!(idle.servers_needed(0.0), 1);
    }

    #[test]
    fn predictor_reclaims_in_advance() {
        use lyra_predictor::LstmConfig;
        // Trace rises sharply at sample 20; a "predictor" trained to
        // always output a high value forces early reclaim. We emulate by
        // training quickly on a constant-high series so its prediction
        // exceeds the current low utilisation.
        let mut trace = flat_trace(0.2);
        for s in trace.samples.iter_mut().skip(20) {
            *s = 0.9;
        }
        let mut p = UsagePredictor::new(LstmConfig::default());
        p.train_series(&vec![0.9; 200], 2);
        let mut s = InferenceScheduler::new(trace, 10, 8);
        let without = s.servers_needed(15.0 * 300.0);
        s.predictor = Some(p);
        let with = s.servers_needed(15.0 * 300.0);
        assert!(
            with > without,
            "prediction raises the target: {without} → {with}"
        );
    }
}
