//! The resource-manager shim (§6).
//!
//! Lyra "runs on top of a cluster resource manager such as YARN and
//! Kubernetes to execute its decisions". This module models that layer:
//! the whitelist API used for capacity loaning ("the orchestrator adds
//! on-loan servers to Lyra scheduler's whitelist…; in reclaiming, the
//! orchestrator removes the selected servers … after its scheduler
//! confirms they no longer have running workers") plus container
//! operations, all recorded in an auditable op log with the latency
//! constants measured on the testbed (§7.5).

use lyra_core::job::JobId;
use lyra_core::snapshot::ServerId;
use serde::{Deserialize, Serialize};

/// One operation issued to the resource manager.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RmOp {
    /// Server added to the training scheduler's whitelist (loaning).
    AddToWhitelist(ServerId),
    /// Server removed from the whitelist (reclaiming).
    RemoveFromWhitelist(ServerId),
    /// Worker containers launched for a job.
    LaunchContainers {
        /// Job being started or grown.
        job: JobId,
        /// Target server.
        server: ServerId,
        /// Workers launched there.
        workers: u32,
    },
    /// Worker containers stopped (scale-in or preemption).
    KillContainers {
        /// Job being shrunk or preempted.
        job: JobId,
        /// Target server.
        server: ServerId,
        /// Workers stopped there.
        workers: u32,
    },
    /// Node marked lost after a health-check failure (fault injection):
    /// the scheduler must stop placing work there.
    MarkServerDown(ServerId),
    /// Node passed health checks again and rejoined its pool.
    MarkServerUp(ServerId),
}

/// Latency constants for resource-manager operations, from the testbed
/// measurements (§7.5: the full preempt–relaunch–restore cycle averages
/// 63 s).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RmLatencies {
    /// Seconds to launch a worker container batch on one server.
    pub launch_s: f64,
    /// Seconds to stop containers on one server.
    pub kill_s: f64,
    /// Seconds for a whitelist move.
    pub whitelist_s: f64,
}

impl Default for RmLatencies {
    fn default() -> Self {
        RmLatencies {
            launch_s: 10.0,
            kill_s: 2.0,
            whitelist_s: 1.0,
        }
    }
}

/// The resource-manager facade: records ops and accumulates the modelled
/// control-plane latency.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceManager {
    /// Latency model.
    pub latencies: RmLatencies,
    log: Vec<RmOp>,
    total_latency_s: f64,
}

impl ResourceManager {
    /// Creates a manager with the default latency model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one op, returning its modelled latency in seconds.
    pub fn submit(&mut self, op: RmOp) -> f64 {
        let latency = match &op {
            RmOp::AddToWhitelist(_)
            | RmOp::RemoveFromWhitelist(_)
            | RmOp::MarkServerDown(_)
            | RmOp::MarkServerUp(_) => self.latencies.whitelist_s,
            RmOp::LaunchContainers { .. } => self.latencies.launch_s,
            RmOp::KillContainers { .. } => self.latencies.kill_s,
        };
        self.log.push(op);
        self.total_latency_s += latency;
        latency
    }

    /// The full op log, in submission order.
    pub fn log(&self) -> &[RmOp] {
        &self.log
    }

    /// Total modelled control-plane latency, seconds.
    pub fn total_latency_s(&self) -> f64 {
        self.total_latency_s
    }

    /// Counts ops matching a predicate (e.g. loan/reclaim operations for
    /// the §7.5 report).
    pub fn count_ops(&self, pred: impl Fn(&RmOp) -> bool) -> usize {
        self.log.iter().filter(|op| pred(op)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_records_in_order_with_latency() {
        let mut rm = ResourceManager::new();
        let l1 = rm.submit(RmOp::AddToWhitelist(ServerId(5)));
        let l2 = rm.submit(RmOp::LaunchContainers {
            job: JobId(1),
            server: ServerId(5),
            workers: 2,
        });
        assert_eq!(l1, 1.0);
        assert_eq!(l2, 10.0);
        assert_eq!(rm.log().len(), 2);
        assert_eq!(rm.total_latency_s(), 11.0);
    }

    #[test]
    fn count_ops_filters() {
        let mut rm = ResourceManager::new();
        rm.submit(RmOp::AddToWhitelist(ServerId(1)));
        rm.submit(RmOp::RemoveFromWhitelist(ServerId(1)));
        rm.submit(RmOp::AddToWhitelist(ServerId(2)));
        let loans = rm.count_ops(|op| matches!(op, RmOp::AddToWhitelist(_)));
        assert_eq!(loans, 2);
    }
}
