#![warn(missing_docs)]

//! # lyra-cluster
//!
//! The cluster substrate Lyra runs on: physical servers, the
//! training/inference management split, the whitelist-based resource
//! manager interface (§6), the inference-side scheduler that decides when
//! to lend and when to ask back (§4's assumptions), and the resource
//! orchestrator that executes loaning and reclaiming (§3).
//!
//! * [`server`] — a GPU server with per-job allocations.
//! * [`state`] — cluster-wide state: whitelists, loans, snapshot
//!   construction, action application with occupancy checks.
//! * [`manager`] — the YARN/Kubernetes-like resource-manager shim: the
//!   whitelist API and container operations, with an auditable op log.
//! * [`capacity`] — the latency-aware capacity estimator the inference
//!   scheduler is assumed to run (§4): an Erlang-C M/M/c model mapping a
//!   request rate to the minimum GPU count meeting a mean-wait SLO.
//! * [`inference`] — the inference cluster scheduler: capacity targets
//!   from the utilisation trace (or the Erlang-C estimator over a request
//!   trace), the 2 % headroom rule, and the optional LSTM predictor for
//!   reclaiming in advance.
//! * [`orchestrator`] — loan/reclaim execution: flexible-group release
//!   first (scale-in instead of preemption), then the §4 heuristic.

pub mod capacity;
pub mod inference;
pub mod manager;
pub mod orchestrator;
pub mod server;
pub mod state;

pub use capacity::{erlang_b, erlang_c, CapacityEstimator};
pub use inference::{InferenceScheduler, LoanInstruction};
pub use manager::{ResourceManager, RmOp};
pub use orchestrator::{Orchestrator, OrchestratorDecision, ReclaimPolicy};
pub use server::Server;
pub use state::{ClusterConfig, ClusterError, ClusterState};
