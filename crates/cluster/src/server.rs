//! A physical GPU server and its per-job occupancy.

use lyra_core::gpu::GpuType;
use lyra_core::job::JobId;
use lyra_core::snapshot::{PoolKind, ServerGroup, ServerId, ServerView};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One physical server tracked by the cluster state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Server {
    /// Identity.
    pub id: ServerId,
    /// Installed GPU model (homogeneous within a server).
    pub gpu_type: GpuType,
    /// GPUs installed (8 in both of the paper's clusters).
    pub total_gpus: u32,
    /// Domain the server currently serves, from the training scheduler's
    /// view; servers still under inference control carry `OnLoan = false`
    /// implicitly by not being whitelisted.
    pub pool: PoolKind,
    /// Base/flexible group label for on-loan servers (§5.3).
    pub group: ServerGroup,
    /// Generation speed multiplier on this server's capability (1.0 in
    /// the paper's single-generation clusters).
    pub speed_factor: f64,
    /// GPUs occupied per job.
    allocations: BTreeMap<JobId, u32>,
}

impl Server {
    /// Creates an idle server at the reference speed (factor 1.0).
    pub fn new(id: u32, gpu_type: GpuType, total_gpus: u32, pool: PoolKind) -> Self {
        Server {
            id: ServerId(id),
            gpu_type,
            total_gpus,
            pool,
            group: ServerGroup::Unassigned,
            speed_factor: 1.0,
            allocations: BTreeMap::new(),
        }
    }

    /// Sets the generation speed multiplier.
    pub fn with_speed_factor(mut self, factor: f64) -> Self {
        self.speed_factor = factor;
        self
    }

    /// GPUs currently free.
    pub fn free_gpus(&self) -> u32 {
        self.total_gpus - self.used_gpus()
    }

    /// GPUs currently allocated.
    pub fn used_gpus(&self) -> u32 {
        self.allocations.values().sum()
    }

    /// Whether no job occupies this server.
    pub fn is_empty(&self) -> bool {
        self.allocations.is_empty()
    }

    /// GPUs `job` occupies here (0 if absent).
    pub fn gpus_of(&self, job: JobId) -> u32 {
        self.allocations.get(&job).copied().unwrap_or(0)
    }

    /// Jobs with at least one GPU here, with their GPU counts.
    pub fn jobs(&self) -> impl Iterator<Item = (JobId, u32)> + '_ {
        self.allocations.iter().map(|(j, g)| (*j, *g))
    }

    /// Allocates `gpus` to `job`.
    ///
    /// Returns the new occupancy or an error string when the server lacks
    /// capacity.
    pub fn allocate(&mut self, job: JobId, gpus: u32) -> Result<u32, String> {
        if gpus > self.free_gpus() {
            return Err(format!(
                "{}: cannot allocate {gpus} GPUs ({} free)",
                self.id,
                self.free_gpus()
            ));
        }
        let entry = self.allocations.entry(job).or_insert(0);
        *entry += gpus;
        Ok(*entry)
    }

    /// Releases `gpus` of `job`; removes the job entry at zero.
    ///
    /// Returns the remaining occupancy or an error when the job does not
    /// hold that many GPUs here.
    pub fn release(&mut self, job: JobId, gpus: u32) -> Result<u32, String> {
        let held = self.gpus_of(job);
        if gpus > held {
            return Err(format!(
                "{}: {job} holds {held} GPUs, cannot release {gpus}",
                self.id
            ));
        }
        if gpus == held {
            self.allocations.remove(&job);
        } else if let Some(entry) = self.allocations.get_mut(&job) {
            *entry -= gpus;
        }
        if self.is_empty() {
            self.group = ServerGroup::Unassigned;
        }
        Ok(held - gpus)
    }

    /// Removes a job entirely, returning the GPUs it held here.
    pub fn evict(&mut self, job: JobId) -> u32 {
        let held = self.allocations.remove(&job).unwrap_or(0);
        if self.is_empty() {
            self.group = ServerGroup::Unassigned;
        }
        held
    }

    /// The scheduler-facing view of this server.
    pub fn view(&self) -> ServerView {
        ServerView {
            id: self.id,
            pool: self.pool,
            gpu_type: self.gpu_type,
            total_gpus: self.total_gpus,
            free_gpus: self.free_gpus(),
            group: self.group,
            speed_factor: self.speed_factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> Server {
        Server::new(1, GpuType::V100, 8, PoolKind::Training)
    }

    #[test]
    fn allocate_and_release_roundtrip() {
        let mut s = server();
        assert_eq!(s.allocate(JobId(1), 4), Ok(4));
        assert_eq!(s.allocate(JobId(1), 2), Ok(6));
        assert_eq!(s.free_gpus(), 2);
        assert_eq!(s.release(JobId(1), 6), Ok(0));
        assert!(s.is_empty());
    }

    #[test]
    fn over_allocation_is_rejected() {
        let mut s = server();
        s.allocate(JobId(1), 6).unwrap();
        assert!(s.allocate(JobId(2), 3).is_err());
        assert_eq!(s.used_gpus(), 6, "failed allocation leaves no residue");
    }

    #[test]
    fn over_release_is_rejected() {
        let mut s = server();
        s.allocate(JobId(1), 2).unwrap();
        assert!(s.release(JobId(1), 3).is_err());
        assert!(s.release(JobId(2), 1).is_err());
    }

    #[test]
    fn evict_removes_job_and_resets_group() {
        let mut s = server();
        s.group = ServerGroup::Flexible;
        s.allocate(JobId(1), 4).unwrap();
        assert_eq!(s.evict(JobId(1)), 4);
        assert_eq!(s.evict(JobId(1)), 0);
        assert_eq!(s.group, ServerGroup::Unassigned);
    }

    #[test]
    fn view_reflects_occupancy() {
        let mut s = server();
        s.allocate(JobId(3), 5).unwrap();
        let v = s.view();
        assert_eq!(v.free_gpus, 3);
        assert_eq!(v.total_gpus, 8);
        assert_eq!(v.pool, PoolKind::Training);
    }
}
