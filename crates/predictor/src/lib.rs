#![warn(missing_docs)]

//! # lyra-predictor
//!
//! The prediction substrates of §6 and §7.4:
//!
//! * [`lstm`] — the inference-resource-usage predictor: a from-scratch
//!   two-layer LSTM with a window of 10 samples, trained with Adam on an
//!   MSE loss, predicting the next five-minute utilisation. The paper
//!   reports an average loss of 0.00048 over 1,440 points; the `lstm`
//!   experiment in `lyra-bench` reproduces that measurement.
//! * [`adam`] — the Adam optimiser.
//! * [`linalg`] — the tiny dense-matrix kernel the LSTM needs.
//! * [`runtime`] — the job running-time estimator Lyra's scheduler relies
//!   on (§5.2), with the error-injection mode of Table 9 (a configurable
//!   fraction of predictions carry a bounded random error).
//!
//! No external ML dependencies; everything is seeded and deterministic.

pub mod adam;
pub mod linalg;
pub mod lstm;
pub mod runtime;

pub use adam::Adam;
pub use linalg::Matrix;
pub use lstm::{LstmConfig, UsagePredictor};
pub use runtime::{RuntimeEstimator, RuntimeEstimatorConfig};
