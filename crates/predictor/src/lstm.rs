//! The inference-resource-usage predictor (§6).
//!
//! "We develop a simple NN model to predict the inference resource usage.
//! The predictor is an LSTM model with a window size of 10 and two hidden
//! layers. We apply Adam optimizer and use MSE to compute loss. We predict
//! the resource usage of the next five minutes."
//!
//! This module implements that model from scratch: a stack of two LSTM
//! layers with a linear head, full backpropagation through time, and
//! Adam updates. Gradients are verified against central differences in the
//! test suite.

use crate::adam::Adam;
use crate::linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Model hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LstmConfig {
    /// Input window length (the paper uses 10 five-minute samples).
    pub window: usize,
    /// Hidden units per LSTM layer.
    pub hidden: usize,
    /// Number of stacked LSTM layers (the paper uses two).
    pub layers: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Weight-initialisation seed.
    pub seed: u64,
}

impl Default for LstmConfig {
    fn default() -> Self {
        LstmConfig {
            window: 10,
            hidden: 12,
            layers: 2,
            learning_rate: 0.01,
            seed: 0x157,
        }
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// One LSTM layer's parameters and gradient buffers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct LstmLayer {
    n_in: usize,
    hidden: usize,
    /// Input weights, gates stacked `[i; f; g; o]`: `4h × n_in`.
    wx: Matrix,
    /// Recurrent weights: `4h × h`.
    wh: Matrix,
    /// Bias: `4h` (forget-gate slice initialised to 1).
    b: Vec<f64>,
    // Gradients (same shapes).
    gwx: Matrix,
    gwh: Matrix,
    gb: Vec<f64>,
}

/// Per-timestep forward cache of one layer.
struct StepCache {
    x: Vec<f64>,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    g: Vec<f64>,
    o: Vec<f64>,
    tanh_c: Vec<f64>,
    h: Vec<f64>,
}

impl LstmLayer {
    fn new(n_in: usize, hidden: usize, rng: &mut StdRng) -> Self {
        let scale = 1.0 / (n_in.max(hidden) as f64).sqrt();
        let mut init = |rows: usize, cols: usize| {
            Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-scale..scale))
        };
        let wx = init(4 * hidden, n_in);
        let wh = init(4 * hidden, hidden);
        let mut b = vec![0.0; 4 * hidden];
        // Forget-gate bias of 1 is the standard stabiliser.
        for bf in b.iter_mut().take(2 * hidden).skip(hidden) {
            *bf = 1.0;
        }
        LstmLayer {
            n_in,
            hidden,
            gwx: Matrix::zeros(4 * hidden, n_in),
            gwh: Matrix::zeros(4 * hidden, hidden),
            gb: vec![0.0; 4 * hidden],
            wx,
            wh,
            b,
        }
    }

    /// Forward over a sequence from zero state; returns per-step caches.
    fn forward(&self, xs: &[Vec<f64>]) -> Vec<StepCache> {
        let h = self.hidden;
        let mut caches = Vec::with_capacity(xs.len());
        let mut h_prev = vec![0.0; h];
        let mut c_prev = vec![0.0; h];
        for x in xs {
            let mut a = self.wx.matvec(x);
            let ah = self.wh.matvec(&h_prev);
            for (ai, (bi, ahi)) in a.iter_mut().zip(self.b.iter().zip(&ah)) {
                *ai += bi + ahi;
            }
            let mut i = vec![0.0; h];
            let mut f = vec![0.0; h];
            let mut g = vec![0.0; h];
            let mut o = vec![0.0; h];
            for k in 0..h {
                i[k] = sigmoid(a[k]);
                f[k] = sigmoid(a[h + k]);
                g[k] = a[2 * h + k].tanh();
                o[k] = sigmoid(a[3 * h + k]);
            }
            let mut c = vec![0.0; h];
            let mut tanh_c = vec![0.0; h];
            let mut h_new = vec![0.0; h];
            for k in 0..h {
                c[k] = f[k] * c_prev[k] + i[k] * g[k];
                tanh_c[k] = c[k].tanh();
                h_new[k] = o[k] * tanh_c[k];
            }
            caches.push(StepCache {
                x: x.clone(),
                h_prev: h_prev.clone(),
                c_prev: c_prev.clone(),
                i,
                f,
                g,
                o,
                tanh_c: tanh_c.clone(),
                h: h_new.clone(),
            });
            h_prev = h_new;
            c_prev = c;
        }
        caches
    }

    /// BPTT given the gradient w.r.t. each step's hidden output;
    /// accumulates parameter gradients and returns the gradient w.r.t.
    /// each step's input.
    fn backward(&mut self, caches: &[StepCache], dh_stream: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let h = self.hidden;
        let t_len = caches.len();
        let mut dxs = vec![vec![0.0; self.n_in]; t_len];
        let mut dh_next = vec![0.0; h];
        let mut dc_next = vec![0.0; h];
        for t in (0..t_len).rev() {
            let cache = &caches[t];
            let mut dh = dh_stream[t].clone();
            for k in 0..h {
                dh[k] += dh_next[k];
            }
            // h = o ∘ tanh(c)
            let mut dc = vec![0.0; h];
            let mut da = vec![0.0; 4 * h];
            for k in 0..h {
                let do_ = dh[k] * cache.tanh_c[k];
                dc[k] = dh[k] * cache.o[k] * (1.0 - cache.tanh_c[k] * cache.tanh_c[k]) + dc_next[k];
                let di = dc[k] * cache.g[k];
                let df = dc[k] * cache.c_prev[k];
                let dg = dc[k] * cache.i[k];
                da[k] = di * cache.i[k] * (1.0 - cache.i[k]);
                da[h + k] = df * cache.f[k] * (1.0 - cache.f[k]);
                da[2 * h + k] = dg * (1.0 - cache.g[k] * cache.g[k]);
                da[3 * h + k] = do_ * cache.o[k] * (1.0 - cache.o[k]);
            }
            // Parameter gradients.
            self.gwx.add_outer(&da, &cache.x, 1.0);
            self.gwh.add_outer(&da, &cache.h_prev, 1.0);
            for (gbk, dak) in self.gb.iter_mut().zip(&da) {
                *gbk += dak;
            }
            // Input and recurrent gradients.
            dxs[t] = self.wx.matvec_t(&da);
            dh_next = self.wh.matvec_t(&da);
            dc_next = (0..h).map(|k| dc[k] * cache.f[k]).collect();
        }
        dxs
    }

    fn clear_grads(&mut self) {
        self.gwx.clear();
        self.gwh.clear();
        self.gb.fill(0.0);
    }
}

/// The two-layer LSTM usage predictor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UsagePredictor {
    /// Hyperparameters.
    pub config: LstmConfig,
    layers: Vec<LstmLayer>,
    /// Linear head weights (`hidden`) and bias.
    wy: Vec<f64>,
    by: f64,
    opts: Vec<(Adam, Adam, Adam)>,
    head_opt: Adam,
}

impl UsagePredictor {
    /// Creates a predictor with freshly initialised weights.
    pub fn new(config: LstmConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut layers = Vec::with_capacity(config.layers);
        let mut n_in = 1;
        for _ in 0..config.layers.max(1) {
            layers.push(LstmLayer::new(n_in, config.hidden, &mut rng));
            n_in = config.hidden;
        }
        let scale = 1.0 / (config.hidden as f64).sqrt();
        let wy: Vec<f64> = (0..config.hidden)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        let opts = layers
            .iter()
            .map(|l| {
                (
                    Adam::new(l.wx.data.len(), config.learning_rate),
                    Adam::new(l.wh.data.len(), config.learning_rate),
                    Adam::new(l.b.len(), config.learning_rate),
                )
            })
            .collect();
        UsagePredictor {
            head_opt: Adam::new(config.hidden + 1, config.learning_rate),
            config,
            layers,
            wy,
            by: 0.0,
            opts,
        }
    }

    /// Predicts the next sample from a window of `config.window` samples.
    ///
    /// # Panics
    ///
    /// Panics if the window length does not match the configuration.
    pub fn predict(&self, window: &[f64]) -> f64 {
        assert_eq!(window.len(), self.config.window, "window length mismatch");
        let mut xs: Vec<Vec<f64>> = window.iter().map(|&u| vec![u]).collect();
        let mut last_h = Vec::new();
        for layer in &self.layers {
            let caches = layer.forward(&xs);
            xs = caches.iter().map(|c| c.h.clone()).collect();
            last_h = xs.last().cloned().unwrap_or_default();
        }
        let y: f64 = self.wy.iter().zip(&last_h).map(|(w, h)| w * h).sum::<f64>() + self.by;
        y
    }

    /// One training step on `(window, target)`; returns the squared error
    /// *before* the update.
    pub fn train_step(&mut self, window: &[f64], target: f64) -> f64 {
        assert_eq!(window.len(), self.config.window, "window length mismatch");
        // Forward, keeping each layer's caches.
        let mut xs: Vec<Vec<f64>> = window.iter().map(|&u| vec![u]).collect();
        let mut all_caches = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let caches = layer.forward(&xs);
            xs = caches.iter().map(|c| c.h.clone()).collect();
            all_caches.push(caches);
        }
        let last_h = xs.last().cloned().unwrap_or_default();
        let y: f64 = self.wy.iter().zip(&last_h).map(|(w, h)| w * h).sum::<f64>() + self.by;
        let err = y - target;
        let loss = err * err;

        // Backward.
        let dy = 2.0 * err;
        let t_len = window.len();
        let mut dh_stream = vec![vec![0.0; self.config.hidden]; t_len];
        for (slot, w) in dh_stream[t_len - 1].iter_mut().zip(&self.wy) {
            *slot = dy * w;
        }
        let mut head_grad: Vec<f64> = last_h.iter().map(|h| dy * h).collect();
        head_grad.push(dy); // bias

        for layer in self.layers.iter_mut() {
            layer.clear_grads();
        }
        for (li, layer) in self.layers.iter_mut().enumerate().rev() {
            let dxs = layer.backward(&all_caches[li], &dh_stream);
            dh_stream = dxs;
        }

        // Adam updates.
        for (layer, (owx, owh, ob)) in self.layers.iter_mut().zip(self.opts.iter_mut()) {
            owx.step(&mut layer.wx.data, &layer.gwx.data);
            owh.step(&mut layer.wh.data, &layer.gwh.data);
            ob.step(&mut layer.b, &layer.gb);
        }
        let mut head_params: Vec<f64> = self.wy.clone();
        head_params.push(self.by);
        self.head_opt.step(&mut head_params, &head_grad);
        self.by = head_params.pop().expect("bias present");
        self.wy = head_params;
        loss
    }

    /// Trains over a utilisation series for `epochs` passes and returns
    /// the final-epoch mean squared error.
    ///
    /// Each training example is a sliding window of `config.window`
    /// samples predicting the next one — the paper's "resource usage of
    /// the next five minutes". Window order is shuffled per epoch
    /// (seeded) to decorrelate the per-sample Adam updates.
    pub fn train_series(&mut self, series: &[f64], epochs: usize) -> f64 {
        let w = self.config.window;
        if series.len() <= w {
            return 0.0;
        }
        let mut order: Vec<usize> = (0..series.len() - w).collect();
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(1));
        let mut last_epoch_loss = 0.0;
        for _ in 0..epochs.max(1) {
            use rand::seq::SliceRandom;
            order.shuffle(&mut rng);
            let mut total = 0.0;
            for &start in &order {
                let window = &series[start..start + w];
                let target = series[start + w];
                total += self.train_step(window, target);
            }
            last_epoch_loss = total / order.len().max(1) as f64;
        }
        last_epoch_loss
    }

    /// Mean squared error over a series without updating weights.
    pub fn evaluate(&self, series: &[f64]) -> f64 {
        let w = self.config.window;
        if series.len() <= w {
            return 0.0;
        }
        let mut total = 0.0;
        let mut count = 0usize;
        for start in 0..(series.len() - w) {
            let y = self.predict(&series[start..start + w]);
            let err = y - series[start + w];
            total += err * err;
            count += 1;
        }
        total / count.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> LstmConfig {
        LstmConfig {
            window: 4,
            hidden: 3,
            layers: 2,
            learning_rate: 0.01,
            seed: 5,
        }
    }

    /// Loss as a pure function of the model, for finite differences.
    fn loss_of(model: &UsagePredictor, window: &[f64], target: f64) -> f64 {
        let y = model.predict(window);
        (y - target) * (y - target)
    }

    #[test]
    fn gradients_match_finite_differences() {
        let window = [0.3, 0.7, 0.5, 0.9];
        let target = 0.6;
        let eps = 1e-6;

        // Compute analytic gradients by running one train step on a clone
        // with zero learning rate... instead, replicate the internals:
        // run train_step on a throwaway copy and read the gradient
        // buffers before the update by setting lr = 0.
        let mut model = UsagePredictor::new(LstmConfig {
            learning_rate: 0.0,
            ..tiny_config()
        });
        let reference = model.clone();
        model.train_step(&window, target);

        // Check a sample of parameters in every tensor of both layers.
        for li in 0..2 {
            for &idx in &[0usize, 3, 7] {
                let analytic = model.layers[li].gwx.data[idx];
                let mut plus = reference.clone();
                plus.layers[li].wx.data[idx] += eps;
                let mut minus = reference.clone();
                minus.layers[li].wx.data[idx] -= eps;
                let numeric = (loss_of(&plus, &window, target) - loss_of(&minus, &window, target))
                    / (2.0 * eps);
                assert!(
                    (analytic - numeric).abs() < 1e-5,
                    "layer {li} wx[{idx}]: analytic {analytic} vs numeric {numeric}"
                );
            }
            for &idx in &[0usize, 5] {
                let analytic = model.layers[li].gwh.data[idx];
                let mut plus = reference.clone();
                plus.layers[li].wh.data[idx] += eps;
                let mut minus = reference.clone();
                minus.layers[li].wh.data[idx] -= eps;
                let numeric = (loss_of(&plus, &window, target) - loss_of(&minus, &window, target))
                    / (2.0 * eps);
                assert!(
                    (analytic - numeric).abs() < 1e-5,
                    "layer {li} wh[{idx}]: analytic {analytic} vs numeric {numeric}"
                );
            }
            for &idx in &[1usize, 4, 10] {
                let analytic = model.layers[li].gb[idx];
                let mut plus = reference.clone();
                plus.layers[li].b[idx] += eps;
                let mut minus = reference.clone();
                minus.layers[li].b[idx] -= eps;
                let numeric = (loss_of(&plus, &window, target) - loss_of(&minus, &window, target))
                    / (2.0 * eps);
                assert!(
                    (analytic - numeric).abs() < 1e-5,
                    "layer {li} b[{idx}]: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn learns_a_sine_wave() {
        // A smooth periodic series like the diurnal utilisation.
        let series: Vec<f64> = (0..600)
            .map(|i| 0.65 + 0.3 * (i as f64 * 0.1).sin())
            .collect();
        let mut model = UsagePredictor::new(LstmConfig::default());
        let untrained = model.evaluate(&series);
        let trained_loss = model.train_series(&series, 3);
        let trained = model.evaluate(&series);
        assert!(
            trained < untrained * 0.2,
            "training reduces MSE: {untrained} → {trained}"
        );
        assert!(trained < 2e-3, "final MSE {trained}");
        assert!(trained_loss.is_finite());
    }

    #[test]
    fn predict_is_deterministic_and_bounded_behaviour() {
        let model = UsagePredictor::new(LstmConfig::default());
        let w = vec![0.5; 10];
        assert_eq!(model.predict(&w), model.predict(&w));
    }

    #[test]
    #[should_panic(expected = "window length mismatch")]
    fn predict_rejects_wrong_window() {
        let model = UsagePredictor::new(LstmConfig::default());
        model.predict(&[0.5; 3]);
    }

    #[test]
    fn short_series_is_a_noop() {
        let mut model = UsagePredictor::new(LstmConfig::default());
        assert_eq!(model.train_series(&[0.5; 5], 3), 0.0);
        assert_eq!(model.evaluate(&[0.5; 5]), 0.0);
    }
}
