//! Job running-time estimation (§5.2, Table 9).
//!
//! Lyra "relies on job's running time information (minimum running time
//! for elastic jobs), which can be predicted with profiling and ML
//! methods". The simulator treats the true running time as known and this
//! estimator injects the controlled error of Table 9's sensitivity
//! analysis: a configurable fraction of jobs get a prediction that is off
//! by a uniformly random margin of up to ±`max_error` (the paper uses a
//! 25 % bound).

use lyra_core::job::JobId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Estimator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeEstimatorConfig {
    /// Fraction of jobs whose prediction is wrong (Table 9 sweeps 0.2,
    /// 0.4, 0.6).
    pub wrong_fraction: f64,
    /// Maximum relative error of a wrong prediction (paper: 0.25).
    pub max_error: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for RuntimeEstimatorConfig {
    fn default() -> Self {
        RuntimeEstimatorConfig {
            wrong_fraction: 0.0,
            max_error: 0.25,
            seed: 0xE57,
        }
    }
}

/// A deterministic per-job running-time estimator.
///
/// A job's estimate is a pure function of `(config.seed, job id)`, so
/// every scheduling epoch sees the *same* (possibly wrong) estimate for a
/// given job — mispredictions are persistent, as they would be for a real
/// profiler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeEstimator {
    /// Configuration.
    pub config: RuntimeEstimatorConfig,
}

impl RuntimeEstimator {
    /// Creates an estimator.
    pub fn new(config: RuntimeEstimatorConfig) -> Self {
        RuntimeEstimator { config }
    }

    /// A perfect estimator (the default setup).
    pub fn perfect() -> Self {
        Self::new(RuntimeEstimatorConfig::default())
    }

    /// Estimates a job's running time given its true value.
    ///
    /// # Examples
    ///
    /// ```
    /// use lyra_core::JobId;
    /// use lyra_predictor::{RuntimeEstimator, RuntimeEstimatorConfig};
    /// let est = RuntimeEstimator::new(RuntimeEstimatorConfig {
    ///     wrong_fraction: 1.0,
    ///     max_error: 0.25,
    ///     seed: 1,
    /// });
    /// let e = est.estimate(JobId(7), 1000.0);
    /// assert!(e >= 750.0 && e <= 1250.0 && e != 1000.0);
    /// ```
    pub fn estimate(&self, job: JobId, true_running_time_s: f64) -> f64 {
        if self.config.wrong_fraction <= 0.0 {
            return true_running_time_s;
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ job.0.wrapping_mul(0x9E37_79B9));
        if !rng.gen_bool(self.config.wrong_fraction.clamp(0.0, 1.0)) {
            return true_running_time_s;
        }
        // Wrong prediction: uniform error in [-max, +max], excluding ~0 so
        // "wrong" means wrong.
        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        let magnitude = rng.gen_range(0.05..=self.config.max_error.max(0.05));
        true_running_time_s * (1.0 + sign * magnitude)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_estimator_is_identity() {
        let est = RuntimeEstimator::perfect();
        assert_eq!(est.estimate(JobId(1), 123.0), 123.0);
    }

    #[test]
    fn estimates_are_stable_per_job() {
        let est = RuntimeEstimator::new(RuntimeEstimatorConfig {
            wrong_fraction: 0.5,
            max_error: 0.25,
            seed: 3,
        });
        for id in 0..50u64 {
            let a = est.estimate(JobId(id), 500.0);
            let b = est.estimate(JobId(id), 500.0);
            assert_eq!(a, b, "job {id} estimate is stable");
        }
    }

    #[test]
    fn wrong_fraction_is_respected() {
        let est = RuntimeEstimator::new(RuntimeEstimatorConfig {
            wrong_fraction: 0.4,
            max_error: 0.25,
            seed: 11,
        });
        let wrong = (0..2000u64)
            .filter(|&id| est.estimate(JobId(id), 1000.0) != 1000.0)
            .count();
        let frac = wrong as f64 / 2000.0;
        assert!((frac - 0.4).abs() < 0.05, "wrong fraction {frac}");
    }

    #[test]
    fn errors_are_bounded() {
        let est = RuntimeEstimator::new(RuntimeEstimatorConfig {
            wrong_fraction: 1.0,
            max_error: 0.25,
            seed: 17,
        });
        for id in 0..500u64 {
            let e = est.estimate(JobId(id), 1000.0);
            assert!((750.0..=1250.0).contains(&e), "estimate {e}");
        }
    }

    #[test]
    fn both_signs_occur() {
        let est = RuntimeEstimator::new(RuntimeEstimatorConfig {
            wrong_fraction: 1.0,
            max_error: 0.25,
            seed: 23,
        });
        let over = (0..200u64)
            .filter(|&id| est.estimate(JobId(id), 100.0) > 100.0)
            .count();
        assert!((40..160).contains(&over), "over-estimates {over}");
    }
}
