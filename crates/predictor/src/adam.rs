//! The Adam optimiser (§6: "We apply Adam optimizer and use MSE to compute
//! loss").
//!
//! Standard Adam with bias correction, operating on flat parameter slices
//! so every tensor of the LSTM shares one implementation.

use serde::{Deserialize, Serialize};

/// Adam state for one parameter tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates an optimiser for a tensor of `len` parameters with the
    /// given learning rate and default betas (0.9 / 0.999).
    pub fn new(len: usize, lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; len],
            v: vec![0.0; len],
            t: 0,
        }
    }

    /// Applies one update: `params -= lr · m̂ / (√v̂ + ε)`.
    ///
    /// # Panics
    ///
    /// Panics if `params` and `grads` differ from the constructed length.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "param length mismatch");
        assert_eq!(grads.len(), self.m.len(), "grad length mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grads[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimises_a_quadratic() {
        // f(x) = (x - 3)²; gradient 2(x - 3).
        let mut x = vec![0.0];
        let mut opt = Adam::new(1, 0.1);
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-3, "x = {}", x[0]);
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn handles_multiple_params_independently() {
        let mut x = vec![0.0, 10.0];
        let mut opt = Adam::new(2, 0.05);
        for _ in 0..2000 {
            let g = vec![2.0 * (x[0] + 1.0), 2.0 * (x[1] - 5.0)];
            opt.step(&mut x, &g);
        }
        assert!((x[0] + 1.0).abs() < 1e-2);
        assert!((x[1] - 5.0).abs() < 1e-2);
    }

    #[test]
    fn first_step_is_lr_sized() {
        // With bias correction the first step magnitude is ≈ lr.
        let mut x = vec![0.0];
        let mut opt = Adam::new(1, 0.01);
        opt.step(&mut x, &[42.0]);
        assert!((x[0].abs() - 0.01).abs() < 1e-6, "step {}", x[0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_mismatched_grads() {
        Adam::new(2, 0.1).step(&mut [0.0, 0.0], &[1.0]);
    }
}
