//! Minimal dense-matrix support for the LSTM.
//!
//! Row-major `f64` matrices with exactly the operations backpropagation
//! through an LSTM needs: matrix–vector products, transposed products,
//! outer-product accumulation and elementwise updates.

use serde::{Deserialize, Serialize};

/// A row-major dense matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage, `rows × cols` long.
    pub data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *yr = acc;
        }
        y
    }

    /// `y = Aᵀ·x` without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (yc, a) in y.iter_mut().zip(row) {
                *yc += a * xr;
            }
        }
        y
    }

    /// `self += scale · u·vᵀ` (outer-product accumulation, the gradient of
    /// a linear layer).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add_outer(&mut self, u: &[f64], v: &[f64], scale: f64) {
        assert_eq!(u.len(), self.rows, "add_outer rows mismatch");
        assert_eq!(v.len(), self.cols, "add_outer cols mismatch");
        for (r, &ur) in u.iter().enumerate() {
            let s = scale * ur;
            if s == 0.0 {
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (x, &vc) in row.iter_mut().zip(v) {
                *x += s * vc;
            }
        }
    }

    /// Sets every element to zero (gradient reset).
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_basics() {
        let a = Matrix {
            rows: 2,
            cols: 3,
            data: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        };
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(a.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn transpose_consistency() {
        // ⟨A·x, y⟩ == ⟨x, Aᵀ·y⟩ for random-ish values.
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f64 * 0.37 - 1.0);
        let x = [0.5, -0.25, 1.5, 2.0];
        let y = [1.0, -2.0, 0.5];
        let ax = a.matvec(&x);
        let aty = a.matvec_t(&y);
        let lhs: f64 = ax.iter().zip(&y).map(|(p, q)| p * q).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(p, q)| p * q).sum();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn outer_accumulation() {
        let mut a = Matrix::zeros(2, 2);
        a.add_outer(&[1.0, 2.0], &[3.0, 4.0], 0.5);
        assert_eq!(a.data, vec![1.5, 2.0, 3.0, 4.0]);
        a.clear();
        assert!(a.data.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn element_access() {
        let mut a = Matrix::zeros(2, 3);
        *a.get_mut(1, 2) = 7.0;
        assert_eq!(a.get(1, 2), 7.0);
        assert_eq!(a.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_rejects_bad_shape() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }
}
