//! Determinism and convergence tests for the predictor stack:
//! fixed-seed LSTM training converges on a synthetic diurnal curve, and
//! every component (LSTM, Adam state, runtime estimator) reproduces
//! bit-identical results across runs and across a serde round-trip.

use lyra_core::JobId;
use lyra_predictor::{
    Adam, LstmConfig, RuntimeEstimator, RuntimeEstimatorConfig, UsagePredictor,
};

/// Two days of five-minute samples of the paper's diurnal inference
/// load shape: a sine with a 288-sample (24 h) period.
fn diurnal_series() -> Vec<f64> {
    (0..576)
        .map(|t| 0.5 + 0.3 * (2.0 * std::f64::consts::PI * t as f64 / 288.0).sin())
        .collect()
}

fn config() -> LstmConfig {
    LstmConfig {
        window: 10,
        hidden: 8,
        layers: 2,
        learning_rate: 0.01,
        seed: 42,
    }
}

#[test]
fn fixed_seed_training_converges_on_a_diurnal_curve() {
    let series = diurnal_series();
    let mut model = UsagePredictor::new(config());
    let before = model.evaluate(&series);
    model.train_series(&series, 4);
    let after = model.evaluate(&series);
    assert!(
        after < before / 4.0,
        "training barely moved the loss: {before:.5} -> {after:.5}"
    );
    assert!(after < 0.01, "converged MSE too high: {after:.5}");
    // Spot-check a one-step-ahead prediction against the curve.
    let w = config().window;
    let predicted = model.predict(&series[100..100 + w]);
    assert!(
        (predicted - series[100 + w]).abs() < 0.15,
        "prediction {predicted:.3} far from target {:.3}",
        series[100 + w]
    );
}

#[test]
fn training_is_bitwise_deterministic_across_runs() {
    let series = diurnal_series();
    let train = || {
        let mut m = UsagePredictor::new(config());
        m.train_series(&series, 2);
        m
    };
    let (a, b) = (train(), train());
    let w = config().window;
    for start in [0usize, 57, 199, 301] {
        let window = &series[start..start + w];
        let (pa, pb) = (a.predict(window), b.predict(window));
        assert_eq!(
            pa.to_bits(),
            pb.to_bits(),
            "window@{start}: {pa} vs {pb} differ across identical runs"
        );
    }
}

#[test]
fn serialized_predictor_reproduces_predictions_bit_for_bit() {
    let series = diurnal_series();
    let mut model = UsagePredictor::new(config());
    model.train_series(&series, 1);
    let json = serde_json::to_string(&model).expect("serialise predictor");
    let restored: UsagePredictor = serde_json::from_str(&json).expect("deserialise predictor");
    let w = config().window;
    for start in [3usize, 88, 240] {
        let window = &series[start..start + w];
        assert_eq!(
            model.predict(window).to_bits(),
            restored.predict(window).to_bits(),
            "round-tripped predictor diverged at window {start}"
        );
    }
}

#[test]
fn adam_serde_resume_matches_an_uninterrupted_run() {
    let grads = |step: u64| -> Vec<f64> {
        (0..4).map(|i| ((step * 7 + i) % 13) as f64 / 13.0 - 0.5).collect()
    };
    // Uninterrupted: 20 steps straight through.
    let mut params_a = vec![0.1, -0.2, 0.3, -0.4];
    let mut opt_a = Adam::new(4, 0.01);
    for s in 0..20 {
        opt_a.step(&mut params_a, &grads(s));
    }
    // Interrupted: serialise optimiser + params at step 10, resume.
    let mut params_b = vec![0.1, -0.2, 0.3, -0.4];
    let mut opt_b = Adam::new(4, 0.01);
    for s in 0..10 {
        opt_b.step(&mut params_b, &grads(s));
    }
    let snapshot = serde_json::to_string(&(&opt_b, &params_b)).expect("serialise");
    let (mut opt_b, mut params_b): (Adam, Vec<f64>) =
        serde_json::from_str(&snapshot).expect("deserialise");
    for s in 10..20 {
        opt_b.step(&mut params_b, &grads(s));
    }
    assert_eq!(opt_a.steps(), opt_b.steps());
    for (a, b) in params_a.iter().zip(&params_b) {
        assert_eq!(a.to_bits(), b.to_bits(), "resume diverged: {a} vs {b}");
    }
}

#[test]
fn runtime_estimates_are_reproducible_across_runs_and_serde() {
    let cfg = RuntimeEstimatorConfig {
        wrong_fraction: 0.3,
        max_error: 0.25,
        seed: 9,
    };
    let est = RuntimeEstimator::new(cfg);
    let json = serde_json::to_string(&est).expect("serialise estimator");
    let restored: RuntimeEstimator = serde_json::from_str(&json).expect("deserialise estimator");
    let mut wrong = 0;
    for id in 0..200u64 {
        let a = est.estimate(JobId(id), 1000.0);
        let b = est.estimate(JobId(id), 1000.0);
        let c = restored.estimate(JobId(id), 1000.0);
        assert_eq!(a.to_bits(), b.to_bits(), "job {id}: estimate not stable");
        assert_eq!(a.to_bits(), c.to_bits(), "job {id}: serde changed the estimate");
        if a != 1000.0 {
            wrong += 1;
        }
    }
    // wrong_fraction = 0.3 over 200 jobs: the perturbed share must be
    // in the right ballpark, or the seeding is broken.
    assert!((30..=90).contains(&wrong), "wrong count {wrong} implausible for 0.3");
}
