//! Metamorphic properties over full simulations.
//!
//! Each property states a relation two *related* runs must satisfy —
//! no oracle for the absolute answer is needed. The scenarios are the
//! pinned tiny generators (`lyra_sim::generators`), so each test runs
//! a handful of day-long 64-GPU simulations in well under a second.
//!
//! The seeds are pinned: metamorphic relations over a full
//! discrete-event scheduler are monotone in expectation, not pointwise
//! for every seed (e.g. extra capacity can reshuffle placement enough
//! to delay one specific job). Pinning seeds makes each property a
//! deterministic regression check over several independent workloads
//! rather than a flaky universal claim.

use lyra_core::SpeedFactors;
use lyra_oracle::props;
use lyra_sim::scenario::generators::{tiny_basic, tiny_cluster, tiny_traces};
use lyra_sim::{run_scenario, transform, FaultConfig, FaultPlan, SimReport};

const SEEDS: [u64; 4] = [1, 2, 3, 5];

fn run(seed: u64, extra_training_servers: u32) -> SimReport {
    let mut scenario = tiny_basic(seed);
    scenario.cluster.training_servers = tiny_cluster().training_servers + extra_training_servers;
    let (jobs, inference) = tiny_traces(seed);
    run_scenario(&scenario, &jobs, &inference).expect("run")
}

/// Adding an idle training server never increases mean queuing delay
/// under Lyra (more capacity can only absorb demand sooner).
#[test]
fn extra_idle_server_never_increases_mean_queuing() {
    for seed in SEEDS {
        let base = run(seed, 0);
        let bigger = run(seed, 1);
        assert!(
            bigger.queuing.mean <= base.queuing.mean + 1e-9,
            "seed {seed}: queuing mean rose from {:.3}s to {:.3}s with an extra idle server",
            base.queuing.mean,
            bigger.queuing.mean
        );
        assert!(
            bigger.completed >= base.completed,
            "seed {seed}: completions dropped with an extra idle server"
        );
    }
}

/// Raising one elastic job's `w_max` never worsens that job's own JCT:
/// the scheduler may scale it out further, never less.
#[test]
fn raising_w_max_never_worsens_own_jct() {
    for seed in SEEDS {
        let scenario = tiny_basic(seed);
        let (mut jobs, inference) = tiny_traces(seed);
        transform::set_elastic_fraction(&mut jobs, 0.9, seed);
        let base = run_scenario(&scenario, &jobs, &inference).expect("run");

        // Raise the scaling headroom of the first elastic job.
        let (idx, id) = jobs
            .jobs
            .iter()
            .enumerate()
            .find_map(|(i, j)| j.is_elastic().then(|| (i, j.id)))
            .expect("the 90%-elastic trace has an elastic job");
        let job = &mut jobs.jobs[idx];
        let el = job.elasticity.as_mut().expect("elastic");
        el.w_max += 2;
        let scaled = run_scenario(&scenario, &jobs, &inference).expect("run");

        let jct = |r: &SimReport| {
            r.records
                .iter()
                .find(|rec| rec.id == id)
                .and_then(|rec| rec.jct_s())
                .expect("pinned job completes")
        };
        assert!(
            jct(&scaled) <= jct(&base) + 1e-9,
            "seed {seed}: job {id:?} JCT worsened from {:.1}s to {:.1}s after raising w_max",
            jct(&base),
            jct(&scaled)
        );
    }
}

/// A fault-free run dominates the same seed with faults injected: at
/// least as many completions, and no worse mean JCT or queuing.
#[test]
fn fault_free_run_dominates_faulted_twin() {
    for seed in SEEDS {
        let clean = run(seed, 0);
        let mut scenario = tiny_basic(seed);
        scenario.faults = Some(FaultPlan::generate(
            &FaultConfig::moderate(2.0 * 86_400.0),
            tiny_cluster().training_servers + tiny_cluster().inference_servers,
            seed,
        ));
        let (jobs, inference) = tiny_traces(seed);
        let faulted = run_scenario(&scenario, &jobs, &inference).expect("run");

        assert!(
            faulted.fault.injected > 0,
            "seed {seed}: the fault plan must actually inject faults"
        );
        assert!(
            clean.completed >= faulted.completed,
            "seed {seed}: the faulted run completed more jobs than the fault-free one"
        );
        assert!(
            clean.jct.mean <= faulted.jct.mean + 1e-9,
            "seed {seed}: mean JCT improved under faults ({:.1}s clean vs {:.1}s faulted)",
            clean.jct.mean,
            faulted.jct.mean
        );
        assert!(
            clean.queuing.mean <= faulted.queuing.mean + 1e-9,
            "seed {seed}: mean queuing improved under faults ({:.1}s clean vs {:.1}s faulted)",
            clean.queuing.mean,
            faulted.queuing.mean
        );
    }
}

/// A uniformly faster fleet never lengthens mean JCT or completes
/// fewer jobs (speed-factor monotonicity over the scenario zoo's
/// heterogeneous dimension).
#[test]
fn faster_fleet_never_worsens_mean_jct() {
    for seed in SEEDS {
        let scenario = tiny_basic(seed);
        let (jobs, inference) = tiny_traces(seed);
        props::check_speed_factor_monotonicity(
            &scenario,
            &jobs,
            &inference,
            SpeedFactors { v100: 0.8, t4: 0.8 },
            SpeedFactors {
                v100: 1.25,
                t4: 1.25,
            },
        )
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// Costlier shrink/expand never shortens mean JCT on the same
/// malleable trace (resize-cost monotonicity).
#[test]
fn costlier_resizes_never_shorten_mean_jct() {
    for seed in SEEDS {
        let scenario = tiny_basic(seed);
        let (mut jobs, inference) = tiny_traces(seed);
        transform::set_elastic_fraction(&mut jobs, 0.7, seed ^ 1);
        props::check_shrink_cost_monotonicity(
            &scenario,
            &jobs,
            &inference,
            (0.0, 0.0),
            (120.0, 180.0),
        )
        .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// Stretching every deadline never creates new misses, and — because
/// deadlines never influence scheduling — leaves the schedule itself
/// bit-identical (deadline-slack monotonicity, exact).
#[test]
fn slacker_deadlines_never_miss_more() {
    for seed in SEEDS {
        let scenario = tiny_basic(seed);
        let (jobs, inference) = tiny_traces(seed);
        props::check_deadline_slack_monotonicity(&scenario, &jobs, &inference, 0.5, 3.0, seed ^ 1)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// Permuting the submission order of jobs that arrive at the same tick
/// leaves the report invariant: the scheduler's behaviour depends on
/// (time, id), never on trace-vector position.
#[test]
fn same_tick_arrival_order_is_irrelevant() {
    for seed in SEEDS {
        let scenario = tiny_basic(seed);
        let (mut jobs, inference) = tiny_traces(seed);
        // Quantise submissions onto 10-minute ticks so ties exist.
        for j in &mut jobs.jobs {
            j.submit_time_s = (j.submit_time_s / 600.0).floor() * 600.0;
        }
        let base = run_scenario(&scenario, &jobs, &inference).expect("run");

        // Reverse every maximal run of equal submit times.
        let mut permuted = jobs.clone();
        let mut i = 0;
        let mut ties = 0usize;
        while i < permuted.jobs.len() {
            let mut k = i + 1;
            while k < permuted.jobs.len()
                && permuted.jobs[k].submit_time_s == permuted.jobs[i].submit_time_s
            {
                k += 1;
            }
            if k - i > 1 {
                permuted.jobs[i..k].reverse();
                ties += 1;
            }
            i = k;
        }
        assert!(ties > 0, "seed {seed}: quantisation produced no ties");
        let perm = run_scenario(&scenario, &permuted, &inference).expect("run");

        let sorted = |r: &SimReport| {
            let mut recs = r.records.clone();
            recs.sort_by_key(|rec| rec.id);
            recs
        };
        assert_eq!(
            sorted(&base),
            sorted(&perm),
            "seed {seed}: per-job records changed under a same-tick permutation"
        );
        assert_eq!(base.queuing, perm.queuing, "seed {seed}: queuing stats moved");
        assert_eq!(base.jct, perm.jct, "seed {seed}: JCT stats moved");
        assert_eq!(
            (base.completed, base.loan_ops, base.reclaim_ops, base.scaling_ops),
            (perm.completed, perm.loan_ops, perm.reclaim_ops, perm.scaling_ops),
            "seed {seed}: operation counts moved"
        );
    }
}
