//! No NaN ever escapes into `SimReport` JSON: every report a
//! simulation can produce — including the degenerate empty-trace run —
//! passes the non-finite-field audit and serialises cleanly.

use lyra_sim::scenario::generators::{tiny_basic, tiny_traces};
use lyra_sim::{run_scenario, FaultConfig, FaultPlan};

#[test]
fn empty_trace_report_has_no_non_finite_fields() {
    let scenario = tiny_basic(1);
    let (mut jobs, inference) = tiny_traces(1);
    jobs.jobs.clear();
    let report = run_scenario(&scenario, &jobs, &inference).expect("empty run");
    assert_eq!(report.submitted, 0);
    assert_eq!(report.non_finite_fields(), Vec::<String>::new());
    serde_json::to_string(&report).expect("empty report serialises");
}

#[test]
fn tiny_run_reports_have_no_non_finite_fields() {
    for seed in [1u64, 7, 13] {
        let mut scenario = tiny_basic(seed);
        if seed == 13 {
            scenario.faults = Some(FaultPlan::generate(
                &FaultConfig::moderate(2.0 * 86_400.0),
                16,
                seed,
            ));
        }
        let (jobs, inference) = tiny_traces(seed);
        let report = run_scenario(&scenario, &jobs, &inference).expect("run");
        assert_eq!(
            report.non_finite_fields(),
            Vec::<String>::new(),
            "seed {seed}: non-finite values leaked into the report"
        );
        let json = serde_json::to_string(&report).expect("report serialises");
        assert!(!json.is_empty());
    }
}
