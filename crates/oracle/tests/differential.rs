//! Differential oracle suite: the production DP/greedy/BFD paths
//! checked against brute-force ground truth on proptest-generated
//! small instances (≤ 6 jobs / ≤ 8 servers).

use lyra_core::CostModel;
use lyra_oracle::{gen, mckp, placement, reclaim};
use lyra_sim::scenario::generators::{tiny_basic, tiny_traces};
use lyra_sim::{run_scenario, run_scenario_observed, transform, ObserverConfig};
use proptest::prelude::*;

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig { cases: 96, ..Default::default() })]

    /// The production MCKP DP is exact on arbitrary small instances.
    #[test]
    fn dp_is_exact(instance in gen::arbitrary_mckp()) {
        let (groups, capacity) = instance;
        prop_assert_eq!(mckp::check_dp_exact(&groups, capacity), Ok(()));
    }

    /// …and on production-shaped concave instances too.
    #[test]
    fn dp_is_exact_on_concave_instances(instance in gen::concave_mckp()) {
        let (groups, capacity) = instance;
        prop_assert_eq!(mckp::check_dp_exact(&groups, capacity), Ok(()));
    }

    /// The greedy ablation never beats the optimum and meets its
    /// 1/2-guarantee on the concave instances phase 2 actually builds.
    #[test]
    fn greedy_meets_its_guarantee(instance in gen::concave_mckp()) {
        let (groups, capacity) = instance;
        prop_assert_eq!(mckp::check_greedy_bound(&groups, capacity), Ok(()));
    }

    /// BFD gang placement accepts exactly the feasible gangs, keeps its
    /// accounting straight, and stays atomic on failure.
    #[test]
    fn placement_matches_exhaustive_feasibility(inst in gen::gang_instance()) {
        prop_assert_eq!(placement::check_gang_placement(&inst), Ok(()));
    }

    /// Lyra's greedy reclaiming is sound and never beats the exhaustive
    /// minimum-preemption optimum, under every cost model.
    #[test]
    fn reclaim_never_beats_the_optimum(req in gen::reclaim_instance()) {
        for model in [CostModel::ServerFraction, CostModel::GpuFraction, CostModel::JobCount] {
            prop_assert_eq!(reclaim::check_reclaim_optimality(&req, model), Ok(()));
        }
    }

    /// Scaling each group's values by a positive per-generation factor
    /// (the shape phase 2's tables take on a heterogeneous fleet)
    /// preserves concavity, so the DP must stay exact and the greedy
    /// 1/2-guarantee must keep holding.
    #[test]
    fn dp_and_greedy_hold_on_hetero_value_tables(instance in gen::hetero_mckp()) {
        let (groups, capacity) = instance;
        prop_assert_eq!(mckp::check_dp_exact(&groups, capacity), Ok(()));
        prop_assert_eq!(mckp::check_greedy_bound(&groups, capacity), Ok(()));
    }
}

// Whole-simulation differentials are costlier per case than the
// combinatorial oracles above, so they run a smaller sample.
proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig { cases: 12, ..Default::default() })]

    /// A malleable scenario is a pure function of its spec: replaying
    /// the identical spec yields identical per-job records and
    /// operation counts, resize costs and all.
    #[test]
    fn malleable_runs_are_deterministic(spec in gen::malleable_spec()) {
        let scenario = tiny_basic(spec.seed);
        let (mut jobs, inference) = tiny_traces(spec.seed);
        transform::set_elastic_fraction(&mut jobs, spec.elastic_fraction, spec.seed ^ 1);
        transform::set_resize_costs(&mut jobs, spec.shrink_s, spec.expand_s);
        let a = run_scenario(&scenario, &jobs, &inference).expect("first run");
        let b = run_scenario(&scenario, &jobs, &inference).expect("second run");
        prop_assert_eq!(&a.records, &b.records);
        prop_assert_eq!(
            (a.completed, a.scaling_ops, a.loan_ops, a.reclaim_ops),
            (b.completed, b.scaling_ops, b.loan_ops, b.reclaim_ops)
        );
    }

    /// The report's deadline rollup and the observer's event stream are
    /// independent computations of the same facts: every job that
    /// completed late emits exactly one `DeadlineMiss` line, and every
    /// traced job carries the deadline the transform stamped.
    #[test]
    fn deadline_rollup_matches_event_stream(spec in gen::deadline_spec()) {
        let scenario = tiny_basic(spec.seed);
        let (mut jobs, inference) = tiny_traces(spec.seed);
        transform::set_deadlines(&mut jobs, spec.slack_mult, spec.seed ^ 1);
        let r = run_scenario_observed(&scenario, &jobs, &inference, ObserverConfig::default())
            .expect("observed run");
        let event_misses = r
            .events
            .iter()
            .filter(|line| line.contains("\"DeadlineMiss\""))
            .count();
        let completed_late = r
            .records
            .iter()
            .filter(|rec| rec.jct_s().is_some() && rec.missed_deadline())
            .count();
        prop_assert_eq!(event_misses, completed_late);
        prop_assert_eq!(r.deadlines.with_deadline, jobs.jobs.len());
        prop_assert_eq!(r.deadlines.met + r.deadlines.missed, r.deadlines.with_deadline);
        prop_assert!(r.deadlines.missed >= completed_late);
    }
}
