//! Differential oracle suite: the production DP/greedy/BFD paths
//! checked against brute-force ground truth on proptest-generated
//! small instances (≤ 6 jobs / ≤ 8 servers).

use lyra_core::CostModel;
use lyra_oracle::{gen, mckp, placement, reclaim};
use proptest::prelude::*;

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig { cases: 96, ..Default::default() })]

    /// The production MCKP DP is exact on arbitrary small instances.
    #[test]
    fn dp_is_exact(instance in gen::arbitrary_mckp()) {
        let (groups, capacity) = instance;
        prop_assert_eq!(mckp::check_dp_exact(&groups, capacity), Ok(()));
    }

    /// …and on production-shaped concave instances too.
    #[test]
    fn dp_is_exact_on_concave_instances(instance in gen::concave_mckp()) {
        let (groups, capacity) = instance;
        prop_assert_eq!(mckp::check_dp_exact(&groups, capacity), Ok(()));
    }

    /// The greedy ablation never beats the optimum and meets its
    /// 1/2-guarantee on the concave instances phase 2 actually builds.
    #[test]
    fn greedy_meets_its_guarantee(instance in gen::concave_mckp()) {
        let (groups, capacity) = instance;
        prop_assert_eq!(mckp::check_greedy_bound(&groups, capacity), Ok(()));
    }

    /// BFD gang placement accepts exactly the feasible gangs, keeps its
    /// accounting straight, and stays atomic on failure.
    #[test]
    fn placement_matches_exhaustive_feasibility(inst in gen::gang_instance()) {
        prop_assert_eq!(placement::check_gang_placement(&inst), Ok(()));
    }

    /// Lyra's greedy reclaiming is sound and never beats the exhaustive
    /// minimum-preemption optimum, under every cost model.
    #[test]
    fn reclaim_never_beats_the_optimum(req in gen::reclaim_instance()) {
        for model in [CostModel::ServerFraction, CostModel::GpuFraction, CostModel::JobCount] {
            prop_assert_eq!(reclaim::check_reclaim_optimality(&req, model), Ok(()));
        }
    }
}
