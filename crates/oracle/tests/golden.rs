//! The golden-trace gate as a test: every pinned case must match its
//! committed log byte-for-byte (each case is run twice, so run-to-run
//! nondeterminism also fails here). `lyra-bench golden --bless`
//! regenerates the logs after an intended behavioural change.

use lyra_oracle::golden;

#[test]
fn faulted_case_fires_at_least_one_alert() {
    // The telemetry alert rules must actually trip on the pinned
    // faulted scenario — otherwise "alerts are golden-pinned" would be
    // vacuously true. Resolves are not required (a debt can stay open
    // to the end of the run), but at least one fire must appear.
    let case = golden::cases()
        .into_iter()
        .find(|c| c.scenario.faults.is_some())
        .expect("a faulted golden case exists");
    let log = case.event_log().expect("faulted case runs");
    let fired = log
        .iter()
        .filter(|l| l.contains("\"Alert\"") && l.contains("\"fired\":true"))
        .count();
    assert!(
        fired >= 1,
        "no Alert events in the faulted golden log ({} lines)",
        log.len()
    );
}

#[test]
fn committed_golden_logs_match() {
    let diffs = golden::compare(&golden::default_dir());
    assert!(
        diffs.is_empty(),
        "golden gate fired:\n{}",
        diffs
            .iter()
            .map(|d| format!("  {}: {}", d.name, d.detail))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
