//! The golden-trace gate as a test: every pinned case must match its
//! committed log byte-for-byte (each case is run twice, so run-to-run
//! nondeterminism also fails here). `lyra-bench golden --bless`
//! regenerates the logs after an intended behavioural change.

use lyra_oracle::golden;

#[test]
fn committed_golden_logs_match() {
    let diffs = golden::compare(&golden::default_dir());
    assert!(
        diffs.is_empty(),
        "golden gate fired:\n{}",
        diffs
            .iter()
            .map(|d| format!("  {}: {}", d.name, d.detail))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
