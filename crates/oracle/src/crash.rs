//! The kill-and-resume crash-storm harness.
//!
//! Proves the checkpoint/restore subsystem end to end: the faulted
//! golden scenario is killed at seeded random epochs by injecting a
//! [`FaultKind::SchedulerCrash`], the crash-point
//! [`EngineState`](lyra_sim::EngineState) is
//! saved through the durable [`SimCheckpoint`] file format (atomic
//! write, checksum header), the JSONL sink is torn mid-line to
//! simulate a crash cutting a write, and the run is restored and
//! driven to completion. The gate is *byte-identical equivalence*: the
//! resumed run's event log, delay-attribution table, `SimReport` JSON
//! (wall-clock profile excluded), on-disk JSONL sink, telemetry series
//! export (CSV) and Prometheus exposition must all equal the
//! uninterrupted run's, for every kill point.
//!
//! One kill point per storm is deliberately placed past the end of the
//! run: the crash event then never fires, and the report must *still*
//! match the baseline — inserting a never-fired fault into the plan
//! must be unobservable.
//!
//! The storm also exercises the refusal paths once per run: a
//! bit-flipped, a truncated and a version-bumped copy of a real
//! checkpoint must each be rejected with the right typed
//! [`CheckpointError`], never partially loaded.

use lyra_sim::checkpoint;
use lyra_sim::{
    build_scenario, CheckpointError, FaultEvent, FaultKind, ObserverConfig, RunOutcome,
    SimCheckpoint, SimReport,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs;
use std::path::{Path, PathBuf};

/// Outcome of one kill point in a storm.
#[derive(Debug)]
pub struct KillOutcome {
    /// Simulated time the scheduler was killed at, seconds.
    pub kill_time_s: f64,
    /// Whether the kill actually interrupted the run (`false` when the
    /// kill landed after the run had already finished — the crash event
    /// never fired and the comparison degenerates to determinism).
    pub resumed: bool,
    /// Every divergence from the uninterrupted baseline (empty = pass).
    pub failures: Vec<String>,
}

/// Summary of a whole crash storm.
#[derive(Debug)]
pub struct StormReport {
    /// Scenario name the storm ran against.
    pub name: String,
    /// Per-kill outcomes, in kill order.
    pub kills: Vec<KillOutcome>,
}

impl StormReport {
    /// `true` when every kill point matched the baseline byte-for-byte.
    pub fn passed(&self) -> bool {
        self.kills.iter().all(|k| k.failures.is_empty())
    }

    /// Human-readable per-kill summary for CLI output.
    pub fn render(&self) -> String {
        let mut out = format!("crash storm on `{}`: {} kill points\n", self.name, self.kills.len());
        for (i, k) in self.kills.iter().enumerate() {
            let what = if k.resumed { "kill+resume" } else { "past end" };
            if k.failures.is_empty() {
                out.push_str(&format!("  kill {i:2} @ {:>9.1}s  {what:11}  ok\n", k.kill_time_s));
            } else {
                out.push_str(&format!(
                    "  kill {i:2} @ {:>9.1}s  {what:11}  FAIL\n",
                    k.kill_time_s
                ));
                for f in &k.failures {
                    out.push_str(&format!("      {f}\n"));
                }
            }
        }
        out.push_str(if self.passed() {
            "resume ≡ uninterrupted: PASS"
        } else {
            "resume ≡ uninterrupted: FAIL"
        });
        out
    }
}

/// The uninterrupted run's artifacts, captured once per storm.
struct Baseline {
    /// Report JSON with the wall-clock profile zeroed.
    report_json: String,
    /// Ring-buffer event log lines.
    events: Vec<String>,
    /// Rendered delay-attribution table derived from the log.
    table: String,
    /// Raw bytes of the on-disk JSONL sink.
    sink_bytes: Vec<u8>,
    /// Telemetry series export (CSV long format) — the bounded-memory
    /// ring series are checkpointed engine state, so a resumed run must
    /// reproduce the export byte-for-byte.
    series_csv: String,
    /// Prometheus text exposition rendered from the telemetry store and
    /// the final registry snapshot.
    prom: String,
    /// `why` rendering for the first preemption victim, top-5 `blame`
    /// table and flow-annotated provenance trace, all derived from the
    /// log — the online graph is pinned through the report JSON, these
    /// pin the offline rendering pipeline too.
    why: String,
    blame: String,
    prov_trace: String,
    /// Simulated time of the last logged event, seconds.
    last_s: f64,
}

/// Derives the provenance artifacts from a JSONL event log: the `why`
/// rendering for the log's first preemption victim (or a fixed line if
/// none), the top-5 blame table and the provenance-annotated Chrome
/// trace.
fn provenance_artifacts(events: &[String]) -> Result<(String, String, String), String> {
    let parsed =
        lyra_obs::parse_log(&events.join("\n")).map_err(|e| format!("log does not parse: {e}"))?;
    let victim = parsed.iter().find_map(|e| match &e.event {
        lyra_obs::SchedEvent::JobPreempt { job, .. } => Some(*job),
        _ => None,
    });
    let why = match victim {
        Some(job) => lyra_obs::why_from_log(&parsed, job).map_err(|e| format!("why: {e}"))?,
        None => "no preemption victim in log\n".to_string(),
    };
    let blame = lyra_obs::blame_from_log(&parsed, 5);
    Ok((why, blame, lyra_obs::export_provenance_trace(&parsed)))
}

/// Renders the Prometheus exposition a finished run would serve.
fn prom_text(report: &SimReport) -> String {
    lyra_obs::render_prometheus(&report.telemetry, report.metrics.last())
}

/// Serializes a report with its wall-clock profile zeroed; timing data
/// is run-dependent and explicitly outside the equivalence contract.
fn report_json(report: &SimReport) -> Result<String, String> {
    let mut r = report.clone();
    r.profile = lyra_obs::Profile::default();
    serde_json::to_string(&r).map_err(|e| format!("serializing report: {e:?}"))
}

/// Derives the rendered attribution table from a JSONL event log.
fn attribution_table(events: &[String]) -> Result<String, String> {
    let parsed =
        lyra_obs::parse_log(&events.join("\n")).map_err(|e| format!("log does not parse: {e}"))?;
    Ok(lyra_obs::summarize(&lyra_obs::attribute_log(&parsed)).render_table())
}

/// Runs a scenario under full observation with a JSONL sink at `sink`,
/// returning the outcome.
fn run_observed(
    scenario: &lyra_sim::Scenario,
    jobs: &lyra_trace::JobTrace,
    inference: &lyra_trace::InferenceTrace,
    sink: &Path,
) -> Result<RunOutcome, String> {
    let _ = fs::remove_file(sink);
    build_scenario(scenario, jobs, inference)
        .map_err(|e| format!("building `{}`: {e}", scenario.name))?
        .with_observer(ObserverConfig {
            sink_path: Some(sink.to_path_buf()),
            ..ObserverConfig::default()
        })
        .map_err(|e| format!("opening sink {}: {e}", sink.display()))?
        .run_to_outcome(&scenario.name)
        .map_err(|e| format!("running `{}`: {e}", scenario.name))
}

/// Compares one finished run against the baseline; returns every
/// divergence as a message.
fn compare(report: &SimReport, sink: &Path, base: &Baseline) -> Vec<String> {
    let mut failures = Vec::new();
    if report.events != base.events {
        let first = report
            .events
            .iter()
            .zip(&base.events)
            .position(|(a, b)| a != b)
            .map_or_else(
                || format!("length {} vs {}", report.events.len(), base.events.len()),
                |i| format!("first diff at line {i}"),
            );
        failures.push(format!("event log diverges ({first})"));
    }
    match attribution_table(&report.events) {
        Ok(table) if table != base.table => {
            failures.push("attribution table diverges".to_string());
        }
        Ok(_) => {}
        Err(e) => failures.push(format!("attribution table: {e}")),
    }
    match report_json(report) {
        Ok(json) if json != base.report_json => {
            failures.push("SimReport JSON diverges".to_string());
        }
        Ok(_) => {}
        Err(e) => failures.push(e),
    }
    match fs::read(sink) {
        Ok(bytes) if bytes != base.sink_bytes => failures.push(format!(
            "JSONL sink bytes diverge ({} vs {} bytes)",
            bytes.len(),
            base.sink_bytes.len()
        )),
        Ok(_) => {}
        Err(e) => failures.push(format!("reading sink {}: {e}", sink.display())),
    }
    if report.telemetry.to_csv() != base.series_csv {
        failures.push("telemetry series export diverges".to_string());
    }
    if prom_text(report) != base.prom {
        failures.push("Prometheus exposition diverges".to_string());
    }
    match provenance_artifacts(&report.events) {
        Ok((why, blame, prov_trace)) => {
            if why != base.why {
                failures.push("provenance `why` rendering diverges".to_string());
            }
            if blame != base.blame {
                failures.push("provenance `blame` table diverges".to_string());
            }
            if prov_trace != base.prov_trace {
                failures.push("provenance trace diverges".to_string());
            }
        }
        Err(e) => failures.push(format!("provenance artifacts: {e}")),
    }
    failures
}

/// Asserts the checkpoint loader refuses corrupted copies of a real
/// checkpoint file with the right typed error, never a partial load.
fn refusal_checks(ckpt: &Path, scratch: &Path) -> Vec<String> {
    let mut failures = Vec::new();
    let bytes = match fs::read(ckpt) {
        Ok(b) => b,
        Err(e) => return vec![format!("reading checkpoint {}: {e}", ckpt.display())],
    };
    let mut check = |name: &str, mutated: Vec<u8>, want: fn(&CheckpointError) -> bool| {
        let path = scratch.join(format!("refusal-{name}.ckpt"));
        if let Err(e) = fs::write(&path, &mutated) {
            failures.push(format!("writing {name} copy: {e}"));
            return;
        }
        match SimCheckpoint::load(&path) {
            Ok(_) => failures.push(format!("{name} checkpoint was accepted")),
            Err(e) if want(&e) => {}
            Err(e) => failures.push(format!("{name} checkpoint: wrong error kind: {e}")),
        }
        let _ = fs::remove_file(&path);
    };

    // Flip one payload bit (well past the header line).
    let mut flipped = bytes.clone();
    let mid = bytes.len() / 2;
    flipped[mid] ^= 0x01;
    check("bit-flipped", flipped, |e| {
        matches!(e, CheckpointError::ChecksumMismatch { .. })
    });

    // Cut the tail off the payload.
    check("truncated", bytes[..bytes.len() - 64].to_vec(), |e| {
        matches!(e, CheckpointError::ChecksumMismatch { .. })
    });

    // Bump the header's format version.
    let text = String::from_utf8_lossy(&bytes);
    let bumped = text.replacen(
        &format!("\"version\":{}", lyra_sim::checkpoint::CHECKPOINT_VERSION),
        "\"version\":999",
        1,
    );
    if bumped == text {
        failures.push("version-bump mutation did not apply".to_string());
    } else {
        check("version-bumped", bumped.into_bytes(), |e| {
            matches!(e, CheckpointError::VersionMismatch { .. })
        });
    }
    failures
}

/// Runs a crash storm: `kills` seeded kill points against the faulted
/// golden scenario, each saved through the checkpoint file, restored,
/// and compared byte-for-byte against the uninterrupted baseline.
/// Scratch files (sinks, checkpoints) live under `dir`; artifacts of
/// failing kill points are left behind for inspection, passing ones
/// are cleaned up.
///
/// # Errors
///
/// Returns `Err` only for harness-level problems (the baseline run or
/// a rebuild failing, I/O on `dir`). Divergence is *not* an `Err`: it
/// is recorded per kill in the returned [`StormReport`].
pub fn crash_storm(kills: usize, seed: u64, dir: &Path) -> Result<StormReport, String> {
    fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let case = crate::golden::cases()
        .into_iter()
        .find(|c| c.scenario.faults.is_some())
        .ok_or("no faulted golden case to storm")?;
    let name = case.scenario.name.clone();

    // Uninterrupted baseline.
    let base_sink = dir.join("baseline.jsonl");
    let base_report = match run_observed(&case.scenario, &case.jobs, &case.inference, &base_sink)? {
        RunOutcome::Completed(r) => *r,
        RunOutcome::Crashed(_) => {
            return Err("baseline run crashed: the golden fault plan must not contain \
                 SchedulerCrash events"
                .to_string())
        }
    };
    let last_s = lyra_obs::parse_log(&base_report.events.join("\n"))
        .map_err(|e| format!("baseline log does not parse: {e}"))?
        .last()
        .map(|ev| ev.time_ms as f64 / 1000.0)
        .ok_or("baseline log is empty")?;
    let (why, blame, prov_trace) = provenance_artifacts(&base_report.events)?;
    let base = Baseline {
        report_json: report_json(&base_report)?,
        table: attribution_table(&base_report.events)?,
        sink_bytes: fs::read(&base_sink)
            .map_err(|e| format!("reading baseline sink: {e}"))?,
        series_csv: base_report.telemetry.to_csv(),
        prom: prom_text(&base_report),
        why,
        blame,
        prov_trace,
        events: base_report.events,
        last_s,
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let mut outcomes = Vec::with_capacity(kills);
    let mut refused = false;
    for i in 0..kills {
        // The last kill point lands past the end of the run on purpose.
        let kill_time_s = if i + 1 == kills && kills > 1 {
            base.last_s * 2.0
        } else {
            (rng.gen::<f64>() * base.last_s).max(1.0)
        };

        let mut scenario = case.scenario.clone();
        let plan = scenario.faults.as_mut().expect("faulted case");
        // Appended, not inserted in time order: fault log lines carry
        // the plan *index* of the fired event, so shifting existing
        // indices would make the injection itself observable.
        plan.events.push(FaultEvent {
            time_s: kill_time_s,
            kind: FaultKind::SchedulerCrash,
        });

        let sink = dir.join(format!("kill-{i}.jsonl"));
        let ckpt: PathBuf = dir.join(format!("kill-{i}.ckpt"));
        let (resumed, failures) =
            match run_observed(&scenario, &case.jobs, &case.inference, &sink)? {
                // Kill landed after the run finished: the inserted,
                // never-fired crash event must be unobservable.
                RunOutcome::Completed(report) => (false, compare(&report, &sink, &base)),
                RunOutcome::Crashed(state) => {
                    let mut failures = Vec::new();
                    SimCheckpoint::new(
                        scenario.clone(),
                        case.jobs.clone(),
                        case.inference.clone(),
                        *state,
                    )
                    .save(&ckpt)
                    .map_err(|e| format!("saving checkpoint {}: {e}", ckpt.display()))?;
                    if !refused {
                        refused = true;
                        failures.extend(refusal_checks(&ckpt, dir));
                    }
                    // Tear the sink mid-line, as a real crash cutting a
                    // write would; restore must repair the tail.
                    {
                        use std::io::Write;
                        let mut f = fs::OpenOptions::new()
                            .append(true)
                            .open(&sink)
                            .map_err(|e| format!("tearing sink {}: {e}", sink.display()))?;
                        f.write_all(b"{\"time_ms\":9")
                            .map_err(|e| format!("tearing sink: {e}"))?;
                    }
                    match checkpoint::resume(&ckpt, &name) {
                        Ok(RunOutcome::Completed(report)) => {
                            failures.extend(compare(&report, &sink, &base));
                        }
                        Ok(RunOutcome::Crashed(_)) => {
                            failures.push("resumed run crashed again".to_string());
                        }
                        Err(e) => failures.push(format!("resume failed: {e}")),
                    }
                    (true, failures)
                }
            };
        if failures.is_empty() {
            let _ = fs::remove_file(&sink);
            let _ = fs::remove_file(&ckpt);
        }
        outcomes.push(KillOutcome {
            kill_time_s,
            resumed,
            failures,
        });
    }
    let report = StormReport {
        name,
        kills: outcomes,
    };
    if report.passed() {
        let _ = fs::remove_file(&base_sink);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("lyra-crash-storm-{tag}-{}", std::process::id()))
    }

    #[test]
    fn storm_of_three_kills_matches_baseline() {
        let dir = scratch("three");
        let report = crash_storm(3, 42, &dir).expect("storm harness");
        assert_eq!(report.kills.len(), 3);
        assert!(report.passed(), "{}", report.render());
        // At least one kill must have actually interrupted the run and
        // the last one must have landed past the end.
        assert!(report.kills.iter().any(|k| k.resumed), "{}", report.render());
        assert!(!report.kills.last().unwrap().resumed, "{}", report.render());
        let _ = fs::remove_dir_all(&dir);
    }
}
