//! Exhaustive MCKP solving and differential checks for phase 2 (§5.2).
//!
//! The production DP in `lyra_core::mckp` is pseudo-polynomial and
//! *exact*; the greedy ablation is the paper's point of comparison with
//! a provable bound on concave instances. Both claims are checked here
//! against plain exponential enumeration.

use lyra_core::{solve_mckp, McKnapsackGroup, MckpSolution};

/// Absolute tolerance for comparing summed floating-point values.
pub const VALUE_EPS: f64 = 1e-6;

/// Exhaustively solves an MCKP instance by enumerating every per-group
/// choice (including "take nothing"). Exponential — small instances
/// only (≤ 6 groups of ≤ 6 items).
///
/// Ties on value prefer the lighter solution, then the earlier choice
/// vector in lexicographic order, so the result is deterministic.
pub fn solve_mckp_exhaustive(groups: &[McKnapsackGroup], capacity: u32) -> MckpSolution {
    fn rec(
        groups: &[McKnapsackGroup],
        g: usize,
        capacity: u64,
        used: u64,
        value: f64,
        chosen: &mut Vec<Option<usize>>,
        best: &mut (f64, u64, Vec<Option<usize>>),
    ) {
        if g == groups.len() {
            if value > best.0 + VALUE_EPS || ((value - best.0).abs() <= VALUE_EPS && used < best.1)
            {
                *best = (value, used, chosen.clone());
            }
            return;
        }
        chosen.push(None);
        rec(groups, g + 1, capacity, used, value, chosen, best);
        chosen.pop();
        for (i, item) in groups[g].items.iter().enumerate() {
            let w = used + u64::from(item.weight);
            if w > capacity {
                continue;
            }
            chosen.push(Some(i));
            rec(groups, g + 1, capacity, w, value + item.value, chosen, best);
            chosen.pop();
        }
    }
    let mut best = (0.0, 0u64, vec![None; groups.len()]);
    let mut chosen = Vec::with_capacity(groups.len());
    rec(
        groups,
        0,
        u64::from(capacity),
        0,
        0.0,
        &mut chosen,
        &mut best,
    );
    let (total_value, total_weight, chosen) = best;
    MckpSolution {
        total_value,
        total_weight: total_weight.min(u64::from(u32::MAX)) as u32,
        chosen,
    }
}

/// Validates a solution's internal consistency against its instance:
/// choice vector shape, item indices, weight within capacity, and the
/// reported totals matching the chosen items.
pub fn validate_solution(
    groups: &[McKnapsackGroup],
    capacity: u32,
    sol: &MckpSolution,
) -> Result<(), String> {
    if sol.chosen.len() != groups.len() {
        return Err(format!(
            "choice vector has {} entries for {} groups",
            sol.chosen.len(),
            groups.len()
        ));
    }
    let mut weight: u64 = 0;
    let mut value: f64 = 0.0;
    for (g, choice) in sol.chosen.iter().enumerate() {
        if let Some(i) = choice {
            let item = groups[g]
                .items
                .get(*i)
                .ok_or_else(|| format!("group {g} chose out-of-range item {i}"))?;
            weight += u64::from(item.weight);
            value += item.value;
        }
    }
    if weight > u64::from(capacity) {
        return Err(format!("chosen weight {weight} exceeds capacity {capacity}"));
    }
    if weight != u64::from(sol.total_weight) {
        return Err(format!(
            "reported weight {} but chosen items weigh {weight}",
            sol.total_weight
        ));
    }
    if (value - sol.total_value).abs() > VALUE_EPS {
        return Err(format!(
            "reported value {} but chosen items sum to {value}",
            sol.total_value
        ));
    }
    Ok(())
}

/// Differential check that a phase-2 solver is *exact*: its solution
/// must be internally consistent and match the exhaustive optimum's
/// value. The production DP must pass on every instance; the greedy
/// ablation fails it on [`greedy_trap`] — which is what the mutation
/// smoke asserts.
pub fn check_phase2_solver_exact(
    solver: &dyn Fn(&[McKnapsackGroup], u32) -> MckpSolution,
    groups: &[McKnapsackGroup],
    capacity: u32,
) -> Result<(), String> {
    let got = solver(groups, capacity);
    validate_solution(groups, capacity, &got)?;
    let opt = solve_mckp_exhaustive(groups, capacity);
    if (got.total_value - opt.total_value).abs() > VALUE_EPS {
        return Err(format!(
            "solver value {} != exhaustive optimum {}",
            got.total_value, opt.total_value
        ));
    }
    Ok(())
}

/// [`check_phase2_solver_exact`] applied to the production DP.
pub fn check_dp_exact(groups: &[McKnapsackGroup], capacity: u32) -> Result<(), String> {
    check_phase2_solver_exact(&|g, c| solve_mckp(g, c), groups, capacity)
}

/// The largest single upgrade step (marginal value of moving one item
/// deeper into a group, from "nothing" for the first item) across the
/// instance — the additive term in the greedy guarantee.
pub fn best_single_step(groups: &[McKnapsackGroup]) -> f64 {
    let mut best: f64 = 0.0;
    for group in groups {
        let mut prev = 0.0;
        for item in &group.items {
            best = best.max(item.value - prev);
            prev = item.value;
        }
    }
    best
}

/// Checks the greedy phase-2 ablation against its approximation
/// guarantee on *production-shaped* instances.
///
/// Preconditions (guaranteed by [`crate::gen::concave_mckp`], which
/// mirrors how `two_phase_allocate` builds groups from linear-scaling
/// elastic jobs): within each group, marginal weights are a constant
/// `gpus_per_worker ≤ capacity` and marginal values are nonincreasing.
/// Under those, density-ordered upgrades are taken in order and the
/// classic fractional-knapsack argument gives
///
/// `OPT ≤ greedy + best_single_step`, hence
/// `2 · max(greedy, best_single_step) ≥ OPT`.
///
/// The check also asserts `greedy ≤ OPT` (a heuristic must never beat
/// an exact optimum) on all instances.
pub fn check_greedy_bound(groups: &[McKnapsackGroup], capacity: u32) -> Result<(), String> {
    let greedy = lyra_core::allocation::greedy_phase2_for_oracles(groups, capacity);
    validate_solution(groups, capacity, &greedy)?;
    let opt = solve_mckp_exhaustive(groups, capacity);
    if greedy.total_value > opt.total_value + VALUE_EPS {
        return Err(format!(
            "greedy {} beat the exhaustive optimum {}",
            greedy.total_value, opt.total_value
        ));
    }
    let single = best_single_step(groups);
    if 2.0 * greedy.total_value.max(single) + VALUE_EPS < opt.total_value {
        return Err(format!(
            "greedy guarantee violated: 2·max({}, {}) < optimum {}",
            greedy.total_value, single, opt.total_value
        ));
    }
    Ok(())
}

/// A fixed instance where the greedy ablation is provably suboptimal:
/// a high-density small step blocks a large step worth 9× more.
/// Greedy scores 11, the optimum 100 — any exactness check run against
/// the greedy solver on this instance must fail.
pub fn greedy_trap() -> (Vec<McKnapsackGroup>, u32) {
    let groups = vec![
        McKnapsackGroup {
            key: 0,
            items: vec![lyra_core::McKnapsackItem {
                weight: 10,
                value: 100.0,
            }],
        },
        McKnapsackGroup {
            key: 1,
            items: vec![lyra_core::McKnapsackItem {
                weight: 1,
                value: 11.0,
            }],
        },
    ];
    (groups, 10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_on_pinned_instance() {
        let (groups, cap) = greedy_trap();
        let opt = solve_mckp_exhaustive(&groups, cap);
        assert_eq!(opt.total_value, 100.0);
        assert_eq!(opt.chosen, vec![Some(0), None]);
        validate_solution(&groups, cap, &opt).unwrap();
    }

    #[test]
    fn dp_is_exact_on_the_trap() {
        let (groups, cap) = greedy_trap();
        check_dp_exact(&groups, cap).unwrap();
    }

    #[test]
    fn greedy_fails_exactness_on_the_trap() {
        let (groups, cap) = greedy_trap();
        let err = check_phase2_solver_exact(
            &lyra_core::allocation::greedy_phase2_for_oracles,
            &groups,
            cap,
        );
        assert!(err.is_err(), "greedy must be suboptimal on the trap");
    }

    #[test]
    fn empty_instance_is_trivial() {
        let opt = solve_mckp_exhaustive(&[], 10);
        assert_eq!(opt.total_value, 0.0);
        assert!(opt.chosen.is_empty());
        check_dp_exact(&[], 0).unwrap();
    }
}
