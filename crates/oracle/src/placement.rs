//! Exhaustive gang-placement feasibility vs the production BFD path
//! (§5.3).
//!
//! The production `place_gang` is best-fit-decreasing and atomic. The
//! oracle here answers the only question that matters for correctness
//! — *could* this gang fit at all? — by trying every worker→server
//! assignment, independent of any fit heuristic or visit order.

use lyra_core::placement::group_compatible_for_oracles;
use lyra_core::snapshot::ServerGroup;
use lyra_core::{place_gang, PlacementConfig, PoolKind, ServerView};

/// One gang-placement instance: the cluster state plus a request for
/// `count` workers of `gpus_per_worker` GPUs each in `pool`.
#[derive(Debug, Clone)]
pub struct GangInstance {
    /// Cluster servers (any pools; the request targets one).
    pub servers: Vec<ServerView>,
    /// Pool the gang must land in.
    pub pool: PoolKind,
    /// Workers in the gang.
    pub count: u32,
    /// GPUs per worker.
    pub gpus_per_worker: u32,
    /// On-loan server group of the request.
    pub group: ServerGroup,
    /// Placement configuration under test.
    pub config: PlacementConfig,
}

/// Whether the gang can fit at all: recursive search over every
/// assignment of workers to servers, tracking per-server state the way
/// the placement rules specify it. Exponential in the worker count —
/// small instances only (≤ 8 servers / ≤ 6 workers).
///
/// The eligibility model mirrors §5.3's rules exactly:
///
/// * a worker fits on a server of the target pool with enough free
///   GPUs that is *group-compatible*, **or** on one that is completely
///   empty (the fresh-server rule — an empty server may be drafted
///   regardless of a stale group label, but only while it stays empty);
/// * placing on an `Unassigned` on-loan server claims it for the
///   request's group, so it stays usable by the rest of the gang;
/// * a stale-labelled empty server stops being eligible after its first
///   worker (it is no longer empty and still incompatible).
pub fn gang_feasible_exhaustive(inst: &GangInstance) -> bool {
    #[derive(Clone, Copy)]
    struct Srv {
        free: u32,
        /// No GPUs in use (the fresh-server rule applies).
        empty: bool,
        /// Group-compatible with the request (stays true once claimed:
        /// `Unassigned` servers are relabelled to the request's group).
        compatible: bool,
    }
    fn rec(servers: &mut [Srv], left: u32, gpw: u32) -> bool {
        if left == 0 {
            return true;
        }
        for i in 0..servers.len() {
            let s = servers[i];
            if s.free >= gpw && (s.compatible || s.empty) {
                servers[i].free = s.free - gpw;
                servers[i].empty = false;
                if rec(servers, left - 1, gpw) {
                    servers[i] = s;
                    return true;
                }
                servers[i] = s;
            }
        }
        false
    }
    let mut servers: Vec<Srv> = inst
        .servers
        .iter()
        .filter(|s| s.pool == inst.pool)
        .map(|s| Srv {
            free: s.free_gpus,
            empty: s.is_empty(),
            compatible: group_compatible_for_oracles(s, inst.group, inst.config),
        })
        .collect();
    if inst.gpus_per_worker == 0 {
        return inst.count == 0 || servers.iter().any(|s| s.compatible || s.empty);
    }
    rec(&mut servers, inst.count, inst.gpus_per_worker)
}

/// Differential check of `place_gang` against the exhaustive oracle:
///
/// * a feasible gang is never rejected, an infeasible one never placed;
/// * on success the assignment is well-formed (right GPU total, only
///   compatible servers of the right pool, per-server capacity
///   respected) and untouched servers are left byte-identical;
/// * on failure the server state is untouched (atomicity).
pub fn check_gang_placement(inst: &GangInstance) -> Result<(), String> {
    let feasible = gang_feasible_exhaustive(inst);
    let mut working = inst.servers.clone();
    let placed = place_gang(
        &mut working,
        inst.pool,
        inst.count,
        inst.gpus_per_worker,
        inst.group,
        inst.config,
    );
    match placed {
        None => {
            if feasible {
                return Err(format!(
                    "BFD rejected a feasible gang: {} × {} GPUs in {:?}",
                    inst.count, inst.gpus_per_worker, inst.pool
                ));
            }
            if working != inst.servers {
                return Err("failed placement mutated the server state".into());
            }
        }
        Some(assignment) => {
            if !feasible {
                return Err(format!(
                    "BFD placed a gang the exhaustive search proves infeasible: {} × {} GPUs",
                    inst.count, inst.gpus_per_worker
                ));
            }
            let total: u32 = assignment.iter().map(|(_, w)| w).sum();
            if total != inst.count {
                return Err(format!(
                    "assignment totals {total} workers, expected {}",
                    inst.count
                ));
            }
            for (sid, workers) in &assignment {
                let gpus = workers * inst.gpus_per_worker;
                let before = inst
                    .servers
                    .iter()
                    .find(|s| s.id == *sid)
                    .ok_or_else(|| format!("assignment names unknown server {sid:?}"))?;
                if before.pool != inst.pool {
                    return Err(format!("worker landed outside {:?}", inst.pool));
                }
                if !group_compatible_for_oracles(before, inst.group, inst.config)
                    && !before.is_empty()
                {
                    return Err(format!(
                        "worker landed on a non-empty group-incompatible {sid:?}"
                    ));
                }
                if before.free_gpus < gpus {
                    return Err(format!("server {sid:?} over-committed by {gpus} GPUs"));
                }
                let after = working.iter().find(|s| s.id == *sid).unwrap();
                if after.free_gpus != before.free_gpus - gpus {
                    return Err(format!("server {sid:?} free-GPU accounting drifted"));
                }
            }
            for before in &inst.servers {
                if assignment.iter().any(|(sid, _)| *sid == before.id) {
                    continue;
                }
                let after = working.iter().find(|s| s.id == before.id).unwrap();
                if after != before {
                    return Err(format!(
                        "server {:?} changed without receiving a worker",
                        before.id
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyra_core::ServerId;

    fn server(id: u32, pool: PoolKind, free: u32, group: ServerGroup) -> ServerView {
        ServerView {
            id: ServerId(id),
            pool,
            gpu_type: lyra_core::GpuType::V100,
            total_gpus: 8,
            free_gpus: free,
            group,
            speed_factor: 1.0,
        }
    }

    fn inst(servers: Vec<ServerView>, count: u32, gpw: u32) -> GangInstance {
        GangInstance {
            servers,
            pool: PoolKind::Training,
            count,
            gpus_per_worker: gpw,
            group: ServerGroup::Base,
            config: PlacementConfig::default(),
        }
    }

    #[test]
    fn counting_matches_intuition() {
        let servers = vec![
            server(0, PoolKind::Training, 3, ServerGroup::Unassigned),
            server(1, PoolKind::Training, 5, ServerGroup::Unassigned),
        ];
        // 2-GPU workers: floor(3/2) + floor(5/2) = 3 fit, 4 do not.
        assert!(gang_feasible_exhaustive(&inst(servers.clone(), 3, 2)));
        assert!(!gang_feasible_exhaustive(&inst(servers.clone(), 4, 2)));
        check_gang_placement(&inst(servers.clone(), 3, 2)).unwrap();
        check_gang_placement(&inst(servers, 4, 2)).unwrap();
    }

    #[test]
    fn wrong_pool_is_invisible() {
        let servers = vec![server(0, PoolKind::OnLoan, 8, ServerGroup::Unassigned)];
        assert!(!gang_feasible_exhaustive(&inst(servers.clone(), 1, 1)));
        check_gang_placement(&inst(servers, 1, 1)).unwrap();
    }

    #[test]
    fn stale_group_labels_follow_the_fresh_server_rule() {
        // Empty but labelled Flexible: the fresh-server rule lets a
        // Base gang draft it — but only for one worker, because after
        // that it is non-empty and still incompatible.
        let mut i = inst(
            vec![server(0, PoolKind::OnLoan, 8, ServerGroup::Flexible)],
            1,
            1,
        );
        i.pool = PoolKind::OnLoan;
        i.group = ServerGroup::Base;
        assert!(gang_feasible_exhaustive(&i));
        check_gang_placement(&i).unwrap();
        i.count = 2;
        assert!(!gang_feasible_exhaustive(&i));
        check_gang_placement(&i).unwrap();
        // A *non-empty* incompatible server is invisible outright.
        let mut j = inst(
            vec![server(0, PoolKind::OnLoan, 7, ServerGroup::Flexible)],
            1,
            1,
        );
        j.pool = PoolKind::OnLoan;
        j.group = ServerGroup::Base;
        assert!(!gang_feasible_exhaustive(&j));
        check_gang_placement(&j).unwrap();
        // Without the special treatment the group split disappears.
        j.config = PlacementConfig {
            special_elastic_treatment: false,
        };
        assert!(gang_feasible_exhaustive(&j));
        check_gang_placement(&j).unwrap();
    }
}
