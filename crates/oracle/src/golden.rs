//! The golden-trace regression gate.
//!
//! A handful of pinned tiny scenarios run under full observation; their
//! complete JSONL event logs are committed under `tests/golden/` and
//! compared byte-for-byte. Any behavioural change to the scheduler —
//! intended or not — shows up as a diff; intended changes are blessed
//! with `lyra-bench golden --bless`.
//!
//! The faulted case additionally pins five artifacts — the
//! delay-attribution table (`.attribution.txt`), the Chrome
//! `trace_event` export (`.trace.json`), the rendered decision
//! provenance for one preemption victim (`.provenance.txt`) and the
//! flow-annotated provenance trace (`.provenance.json`), all *derived*
//! from its log, plus the telemetry series export (`.series.csv`)
//! from the run's report — so a change to the attribution, export,
//! provenance or telemetry pipeline is caught even when the
//! underlying event stream is unchanged. Fired alerts are pinned
//! implicitly: `Alert` events land in the JSONL log like every other
//! event.
//!
//! The gate also proves its own teeth: [`mutation_smoke`] flips one
//! scheduler constant (the phase-2 solver, MCKP DP → greedy ablation)
//! and asserts both the gate and a differential oracle actually fail,
//! and flips the reclaim policy to assert the pinned provenance
//! artifacts move with the victim-ranking decisions they record.

use lyra_sim::scenario::generators;
use lyra_sim::{
    run_scenario_observed, transform, zoo, FaultConfig, FaultPlan, ObserverConfig, Scenario,
    SimReport,
};
use lyra_trace::{InferenceTrace, JobTrace};
use std::fs;
use std::path::{Path, PathBuf};

/// The committed golden-log directory (`tests/golden/` at the repo
/// root).
pub fn default_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// One pinned golden scenario: a name (the file stem under
/// `tests/golden/`) plus everything needed to rerun it exactly.
pub struct GoldenCase {
    /// File stem of the committed log.
    pub name: &'static str,
    /// The pinned scenario.
    pub scenario: Scenario,
    /// The pinned job trace.
    pub jobs: JobTrace,
    /// The pinned inference trace.
    pub inference: InferenceTrace,
    /// Also pin the derived artifacts (attribution table + Chrome
    /// trace) for this case.
    pub pin_artifacts: bool,
}

impl GoldenCase {
    /// Runs the scenario under full observation and returns the whole
    /// report (event log, telemetry series, registry snapshots, …).
    pub fn observed_report(&self) -> Result<SimReport, String> {
        run_scenario_observed(
            &self.scenario,
            &self.jobs,
            &self.inference,
            ObserverConfig::default(),
        )
        .map_err(|e| format!("{}: {e}", self.name))
    }

    /// Runs the scenario under full observation and returns its JSONL
    /// event log.
    pub fn event_log(&self) -> Result<Vec<String>, String> {
        Ok(self.observed_report()?.events)
    }

    /// The on-disk path of this case's committed log inside `dir`.
    pub fn path(&self, dir: &Path) -> PathBuf {
        dir.join(format!("{}.jsonl", self.name))
    }

    /// Path of the pinned attribution table inside `dir`.
    pub fn attribution_path(&self, dir: &Path) -> PathBuf {
        dir.join(format!("{}.attribution.txt", self.name))
    }

    /// Path of the pinned Chrome trace inside `dir`.
    pub fn trace_path(&self, dir: &Path) -> PathBuf {
        dir.join(format!("{}.trace.json", self.name))
    }

    /// Path of the pinned telemetry series export inside `dir`.
    pub fn series_path(&self, dir: &Path) -> PathBuf {
        dir.join(format!("{}.series.csv", self.name))
    }

    /// Path of the pinned `why` rendering (decision provenance for one
    /// preemption victim) inside `dir`.
    pub fn provenance_path(&self, dir: &Path) -> PathBuf {
        dir.join(format!("{}.provenance.txt", self.name))
    }

    /// Path of the pinned provenance-annotated Chrome trace inside
    /// `dir`.
    pub fn provenance_trace_path(&self, dir: &Path) -> PathBuf {
        dir.join(format!("{}.provenance.json", self.name))
    }

    /// Derives the pinned artifacts from a JSONL event log: the
    /// rendered delay-attribution table, the Chrome `trace_event`
    /// export (schema-validated before it is returned), the `why`
    /// rendering for the log's first preemption victim, and the
    /// flow-annotated provenance trace (also schema-validated).
    pub fn artifacts(&self, log: &[String]) -> Result<PinnedArtifacts, String> {
        let events = lyra_obs::parse_log(&log.join("\n"))
            .map_err(|e| format!("{}: event log does not parse: {e}", self.name))?;
        let attrs = lyra_obs::attribute_log(&events);
        let table = lyra_obs::summarize(&attrs).render_table();
        let trace = lyra_obs::export_chrome_trace(&events);
        lyra_obs::validate_chrome_trace(&trace)
            .map_err(|e| format!("{}: exported Chrome trace is malformed: {e}", self.name))?;
        // The provenance artifacts anchor on the first preemption
        // victim in the log; a pinned case without any preemption
        // would leave the reclaim blame chain untested, so fail loud.
        let victim = events
            .iter()
            .find_map(|e| match &e.event {
                lyra_obs::SchedEvent::JobPreempt { job, .. } => Some(*job),
                _ => None,
            })
            .ok_or_else(|| {
                format!("{}: log has no JobPreempt event to anchor provenance on", self.name)
            })?;
        let why = lyra_obs::why_from_log(&events, victim)
            .map_err(|e| format!("{}: {e}", self.name))?;
        let prov_trace = lyra_obs::export_provenance_trace(&events);
        lyra_obs::validate_chrome_trace(&prov_trace)
            .map_err(|e| format!("{}: provenance trace is malformed: {e}", self.name))?;
        Ok(PinnedArtifacts {
            table,
            trace,
            why,
            provenance_trace: prov_trace,
        })
    }
}

/// The derived artifacts pinned alongside a golden log.
pub struct PinnedArtifacts {
    /// Rendered delay-attribution table.
    pub table: String,
    /// Chrome `trace_event` export.
    pub trace: String,
    /// `why` rendering for the log's first preemption victim.
    pub why: String,
    /// Flow-annotated provenance trace.
    pub provenance_trace: String,
}

/// The pinned cases. Deliberately small (a day of 64-GPU trace on an
/// 8+8 cluster, seconds to run) but chosen to cover the paths a
/// scheduler change can plausibly move: the plain Lyra configuration,
/// an elastic-heavy workload where phase 2 does real work, and a
/// faulted run exercising crash/restart and reclaim-carryover paths.
pub fn cases() -> Vec<GoldenCase> {
    let (jobs_basic, inf_basic) = generators::tiny_traces(7);
    let (mut jobs_elastic, inf_elastic) = generators::tiny_traces(11);
    transform::set_elastic_fraction(&mut jobs_elastic, 0.9, 11);
    let (jobs_faulty, inf_faulty) = generators::tiny_traces(13);
    let mut faulty = generators::tiny_basic(13);
    faulty.faults = Some(FaultPlan::generate(
        &FaultConfig::moderate(2.0 * 86_400.0),
        16,
        13,
    ));
    let zoo_case = |name: &str| {
        zoo::cases()
            .into_iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("zoo case {name} exists"))
            .build()
    };
    let (hetero, jobs_hetero, inf_hetero) = zoo_case("hetero");
    let (malleable, jobs_malleable, inf_malleable) = zoo_case("malleable");
    let (deadline, jobs_deadline, inf_deadline) = zoo_case("deadline");
    vec![
        GoldenCase {
            name: "tiny-basic",
            scenario: generators::tiny_basic(7),
            jobs: jobs_basic,
            inference: inf_basic,
            pin_artifacts: false,
        },
        GoldenCase {
            name: "tiny-elastic",
            scenario: generators::tiny_basic(11),
            jobs: jobs_elastic,
            inference: inf_elastic,
            pin_artifacts: false,
        },
        // The faulted case covers the widest cause taxonomy (restarts,
        // restores, preemptions, stragglers), so it also pins the
        // derived attribution table and Chrome trace.
        GoldenCase {
            name: "tiny-faulty",
            scenario: faulty,
            jobs: jobs_faulty,
            inference: inf_faulty,
            pin_artifacts: true,
        },
        // The zoo cells: mixed GPU generations, explicit resize costs,
        // and SLO deadlines. Pinned so a change to the speed-scaled
        // progress model, the resize-cost stalls or the deadline-miss
        // events is caught byte-for-byte.
        GoldenCase {
            name: "tiny-hetero",
            scenario: hetero,
            jobs: jobs_hetero,
            inference: inf_hetero,
            pin_artifacts: false,
        },
        GoldenCase {
            name: "tiny-malleable",
            scenario: malleable,
            jobs: jobs_malleable,
            inference: inf_malleable,
            pin_artifacts: false,
        },
        GoldenCase {
            name: "tiny-deadline",
            scenario: deadline,
            jobs: jobs_deadline,
            inference: inf_deadline,
            pin_artifacts: false,
        },
    ]
}

/// The mutation-smoke perturbation: flips the phase-2 solver constant
/// from the exact MCKP DP to the greedy ablation
/// (`"lyra"` → `"lyra-greedy-phase2"`).
pub fn mutate(scenario: &mut Scenario) {
    scenario.policy = "lyra-greedy-phase2".to_string();
}

/// A mismatch between a fresh run and its committed golden log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenDiff {
    /// Case name.
    pub name: String,
    /// Human-readable description of the first divergence.
    pub detail: String,
}

fn render(lines: &[String]) -> String {
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

fn first_divergence(expected: &str, got: &str) -> String {
    for (i, (e, g)) in expected.lines().zip(got.lines()).enumerate() {
        if e != g {
            return format!("first diff at line {}: committed `{e}` vs fresh `{g}`", i + 1);
        }
    }
    format!(
        "line counts differ: committed {} vs fresh {}",
        expected.lines().count(),
        got.lines().count()
    )
}

/// Compares every case against the committed logs in `dir`, byte for
/// byte. Each case is run **twice** so run-to-run nondeterminism is
/// reported as its own diff rather than slipping through as flaky
/// passes. Returns the (possibly empty) list of mismatches; I/O
/// problems (including a missing file) are reported as diffs too, so a
/// half-blessed directory fails closed.
pub fn compare(dir: &Path) -> Vec<GoldenDiff> {
    let mut diffs = Vec::new();
    for case in cases() {
        let (lines, series_csv) = match (case.observed_report(), case.observed_report()) {
            (Ok(a), Ok(b)) => {
                if a.events != b.events || a.telemetry != b.telemetry {
                    diffs.push(GoldenDiff {
                        name: case.name.to_string(),
                        detail: "two consecutive runs diverged (nondeterminism)".into(),
                    });
                    continue;
                }
                (a.events, a.telemetry.to_csv())
            }
            (Err(e), _) | (_, Err(e)) => {
                diffs.push(GoldenDiff {
                    name: case.name.to_string(),
                    detail: format!("run failed: {e}"),
                });
                continue;
            }
        };
        let fresh = render(&lines);
        match fs::read_to_string(case.path(dir)) {
            Ok(committed) => {
                if committed != fresh {
                    diffs.push(GoldenDiff {
                        name: case.name.to_string(),
                        detail: first_divergence(&committed, &fresh),
                    });
                }
            }
            Err(e) => diffs.push(GoldenDiff {
                name: case.name.to_string(),
                detail: format!(
                    "cannot read {} ({e}); run `lyra-bench golden --bless`",
                    case.path(dir).display()
                ),
            }),
        }
        if !case.pin_artifacts {
            continue;
        }
        let arts = match case.artifacts(&lines) {
            Ok(a) => a,
            Err(e) => {
                diffs.push(GoldenDiff {
                    name: case.name.to_string(),
                    detail: e,
                });
                continue;
            }
        };
        for (label, path, got) in [
            ("attribution table", case.attribution_path(dir), arts.table),
            ("chrome trace", case.trace_path(dir), arts.trace),
            ("series export", case.series_path(dir), series_csv),
            ("provenance rendering", case.provenance_path(dir), arts.why),
            (
                "provenance trace",
                case.provenance_trace_path(dir),
                arts.provenance_trace,
            ),
        ] {
            match fs::read_to_string(&path) {
                Ok(committed) => {
                    if committed != got {
                        diffs.push(GoldenDiff {
                            name: case.name.to_string(),
                            detail: format!(
                                "{label} diverged: {}",
                                first_divergence(&committed, &got)
                            ),
                        });
                    }
                }
                Err(e) => diffs.push(GoldenDiff {
                    name: case.name.to_string(),
                    detail: format!(
                        "cannot read {} ({e}); run `lyra-bench golden --bless`",
                        path.display()
                    ),
                }),
            }
        }
    }
    diffs
}

/// Regenerates every committed log in `dir` (creating it if needed).
/// Returns the written file names.
pub fn bless(dir: &Path) -> Result<Vec<String>, String> {
    fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut written = Vec::new();
    for case in cases() {
        let report = case.observed_report()?;
        let log = report.events.clone();
        let path = case.path(dir);
        fs::write(&path, render(&log)).map_err(|e| format!("{}: {e}", path.display()))?;
        written.push(format!("{} ({} events)", path.display(), log.len()));
        if case.pin_artifacts {
            let arts = case.artifacts(&log)?;
            let spath = case.series_path(dir);
            fs::write(&spath, report.telemetry.to_csv())
                .map_err(|e| format!("{}: {e}", spath.display()))?;
            for (path, content) in [
                (case.attribution_path(dir), arts.table),
                (case.trace_path(dir), arts.trace),
                (case.provenance_path(dir), arts.why),
                (case.provenance_trace_path(dir), arts.provenance_trace),
            ] {
                fs::write(&path, content).map_err(|e| format!("{}: {e}", path.display()))?;
                written.push(format!("{}", path.display()));
            }
            written.push(format!("{}", spath.display()));
        }
    }
    Ok(written)
}

/// The full mutation smoke: under the flipped scheduler constant the
/// golden gate must fire on at least one case AND the phase-2
/// exactness oracle must fail on its trap instance. Returns `Err`
/// naming whatever did *not* fire — a passing mutation smoke is the
/// proof that the gate has teeth.
pub fn mutation_smoke(dir: &Path) -> Result<(), String> {
    let mut fired = Vec::new();
    for mut case in cases() {
        mutate(&mut case.scenario);
        let log = case.event_log()?;
        let committed = fs::read_to_string(case.path(dir))
            .map_err(|e| format!("{} ({e}); bless first", case.path(dir).display()))?;
        if committed != render(&log) {
            fired.push(case.name);
        }
    }
    if fired.is_empty() {
        return Err(
            "golden gate did not fire on any case under the mutated phase-2 solver".into(),
        );
    }
    let (groups, capacity) = crate::mckp::greedy_trap();
    if crate::mckp::check_phase2_solver_exact(
        &lyra_core::allocation::greedy_phase2_for_oracles,
        &groups,
        capacity,
    )
    .is_ok()
    {
        return Err("phase-2 exactness oracle did not fail under the greedy mutation".into());
    }
    provenance_mutation_smoke(dir)?;
    zoo_mutation_smoke(dir)
}

/// The provenance arm of the mutation smoke: flipping the reclaim
/// policy (cost-guided Lyra → random victim choice) must move the
/// pinned provenance artifacts of the faulted case — the `why`
/// rendering blames specific victim-ranking decisions, so a different
/// ranking must produce different bytes. Returns `Err` if neither
/// pinned provenance artifact moved.
pub fn provenance_mutation_smoke(dir: &Path) -> Result<(), String> {
    use lyra_cluster::orchestrator::ReclaimPolicy;

    let mut case = cases()
        .into_iter()
        .find(|c| c.name == "tiny-faulty")
        .expect("tiny-faulty golden case exists");
    case.scenario.loaning = Some(ReclaimPolicy::Random);
    let log = case.event_log()?;
    let arts = case.artifacts(&log)?;
    let committed_why = fs::read_to_string(case.provenance_path(dir))
        .map_err(|e| format!("{} ({e}); bless first", case.provenance_path(dir).display()))?;
    let committed_trace = fs::read_to_string(case.provenance_trace_path(dir)).map_err(|e| {
        format!(
            "{} ({e}); bless first",
            case.provenance_trace_path(dir).display()
        )
    })?;
    if committed_why == arts.why && committed_trace == arts.provenance_trace {
        return Err(
            "provenance artifacts did not move under the flipped reclaim policy".into(),
        );
    }
    Ok(())
}

/// The zoo arm of the mutation smoke: flipping the hetero cell's speed
/// factors and tightening the deadline cell's slack must each move the
/// corresponding committed golden log, AND the matching metamorphic
/// oracle must fail when handed the reversed claim. Returns `Err`
/// naming whatever did not fire.
pub fn zoo_mutation_smoke(dir: &Path) -> Result<(), String> {
    use lyra_core::SpeedFactors;

    let case = |name: &str| {
        cases()
            .into_iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("golden case {name} exists"))
    };

    // Flipping the speed factors (swap the generations' multipliers)
    // must move the pinned hetero log.
    let mut hetero = case("tiny-hetero");
    hetero.scenario.cluster.speed = SpeedFactors { v100: 0.8, t4: 1.25 };
    let log = hetero.event_log()?;
    let committed = fs::read_to_string(hetero.path(dir))
        .map_err(|e| format!("{} ({e}); bless first", hetero.path(dir).display()))?;
    if committed == render(&log) {
        return Err("golden gate did not fire on tiny-hetero under flipped speed factors".into());
    }

    // …and the speed-factor monotonicity oracle must reject the
    // reversed claim (a half-speed fleet passed off as the fast one).
    let (scenario, jobs, inference) = zoo::cases()
        .into_iter()
        .find(|c| c.name == "basic")
        .expect("zoo has a basic cell")
        .build();
    if crate::props::check_speed_factor_monotonicity(
        &scenario,
        &jobs,
        &inference,
        SpeedFactors { v100: 2.0, t4: 2.0 },
        SpeedFactors { v100: 0.5, t4: 0.5 },
    )
    .is_ok()
    {
        return Err("speed-factor monotonicity oracle accepted a half-speed fleet as faster".into());
    }

    // Tightening every deadline must move the pinned deadline log (new
    // DeadlineMiss events appear).
    let mut tight = case("tiny-deadline");
    transform::set_deadlines(&mut tight.jobs, 0.2, tight.scenario.seed ^ 1);
    let log = tight.event_log()?;
    let committed = fs::read_to_string(tight.path(dir))
        .map_err(|e| format!("{} ({e}); bless first", tight.path(dir).display()))?;
    if committed == render(&log) {
        return Err("golden gate did not fire on tiny-deadline under tightened deadlines".into());
    }

    // …and the deadline-slack monotonicity oracle must reject the
    // reversed claim (tight slack passed off as the slacker one).
    if crate::props::check_deadline_slack_monotonicity(&scenario, &jobs, &inference, 4.0, 0.2, 77)
        .is_ok()
    {
        return Err(
            "deadline-slack monotonicity oracle accepted tighter deadlines as slacker".into(),
        );
    }
    Ok(())
}
