//! Proptest strategies for the small instances the oracles are
//! tractable on (≤ 6 jobs / ≤ 8 servers).
//!
//! Every strategy draws a handful of primitive values and finishes the
//! construction with a seeded [`StdRng`], so instances are fully
//! determined by the proptest case index — the same discipline the sim
//! uses for traces (`lyra_sim::generators`).

use lyra_core::reclaim::{JobFootprint, ReclaimServerView};
use lyra_core::snapshot::ServerGroup;
use lyra_core::{
    GpuType, JobId, McKnapsackGroup, McKnapsackItem, PlacementConfig, PoolKind, ReclaimRequest,
    ScalingCurve, ServerId, ServerView, SpeedFactors,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::placement::GangInstance;

/// Arbitrary-shaped MCKP instances: up to 6 groups of up to 5 items,
/// weights 1–11, values 0–50, capacity 0–23. No structure is imposed —
/// this is the space the DP must be exact on.
pub fn arbitrary_mckp() -> impl Strategy<Value = (Vec<McKnapsackGroup>, u32)> {
    (
        proptest::collection::vec(
            proptest::collection::vec((1u32..12, 0.0f64..50.0), 1..6),
            0..6,
        ),
        0u32..24,
    )
        .prop_map(|(raw, capacity)| {
            let groups = raw
                .into_iter()
                .enumerate()
                .map(|(key, items)| McKnapsackGroup {
                    key: key as u64,
                    items: items
                        .into_iter()
                        .map(|(weight, value)| McKnapsackItem { weight, value })
                        .collect(),
                })
                .collect();
            (groups, capacity)
        })
}

/// Production-shaped *concave* MCKP instances, mirroring how
/// `two_phase_allocate` builds phase-2 groups from linear-scaling
/// elastic jobs: item `k` has weight `k · gpus_per_worker` and value
/// `est_rt · (1 − s(w_min)/s(w_min + k))`.
///
/// The guarantees [`crate::mckp::check_greedy_bound`] relies on hold by
/// construction: marginal weights are a constant `gpus_per_worker ∈
/// {1, 2}` (≤ the capacity, which is ≥ 8) and linear speedup makes
/// marginal values nonincreasing.
pub fn concave_mckp() -> impl Strategy<Value = (Vec<McKnapsackGroup>, u32)> {
    (
        proptest::collection::vec(
            // (w_min, extra workers, gpw ∈ {1,2}, estimated runtime)
            (1u32..4, 1u32..6, 1u32..3, 60.0f64..10_000.0),
            1..7,
        ),
        8u32..33,
    )
        .prop_map(|(raw, capacity)| {
            let curve = ScalingCurve::Linear;
            let groups = raw
                .into_iter()
                .enumerate()
                .map(|(key, (w_min, extra, gpw, est_rt))| {
                    let s_base = curve.speedup(w_min);
                    let items = (1..=extra)
                        .map(|k| McKnapsackItem {
                            weight: k * gpw,
                            value: est_rt * (1.0 - s_base / curve.speedup(w_min + k)),
                        })
                        .collect();
                    McKnapsackGroup {
                        key: key as u64,
                        items,
                    }
                })
                .collect();
            (groups, capacity)
        })
}

/// Valid heterogeneous-fleet speed factors: finite, strictly positive,
/// spanning both slower- and faster-than-reference generations.
pub fn speed_factors() -> impl Strategy<Value = SpeedFactors> {
    (0.25f64..2.0, 0.25f64..2.0).prop_map(|(v100, t4)| SpeedFactors { v100, t4 })
}

/// [`concave_mckp`] instances with each group's values scaled by the
/// speed factor of a per-group GPU generation — the shape phase 2's
/// value tables take on a heterogeneous fleet (JCT reduction scales
/// with the effective capability of the GPUs backing the workers).
/// Positive scaling preserves concavity, so the DP must stay exact and
/// the greedy bound must keep holding.
pub fn hetero_mckp() -> impl Strategy<Value = (Vec<McKnapsackGroup>, u32)> {
    (concave_mckp(), speed_factors(), 0u64..1_000_000).prop_map(
        |((mut groups, capacity), speed, seed)| {
            let mut rng = StdRng::seed_from_u64(seed);
            for g in &mut groups {
                let gpu = if rng.gen_range(0..2) == 0 {
                    GpuType::V100
                } else {
                    GpuType::T4
                };
                let factor = gpu.capability() * speed.factor(gpu);
                for item in &mut g.items {
                    item.value *= factor;
                }
            }
            (groups, capacity)
        },
    )
}

/// Malleable-scenario specs: a trace seed, the elastic fraction, and
/// the explicit shrink/expand costs (seconds) every job pays to resize.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MalleableSpec {
    /// Seed for `lyra_sim::generators::tiny_traces`.
    pub seed: u64,
    /// Fraction of jobs made elastic before costs are applied.
    pub elastic_fraction: f64,
    /// Cost charged per scale-in / forced release, seconds.
    pub shrink_s: f64,
    /// Cost charged per scale-out, seconds.
    pub expand_s: f64,
}

/// Strategy over [`MalleableSpec`]s within the validated range.
pub fn malleable_spec() -> impl Strategy<Value = MalleableSpec> {
    (0u64..64, 0.3f64..1.0, 0.0f64..300.0, 0.0f64..300.0).prop_map(
        |(seed, elastic_fraction, shrink_s, expand_s)| MalleableSpec {
            seed,
            elastic_fraction,
            shrink_s,
            expand_s,
        },
    )
}

/// Deadline-scenario specs: a trace seed and the slack multiplier the
/// `set_deadlines` transform stretches every deadline by.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineSpec {
    /// Seed for `lyra_sim::generators::tiny_traces` (also seeds the
    /// per-job slack draws).
    pub seed: u64,
    /// Deadline slack multiplier (≥ a fraction of the base running
    /// time, so some deadlines are genuinely tight).
    pub slack_mult: f64,
}

/// Strategy over [`DeadlineSpec`]s within the validated range.
pub fn deadline_spec() -> impl Strategy<Value = DeadlineSpec> {
    (0u64..64, 0.2f64..4.0).prop_map(|(seed, slack_mult)| DeadlineSpec { seed, slack_mult })
}

/// Reclaim instances: up to 8 candidate on-loan servers of 8 GPUs, up
/// to 6 jobs each spanning one or two servers, and a need that is
/// occasionally infeasible (> candidate count) to exercise the
/// shortfall path.
pub fn reclaim_instance() -> impl Strategy<Value = ReclaimRequest> {
    (1usize..9, 0usize..7, 0usize..10, 0u64..1_000_000).prop_map(
        |(n_servers, n_jobs, need_raw, seed)| {
            let mut rng = StdRng::seed_from_u64(seed);
            let total_gpus = 8u32;
            let mut servers: Vec<ReclaimServerView> = (0..n_servers)
                .map(|i| ReclaimServerView {
                    id: ServerId(i as u32),
                    total_gpus,
                    jobs: Vec::new(),
                })
                .collect();
            let mut used = vec![0u32; n_servers];
            let mut jobs = Vec::new();
            for j in 0..n_jobs {
                let id = JobId(j as u64);
                let span = 1 + rng.gen_range(0..2usize.min(n_servers));
                let gpus_per_server = rng.gen_range(1..5u32);
                let first = rng.gen_range(0..n_servers);
                let mut placed_servers = 0u32;
                let mut placed_gpus = 0u32;
                for k in 0..span {
                    let s = (first + k) % n_servers;
                    if used[s] + gpus_per_server <= total_gpus {
                        servers[s].jobs.push((id, gpus_per_server));
                        used[s] += gpus_per_server;
                        placed_servers += 1;
                        placed_gpus += gpus_per_server;
                    }
                }
                if placed_servers > 0 {
                    jobs.push(JobFootprint {
                        id,
                        total_servers: placed_servers,
                        total_gpus: placed_gpus,
                    });
                }
            }
            ReclaimRequest {
                servers,
                jobs,
                need: need_raw.min(n_servers + 1),
            }
        },
    )
}

/// Gang-placement instances: up to 8 servers across both pools with
/// random occupancy and group labels, and a request of up to 6 workers
/// targeting either pool under either placement configuration.
pub fn gang_instance() -> impl Strategy<Value = GangInstance> {
    (
        1usize..9,
        1u32..7,
        1u32..5,
        proptest::bool::ANY,
        proptest::bool::ANY,
        proptest::bool::ANY,
        0u64..1_000_000,
    )
        .prop_map(
            |(n_servers, count, gpus_per_worker, on_loan, flexible, special, seed)| {
                let mut rng = StdRng::seed_from_u64(seed);
                let servers = (0..n_servers)
                    .map(|i| {
                        let pool = if rng.gen_range(0..2) == 0 {
                            PoolKind::Training
                        } else {
                            PoolKind::OnLoan
                        };
                        let group = match rng.gen_range(0..3) {
                            0 => ServerGroup::Unassigned,
                            1 => ServerGroup::Base,
                            _ => ServerGroup::Flexible,
                        };
                        // A heterogeneous fleet: placement counts GPUs, so
                        // feasibility must be invariant to generation and
                        // speed — the differential oracle checks exactly
                        // that by mixing both here.
                        let gpu_type = if rng.gen_range(0..4) == 0 {
                            GpuType::T4
                        } else {
                            GpuType::V100
                        };
                        let speed_factor = [0.8, 1.0, 1.25][rng.gen_range(0..3usize)];
                        let total_gpus = 8;
                        ServerView {
                            id: ServerId(i as u32),
                            pool,
                            gpu_type,
                            total_gpus,
                            free_gpus: rng.gen_range(0..total_gpus + 1),
                            group,
                            speed_factor,
                        }
                    })
                    .collect();
                GangInstance {
                    servers,
                    pool: if on_loan {
                        PoolKind::OnLoan
                    } else {
                        PoolKind::Training
                    },
                    count,
                    gpus_per_worker,
                    group: if flexible {
                        ServerGroup::Flexible
                    } else {
                        ServerGroup::Base
                    },
                    config: PlacementConfig {
                        special_elastic_treatment: special,
                    },
                }
            },
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategies_stay_within_oracle_bounds() {
        let mut rng = proptest::rng_for_case(0);
        for case in 0..64u32 {
            let mut rng2 = proptest::rng_for_case(case);
            let (groups, _) = arbitrary_mckp().generate(&mut rng2);
            assert!(groups.len() <= 6 && groups.iter().all(|g| g.items.len() <= 6));
            let req = reclaim_instance().generate(&mut rng);
            assert!(req.servers.len() <= 8 && req.jobs.len() <= 6);
            req.validate().expect("generated reclaim requests validate");
            let gang = gang_instance().generate(&mut rng);
            assert!(gang.servers.len() <= 8 && gang.count <= 6);
        }
    }

    #[test]
    fn concave_instances_have_uniform_steps_and_decreasing_marginals() {
        let mut rng = proptest::rng_for_case(7);
        for _ in 0..64 {
            let (groups, capacity) = concave_mckp().generate(&mut rng);
            for g in &groups {
                let mut prev_w = 0;
                let mut prev_v = 0.0;
                let mut last_dv = f64::INFINITY;
                let step = g.items[0].weight;
                assert!(step <= capacity, "every step must fit the capacity");
                for item in &g.items {
                    assert_eq!(item.weight - prev_w, step, "uniform marginal weight");
                    let dv = item.value - prev_v;
                    assert!(dv <= last_dv + 1e-9, "marginal values nonincreasing");
                    last_dv = dv;
                    prev_w = item.weight;
                    prev_v = item.value;
                }
            }
        }
    }
}
