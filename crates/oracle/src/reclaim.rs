//! Lyra's greedy reclaiming checked against the exhaustive optimum
//! (§4, §7.3).
//!
//! `reclaim_exhaustive_optimal` already lives in `lyra_core` (it is the
//! paper's own optimality study); this module turns it into a
//! differential oracle: on every small instance the production
//! heuristic must produce a *sound* outcome that never beats the
//! optimum and agrees with it on feasibility.

use lyra_core::reclaim::ReclaimEngine;
use lyra_core::{
    reclaim_exhaustive_optimal, reclaim_servers, CostModel, ReclaimOutcome, ReclaimRequest,
};
use std::collections::HashSet;

/// Validates that an outcome is sound for its request: returned servers
/// are distinct candidates whose surviving jobs are all preempted,
/// preempted jobs exist, and `returned + shortfall` covers the need.
pub fn validate_outcome(req: &ReclaimRequest, out: &ReclaimOutcome) -> Result<(), String> {
    let mut seen = HashSet::new();
    let preempted: HashSet<_> = out.preempted.iter().copied().collect();
    for sid in &out.returned {
        if !seen.insert(*sid) {
            return Err(format!("server {sid:?} returned twice"));
        }
        let server = req
            .servers
            .iter()
            .find(|s| s.id == *sid)
            .ok_or_else(|| format!("returned non-candidate server {sid:?}"))?;
        for (job, _) in &server.jobs {
            if !preempted.contains(job) {
                return Err(format!(
                    "returned {sid:?} still hosts live job {job:?}"
                ));
            }
        }
    }
    for job in &preempted {
        if !req.jobs.iter().any(|f| f.id == *job) {
            return Err(format!("preempted unknown job {job:?}"));
        }
    }
    if out.returned.len() + out.shortfall < req.need {
        return Err(format!(
            "returned {} + shortfall {} does not cover need {}",
            out.returned.len(),
            out.shortfall,
            req.need
        ));
    }
    Ok(())
}

/// Differential check of the production greedy reclaiming against the
/// exhaustive minimum-preemption optimum:
///
/// * the heuristic's outcome must be sound ([`validate_outcome`]);
/// * when the need is feasible the heuristic must meet it in full, and
///   must not preempt *fewer* jobs than the proven minimum (nor, at the
///   same preemption count, produce less collateral than the optimum's
///   minimum — either would mean the "optimal" search is wrong);
/// * when even preempting every job cannot vacate the need, the
///   heuristic must report a shortfall rather than invent servers;
/// * the incremental [`ReclaimEngine`] must reproduce the from-scratch
///   outcome exactly (returned order, preempted order, collateral,
///   shortfall).
pub fn check_reclaim_optimality(req: &ReclaimRequest, model: CostModel) -> Result<(), String> {
    req.validate()?;
    let heuristic = reclaim_servers(req, model);
    validate_outcome(req, &heuristic)?;
    let incremental = ReclaimEngine::new().reclaim(req, model);
    if incremental != heuristic {
        return Err(format!(
            "incremental engine diverged from the from-scratch greedy: \
             {incremental:?} vs {heuristic:?}"
        ));
    }
    match reclaim_exhaustive_optimal(req) {
        Some(opt) => {
            validate_outcome(req, &opt)?;
            if heuristic.shortfall != 0 {
                return Err(format!(
                    "heuristic reported shortfall {} on a feasible need of {}",
                    heuristic.shortfall, req.need
                ));
            }
            if heuristic.returned.len() != req.need {
                return Err(format!(
                    "heuristic returned {} servers for a need of {}",
                    heuristic.returned.len(),
                    req.need
                ));
            }
            if heuristic.preempted.len() < opt.preempted.len() {
                return Err(format!(
                    "heuristic preempted {} jobs, beating the proven minimum {}",
                    heuristic.preempted.len(),
                    opt.preempted.len()
                ));
            }
            if heuristic.preempted.len() == opt.preempted.len()
                && heuristic.collateral_gpus < opt.collateral_gpus
            {
                return Err(format!(
                    "heuristic collateral {} beats the optimum's {} at equal preemptions",
                    heuristic.collateral_gpus, opt.collateral_gpus
                ));
            }
        }
        None => {
            if req.need > 0 && heuristic.shortfall == 0 {
                return Err(format!(
                    "heuristic claims to satisfy an infeasible need of {}",
                    req.need
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lyra_core::reclaim::{JobFootprint, ReclaimServerView};
    use lyra_core::{JobId, ServerId};

    fn req() -> ReclaimRequest {
        // Two servers; job 0 spans both, job 1 sits on server 1 alone.
        ReclaimRequest {
            servers: vec![
                ReclaimServerView {
                    id: ServerId(0),
                    total_gpus: 8,
                    jobs: vec![(JobId(0), 4)],
                },
                ReclaimServerView {
                    id: ServerId(1),
                    total_gpus: 8,
                    jobs: vec![(JobId(0), 2), (JobId(1), 6)],
                },
            ],
            jobs: vec![
                JobFootprint {
                    id: JobId(0),
                    total_servers: 2,
                    total_gpus: 6,
                },
                JobFootprint {
                    id: JobId(1),
                    total_servers: 1,
                    total_gpus: 6,
                },
            ],
            need: 1,
        }
    }

    #[test]
    fn heuristic_agrees_with_optimal_on_pinned_instance() {
        for model in [
            CostModel::ServerFraction,
            CostModel::GpuFraction,
            CostModel::JobCount,
        ] {
            check_reclaim_optimality(&req(), model).unwrap();
        }
    }

    #[test]
    fn infeasible_need_reports_shortfall() {
        let mut r = req();
        r.need = 3; // only two candidate servers exist
        check_reclaim_optimality(&r, CostModel::ServerFraction).unwrap();
        let out = reclaim_servers(&r, CostModel::ServerFraction);
        assert_eq!(out.shortfall, 1);
    }
}
