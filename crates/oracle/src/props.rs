//! Metamorphic property helpers for the scenario zoo.
//!
//! Each helper runs two *related* full simulations and checks the
//! relation the zoo's design guarantees: a uniformly faster fleet
//! cannot lengthen mean JCT, costlier resizes cannot shorten it, and
//! slacker deadlines cannot create new misses. The helpers return
//! `Err` with both measurements instead of panicking, so they serve
//! two masters: the metamorphic test suite asserts `Ok` on pinned
//! seeds, and the golden mutation smoke asserts the *reversed* claim
//! fails — proving the properties have teeth.
//!
//! Speed and cost monotonicity are checked with a small tolerance on
//! pinned seeds: a discrete-event scheduler can reshuffle placement
//! when rates change, so those relations are monotone per pinned
//! workload, not pointwise theorems. Deadline-slack monotonicity *is*
//! exact — deadlines never influence scheduling, so stretching every
//! deadline can only shrink the miss set.

use lyra_core::SpeedFactors;
use lyra_sim::{run_scenario, transform, Scenario, SimReport};
use lyra_trace::{InferenceTrace, JobTrace};

/// Slack for float accumulation across two otherwise-identical runs.
const TOL: f64 = 1e-9;

fn run(
    scenario: &Scenario,
    jobs: &JobTrace,
    inference: &InferenceTrace,
) -> Result<SimReport, String> {
    run_scenario(scenario, jobs, inference).map_err(|e| format!("{}: {e}", scenario.name))
}

/// Claims the fleet at `fast` factors completes the workload with mean
/// JCT no worse than the fleet at `slow` factors (the caller promises
/// `fast` dominates `slow` componentwise; a false promise surfaces as
/// a failed check, which is exactly what the mutation smoke exploits).
///
/// # Errors
///
/// Both means, when the `fast` fleet is strictly slower than `TOL`
/// allows.
pub fn check_speed_factor_monotonicity(
    scenario: &Scenario,
    jobs: &JobTrace,
    inference: &InferenceTrace,
    slow: SpeedFactors,
    fast: SpeedFactors,
) -> Result<(), String> {
    let mut s_slow = scenario.clone();
    s_slow.cluster.speed = slow;
    let mut s_fast = scenario.clone();
    s_fast.cluster.speed = fast;
    let r_slow = run(&s_slow, jobs, inference)?;
    let r_fast = run(&s_fast, jobs, inference)?;
    if r_fast.jct.mean > r_slow.jct.mean + TOL {
        return Err(format!(
            "faster fleet {fast:?} has mean JCT {:.3}s vs {:.3}s at {slow:?}",
            r_fast.jct.mean, r_slow.jct.mean
        ));
    }
    if r_fast.completed < r_slow.completed {
        return Err(format!(
            "faster fleet completed {} jobs vs {}",
            r_fast.completed, r_slow.completed
        ));
    }
    Ok(())
}

/// Claims resize costs of `(costly_shrink_s, costly_expand_s)` yield
/// mean JCT no *better* than `(cheap_shrink_s, cheap_expand_s)` on the
/// same trace (the caller promises the costly pair dominates the cheap
/// pair componentwise).
///
/// # Errors
///
/// Both means, when the costlier run is strictly faster than `TOL`
/// allows.
pub fn check_shrink_cost_monotonicity(
    scenario: &Scenario,
    jobs: &JobTrace,
    inference: &InferenceTrace,
    cheap: (f64, f64),
    costly: (f64, f64),
) -> Result<(), String> {
    let mut cheap_jobs = jobs.clone();
    transform::set_resize_costs(&mut cheap_jobs, cheap.0, cheap.1);
    let mut costly_jobs = jobs.clone();
    transform::set_resize_costs(&mut costly_jobs, costly.0, costly.1);
    let r_cheap = run(scenario, &cheap_jobs, inference)?;
    let r_costly = run(scenario, &costly_jobs, inference)?;
    if r_cheap.jct.mean > r_costly.jct.mean + TOL {
        return Err(format!(
            "resize costs {costly:?} gave mean JCT {:.3}s, beating {:.3}s at {cheap:?}",
            r_costly.jct.mean, r_cheap.jct.mean
        ));
    }
    Ok(())
}

/// Claims deadlines at `hi_slack` produce no more misses (and no more
/// total lateness) than deadlines at `lo_slack` on the same trace and
/// seed. This relation is exact: deadlines never influence scheduling,
/// so both runs execute the identical schedule and the helper also
/// asserts that (same JCT stats, same completions).
///
/// # Errors
///
/// The offending counts, when slacker deadlines miss more — or when
/// the schedule itself moved, which would mean deadlines leaked into
/// scheduling decisions.
pub fn check_deadline_slack_monotonicity(
    scenario: &Scenario,
    jobs: &JobTrace,
    inference: &InferenceTrace,
    lo_slack: f64,
    hi_slack: f64,
    seed: u64,
) -> Result<(), String> {
    let mut lo_jobs = jobs.clone();
    transform::set_deadlines(&mut lo_jobs, lo_slack, seed);
    let mut hi_jobs = jobs.clone();
    transform::set_deadlines(&mut hi_jobs, hi_slack, seed);
    let r_lo = run(scenario, &lo_jobs, inference)?;
    let r_hi = run(scenario, &hi_jobs, inference)?;
    if r_lo.jct != r_hi.jct || r_lo.completed != r_hi.completed {
        return Err(format!(
            "deadlines changed the schedule: JCT {:?} vs {:?}, completed {} vs {}",
            r_lo.jct, r_hi.jct, r_lo.completed, r_hi.completed
        ));
    }
    if r_hi.deadlines.missed > r_lo.deadlines.missed {
        return Err(format!(
            "slack {hi_slack} missed {} deadlines vs {} at slack {lo_slack}",
            r_hi.deadlines.missed, r_lo.deadlines.missed
        ));
    }
    if r_hi.deadlines.total_late_s > r_lo.deadlines.total_late_s + TOL {
        return Err(format!(
            "slack {hi_slack} accumulated {:.3}s lateness vs {:.3}s at slack {lo_slack}",
            r_hi.deadlines.total_late_s, r_lo.deadlines.total_late_s
        ));
    }
    Ok(())
}
