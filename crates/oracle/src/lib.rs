#![warn(missing_docs)]

//! # lyra-oracle
//!
//! Correctness tooling for the Lyra reproduction: every fast path in
//! the scheduler is checked against an independent ground truth.
//!
//! * [`mckp`] — an exhaustive multiple-choice-knapsack solver and
//!   differential checks: the production DP must be *exact*, the greedy
//!   phase-2 ablation must respect its approximation guarantee.
//! * [`placement`] — exhaustive gang-placement feasibility: the BFD
//!   path must never reject a gang that fits, never accept one that
//!   does not, and must stay atomic on failure.
//! * [`reclaim`] — Lyra's greedy lowest-cost reclaiming checked against
//!   the exhaustive minimum-preemption optimum.
//! * [`gen`] — proptest strategies producing the small instances
//!   (≤ 6 jobs / ≤ 8 servers) the oracles are tractable on, shared by
//!   this crate's differential suites and reusable from the sim.
//! * [`props`] — metamorphic property helpers for the scenario zoo:
//!   speed-factor, resize-cost and deadline-slack monotonicity over
//!   pairs of related full simulations.
//! * [`golden`] — pinned tiny scenarios whose full JSONL event logs are
//!   committed under `tests/golden/` and compared byte-for-byte in CI,
//!   with a bless flow and a mutation-smoke mode proving the gate fires.
//! * [`crash`] — the kill-and-resume storm: the faulted golden scenario
//!   is killed at seeded epochs, checkpointed, restored, and must
//!   replay to a byte-identical event log, attribution table and
//!   report; corrupted checkpoints must be refused with typed errors.
//!
//! The oracles are deliberately *slow and obvious*: exponential
//! enumeration, no shared code with the production solvers beyond the
//! instance types. A disagreement is always a bug in exactly one place.

pub mod crash;
pub mod gen;
pub mod golden;
pub mod mckp;
pub mod placement;
pub mod props;
pub mod reclaim;
