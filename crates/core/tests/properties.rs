//! Property-based tests over the core scheduling algorithms: invariants
//! that must hold for *any* workload, not just the paper's examples.

use lyra_core::placement::{place_workers, PlacementConfig, PlacementRequest, WorkerRole};
use lyra_core::reclaim::{
    reclaim_exhaustive_optimal, reclaim_random, reclaim_scf, reclaim_servers, CostModel,
    JobFootprint, ReclaimRequest, ReclaimServerView,
};
use lyra_core::snapshot::{PendingJobView, PoolKind, ServerGroup, ServerView, Snapshot};
use lyra_core::{two_phase_allocate, AllocationConfig, GpuType, JobId, JobSpec, ServerId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};

// ---------- generators ----------

fn arb_servers() -> impl Strategy<Value = Vec<ServerView>> {
    prop::collection::vec((0u32..=8, prop::bool::ANY), 1..12).prop_map(|cfg| {
        cfg.into_iter()
            .enumerate()
            .map(|(i, (free, loaned))| {
                let pool = if loaned {
                    PoolKind::OnLoan
                } else {
                    PoolKind::Training
                };
                let gpu = if loaned { GpuType::T4 } else { GpuType::V100 };
                let mut s = ServerView::idle(i as u32, pool, gpu, 8);
                s.free_gpus = free;
                s
            })
            .collect()
    })
}

fn arb_requests() -> impl Strategy<Value = Vec<PlacementRequest>> {
    prop::collection::vec((1u32..=6, 1u32..=4, 0u8..3, prop::bool::ANY), 0..8).prop_map(|reqs| {
        reqs.into_iter()
            .enumerate()
            .map(|(i, (workers, gpw, role, fungible))| PlacementRequest {
                job: JobId(i as u64),
                workers,
                gpus_per_worker: gpw,
                role: match role {
                    0 => WorkerRole::Inelastic,
                    1 => WorkerRole::ElasticBase,
                    _ => WorkerRole::ElasticFlexible,
                },
                fungible,
                hetero: false,
            })
            .collect()
    })
}

fn arb_jobs() -> impl Strategy<Value = Vec<JobSpec>> {
    prop::collection::vec(
        (1u32..=4, 1u32..=3, prop::bool::ANY, 10.0f64..5000.0),
        0..10,
    )
    .prop_map(|jobs| {
        jobs.into_iter()
            .enumerate()
            .map(|(i, (w, gpw, elastic, rt))| {
                if elastic {
                    JobSpec::elastic(i as u64, 0.0, w, w * 2, gpw, rt)
                } else {
                    JobSpec::inelastic(i as u64, 0.0, w, gpw, rt)
                }
            })
            .collect()
    })
}

// ---------- placement invariants ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn placement_never_oversubscribes(
        servers in arb_servers(),
        requests in arb_requests(),
    ) {
        let mut scratch = servers.clone();
        let out = place_workers(&mut scratch, &requests, PlacementConfig::default());
        // Free GPUs stay within bounds.
        for s in &scratch {
            prop_assert!(s.free_gpus <= s.total_gpus);
        }
        // Accounting closes: GPUs consumed == placed workers × demand.
        let consumed: u32 = servers
            .iter()
            .zip(&scratch)
            .map(|(before, after)| before.free_gpus - after.free_gpus)
            .sum();
        let placed: u32 = out
            .placed
            .iter()
            .map(|(job, _, a)| {
                let gpw = requests.iter().find(|r| r.job == *job).unwrap().gpus_per_worker;
                a.iter().map(|(_, w)| w * gpw).sum::<u32>()
            })
            .sum();
        prop_assert_eq!(consumed, placed);
    }

    #[test]
    fn placement_gangs_are_atomic(
        servers in arb_servers(),
        requests in arb_requests(),
    ) {
        let mut scratch = servers.clone();
        let out = place_workers(&mut scratch, &requests, PlacementConfig::default());
        for req in &requests {
            let gang = matches!(req.role, WorkerRole::Inelastic | WorkerRole::ElasticBase);
            let placed = out.workers_placed(req.job);
            if gang {
                // The same (job, role) may appear once placed or failed,
                // never partially.
                let this_role: u32 = out
                    .placed
                    .iter()
                    .filter(|(j, r, _)| *j == req.job && *r == req.role)
                    .map(|(_, _, a)| a.iter().map(|(_, w)| w).sum::<u32>())
                    .sum();
                prop_assert!(this_role == 0 || this_role == req.workers);
            } else {
                prop_assert!(placed <= requests.iter().filter(|r| r.job == req.job).map(|r| r.workers).sum::<u32>());
            }
        }
    }

    #[test]
    fn placement_respects_pools_and_groups(
        servers in arb_servers(),
        requests in arb_requests(),
    ) {
        let mut scratch = servers.clone();
        let out = place_workers(&mut scratch, &requests, PlacementConfig::default());
        let by_id: HashMap<ServerId, &ServerView> =
            scratch.iter().map(|s| (s.id, s)).collect();
        for (job, role, assignment) in &out.placed {
            let req = requests.iter().find(|r| r.job == *job).unwrap();
            for (sid, _) in assignment {
                let server = by_id[sid];
                // Non-fungible, non-hetero jobs never land on loaned GPUs.
                if !req.fungible && !req.hetero {
                    prop_assert_eq!(server.pool, PoolKind::Training);
                }
                // Group separation on on-loan servers.
                if server.pool == PoolKind::OnLoan {
                    match role {
                        WorkerRole::ElasticFlexible => {
                            prop_assert_eq!(server.group, ServerGroup::Flexible)
                        }
                        _ => prop_assert_eq!(server.group, ServerGroup::Base),
                    }
                }
            }
        }
    }
}

// ---------- allocation invariants ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn allocation_never_exceeds_capacity(
        jobs in arb_jobs(),
        free in 0u32..64,
    ) {
        let servers = vec![{
            let mut s = ServerView::idle(0, PoolKind::Training, GpuType::V100, 64);
            s.free_gpus = free;
            s
        }];
        let snapshot = Snapshot {
            time_s: 0.0,
            servers,
            pending: jobs.iter().cloned().map(PendingJobView::fresh).collect(),
            running: vec![],
        };
        let out = two_phase_allocate(&snapshot, AllocationConfig::default());
        let used: u32 = out
            .launches
            .iter()
            .map(|(id, w)| {
                let spec = jobs.iter().find(|j| j.id == *id).unwrap();
                w * spec.gpus_per_worker
            })
            .sum();
        prop_assert!(used <= free, "allocated {used} of {free} GPUs");
        // Every launch within the job's range; skipped + launched = all.
        for (id, w) in &out.launches {
            let spec = jobs.iter().find(|j| j.id == *id).unwrap();
            prop_assert!(*w >= spec.w_min() && *w <= spec.w_max());
        }
        prop_assert_eq!(out.launches.len() + out.skipped.len(), jobs.len());
    }

    #[test]
    fn greedy_phase2_never_beats_mckp(
        jobs in arb_jobs(),
        free in 0u32..64,
    ) {
        use lyra_core::allocation::{Phase1Order, Phase2Solver};
        let servers = vec![{
            let mut s = ServerView::idle(0, PoolKind::Training, GpuType::V100, 64);
            s.free_gpus = free;
            s
        }];
        let snapshot = Snapshot {
            time_s: 0.0,
            servers,
            pending: jobs.iter().cloned().map(PendingJobView::fresh).collect(),
            running: vec![],
        };
        let total_value = |config: AllocationConfig| -> f64 {
            let out = two_phase_allocate(&snapshot, config);
            out.launches
                .iter()
                .map(|(id, w)| {
                    let spec = jobs.iter().find(|j| j.id == *id).unwrap();
                    spec.base_running_time() - spec.running_time(*w)
                })
                .sum()
        };
        let mckp = total_value(AllocationConfig::default());
        let greedy = total_value(AllocationConfig {
            elastic_phase: true,
            normalize_capacity: false,
            phase1: Phase1Order::Sjf,
            phase2: Phase2Solver::Greedy,
        });
        prop_assert!(greedy <= mckp + 1e-6, "greedy {greedy} > mckp {mckp}");
    }
}

// ---------- reclaiming invariants ----------

fn arb_reclaim() -> impl Strategy<Value = ReclaimRequest> {
    (2usize..8, 1usize..8, 1usize..5, any::<u64>()).prop_map(|(n_servers, n_jobs, need, seed)| {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut servers: Vec<ReclaimServerView> = (0..n_servers)
            .map(|i| ReclaimServerView {
                id: ServerId(i as u32),
                total_gpus: 8,
                jobs: vec![],
            })
            .collect();
        let mut jobs = Vec::new();
        for j in 0..n_jobs {
            let span = rng.gen_range(1..=2usize).min(n_servers);
            let mut placed = 0;
            let mut hosts = HashSet::new();
            while hosts.len() < span {
                hosts.insert(rng.gen_range(0..n_servers));
            }
            for &h in &hosts {
                let used: u32 = servers[h].jobs.iter().map(|(_, g)| g).sum();
                if used >= 8 {
                    continue;
                }
                let g = rng.gen_range(1..=(8 - used).min(4));
                servers[h].jobs.push((JobId(j as u64), g));
                placed += g;
            }
            if placed > 0 {
                let hosts_used = servers
                    .iter()
                    .filter(|s| s.jobs.iter().any(|(id, _)| id.0 == j as u64))
                    .count() as u32;
                jobs.push(JobFootprint {
                    id: JobId(j as u64),
                    total_servers: hosts_used,
                    total_gpus: placed,
                });
            }
        }
        ReclaimRequest {
            servers,
            jobs,
            need: need.min(n_servers),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn reclaim_meets_demand_or_reports_shortfall(request in arb_reclaim()) {
        request.validate().unwrap();
        for outcome in [
            reclaim_servers(&request, CostModel::ServerFraction),
            reclaim_servers(&request, CostModel::GpuFraction),
            reclaim_scf(&request),
            reclaim_random(&request, &mut StdRng::seed_from_u64(1)),
        ] {
            prop_assert_eq!(
                outcome.returned.len() + outcome.shortfall,
                request.need,
                "returned + shortfall == demand"
            );
            // Returned servers are distinct candidates.
            let set: HashSet<ServerId> = outcome.returned.iter().copied().collect();
            prop_assert_eq!(set.len(), outcome.returned.len());
            for sid in &outcome.returned {
                prop_assert!(request.servers.iter().any(|s| s.id == *sid));
            }
            // Every returned server's jobs are all preempted.
            let dead: HashSet<JobId> = outcome.preempted.iter().copied().collect();
            for sid in &outcome.returned {
                let server = request.servers.iter().find(|s| s.id == *sid).unwrap();
                for (job, _) in &server.jobs {
                    prop_assert!(dead.contains(job), "{job} survives on returned {sid}");
                }
            }
        }
    }

    #[test]
    fn heuristics_never_beat_the_optimum(request in arb_reclaim()) {
        let lyra = reclaim_servers(&request, CostModel::ServerFraction);
        if lyra.shortfall > 0 {
            return Ok(());
        }
        let Some(optimal) = reclaim_exhaustive_optimal(&request) else {
            return Ok(());
        };
        prop_assert!(lyra.preempted.len() >= optimal.preempted.len());
        let scf = reclaim_scf(&request);
        prop_assert!(scf.preempted.len() >= optimal.preempted.len());
    }
}
