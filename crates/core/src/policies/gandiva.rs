//! Gandiva-style opportunistic elastic scheduling (§7.1).
//!
//! Gandiva "exploits elasticity by scaling out jobs to utilize the remaining
//! resources on servers whenever they are under-utilized", without any
//! cluster-wide optimisation. Following the paper's adaptation:
//!
//! * pending jobs launch at base demand in arrival order (skipping jobs
//!   that do not fit);
//! * when the cluster is under-utilised — resources idle and **no pending
//!   jobs** — running elastic jobs opportunistically grow, one worker at a
//!   time in round-robin order;
//! * when jobs are waiting, previously grown jobs shrink back toward base
//!   demand to make room.

use super::{assignment_workers, scale_in_removal, JobScheduler};
use crate::gpu::GpuType;
use crate::placement::{place_best_effort, place_gang, PlacementConfig};
use crate::snapshot::{Action, PoolKind, ServerGroup, ServerView, Snapshot};

/// The Gandiva comparator.
#[derive(Debug, Clone, Default)]
pub struct GandivaScheduler {
    _private: (),
}

impl GandivaScheduler {
    /// Creates the scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

fn config() -> PlacementConfig {
    PlacementConfig {
        special_elastic_treatment: false,
    }
}

impl JobScheduler for GandivaScheduler {
    fn name(&self) -> &'static str {
        "gandiva"
    }

    fn schedule(&mut self, snapshot: &Snapshot) -> Vec<Action> {
        let mut servers: Vec<ServerView> = snapshot.servers.clone();
        let mut actions: Vec<Action> = Vec::new();

        // Under pressure, shrink grown jobs back to base first.
        let queued_demand: u32 = snapshot.pending.iter().map(|p| p.spec.base_gpus()).sum();
        let free = snapshot.free_gpus();
        if !snapshot.pending.is_empty() && queued_demand > free {
            let mut reclaimable = queued_demand - free;
            for r in &snapshot.running {
                if reclaimable == 0 {
                    break;
                }
                if r.flexible_workers > 0 {
                    let shrink = r
                        .flexible_workers
                        .min(reclaimable.div_ceil(r.spec.gpus_per_worker));
                    let removal = scale_in_removal(r, shrink);
                    let freed: u32 = assignment_workers(&removal) * r.spec.gpus_per_worker;
                    for &(sid, w) in &removal {
                        if let Some(s) = servers.iter_mut().find(|s| s.id == sid) {
                            s.free_gpus =
                                (s.free_gpus + w * r.spec.gpus_per_worker).min(s.total_gpus);
                        }
                    }
                    if !removal.is_empty() {
                        actions.push(Action::ScaleIn {
                            job: r.spec.id,
                            removal,
                        });
                        reclaimable = reclaimable.saturating_sub(freed);
                    }
                }
            }
        }

        // Launch pending jobs at base demand, arrival order, skipping.
        let mut any_left_pending = false;
        for p in &snapshot.pending {
            let spec = &p.spec;
            let mut placed = place_gang(
                &mut servers,
                PoolKind::Training,
                spec.w_min(),
                spec.gpus_per_worker,
                ServerGroup::Base,
                config(),
            )
            .map(|a| (spec.w_min(), a));
            if placed.is_none() && spec.fungible {
                let count = if spec.is_elastic() {
                    spec.w_min()
                } else {
                    spec.w_min() * GpuType::T4.worker_multiplier(spec.reference_gpu)
                };
                placed = place_gang(
                    &mut servers,
                    PoolKind::OnLoan,
                    count,
                    spec.gpus_per_worker,
                    ServerGroup::Base,
                    config(),
                )
                .map(|a| (count, a));
            }
            match placed {
                Some((workers, placement)) => actions.push(Action::Launch {
                    job: spec.id,
                    workers,
                    placement,
                }),
                None => any_left_pending = true,
            }
        }

        // Opportunistic growth only when nobody is waiting.
        if !any_left_pending {
            let mut targets: Vec<(usize, u32)> = snapshot
                .running
                .iter()
                .enumerate()
                .filter(|(_, r)| r.spec.is_elastic() && r.workers < r.spec.w_max())
                .map(|(i, r)| (i, r.workers))
                .collect();
            let mut grew: Vec<u32> = vec![0; snapshot.running.len()];
            // Round-robin +1 worker until nothing fits.
            loop {
                let mut progressed = false;
                for (idx, current) in &mut targets {
                    let r = &snapshot.running[*idx];
                    if *current >= r.spec.w_max() {
                        continue;
                    }
                    let pools = if r.spec.fungible {
                        vec![PoolKind::Training, PoolKind::OnLoan]
                    } else {
                        vec![PoolKind::Training]
                    };
                    let a = place_best_effort(
                        &mut servers,
                        &pools,
                        1,
                        r.spec.gpus_per_worker,
                        ServerGroup::Flexible,
                        config(),
                        r.spec.hetero_capable,
                    );
                    if assignment_workers(&a) == 1 {
                        *current += 1;
                        grew[*idx] += 1;
                        progressed = true;
                        actions.push(Action::ScaleOut {
                            job: r.spec.id,
                            extra: 1,
                            placement: a,
                        });
                    }
                }
                if !progressed {
                    break;
                }
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, JobSpec};
    use crate::snapshot::{PendingJobView, RunningJobView, ServerId};

    fn training(n: u32) -> Vec<ServerView> {
        (0..n)
            .map(|i| ServerView::idle(i, PoolKind::Training, GpuType::V100, 8))
            .collect()
    }

    #[test]
    fn grows_only_when_queue_is_empty() {
        let running = RunningJobView {
            spec: JobSpec::elastic(0, 0.0, 2, 6, 1, 100.0),
            workers: 2,
            work_left: 300.0,
            placement: vec![(ServerId(0), 2)],
            flexible_workers: 0,
            flex_placement: vec![],
        };
        let mut srv = training(1);
        srv[0].free_gpus = 6;
        // Case 1: empty queue → grows to w_max.
        let snap = Snapshot {
            time_s: 0.0,
            servers: srv.clone(),
            pending: vec![],
            running: vec![running.clone()],
        };
        let actions = GandivaScheduler::new().schedule(&snap);
        let grown: u32 = actions
            .iter()
            .filter_map(|a| match a {
                Action::ScaleOut { extra, .. } => Some(*extra),
                _ => None,
            })
            .sum();
        assert_eq!(grown, 4);

        // Case 2: a pending job that doesn't fit → no growth.
        let snap = Snapshot {
            time_s: 0.0,
            servers: srv,
            pending: vec![PendingJobView::fresh(JobSpec::inelastic(
                1, 0.0, 16, 1, 5.0,
            ))],
            running: vec![running],
        };
        let actions = GandivaScheduler::new().schedule(&snap);
        assert!(actions
            .iter()
            .all(|a| !matches!(a, Action::ScaleOut { .. })));
    }

    #[test]
    fn shrinks_grown_jobs_under_pressure() {
        let running = RunningJobView {
            spec: JobSpec::elastic(0, 0.0, 2, 6, 1, 100.0),
            workers: 6,
            work_left: 300.0,
            placement: vec![(ServerId(0), 6)],
            flexible_workers: 4,
            flex_placement: vec![(ServerId(0), 4)],
        };
        let mut srv = training(1);
        srv[0].free_gpus = 2;
        let snap = Snapshot {
            time_s: 0.0,
            servers: srv,
            pending: vec![PendingJobView::fresh(JobSpec::inelastic(1, 0.0, 6, 1, 5.0))],
            running: vec![running],
        };
        let actions = GandivaScheduler::new().schedule(&snap);
        assert!(actions.iter().any(|a| matches!(a, Action::ScaleIn { .. })));
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, Action::Launch { job, .. } if *job == JobId(1))),
            "freed capacity is used immediately: {actions:?}"
        );
    }

    #[test]
    fn launches_round_robin_growth_fairly() {
        let mk = |id: u64| RunningJobView {
            spec: JobSpec::elastic(id, 0.0, 1, 8, 1, 100.0),
            workers: 1,
            work_left: 100.0,
            placement: vec![(ServerId(0), 1)],
            flexible_workers: 0,
            flex_placement: vec![],
        };
        let mut srv = training(1);
        srv[0].free_gpus = 4;
        let snap = Snapshot {
            time_s: 0.0,
            servers: srv,
            pending: vec![],
            running: vec![mk(0), mk(1)],
        };
        let actions = GandivaScheduler::new().schedule(&snap);
        let per_job = |id: u64| -> u32 {
            actions
                .iter()
                .filter_map(|a| match a {
                    Action::ScaleOut { job, extra, .. } if job.0 == id => Some(*extra),
                    _ => None,
                })
                .sum()
        };
        assert_eq!(per_job(0), 2);
        assert_eq!(per_job(1), 2);
    }
}
