//! AFS-style greedy elastic scheduling (§7.1).
//!
//! AFS (Hwang et al., NSDI '21) iteratively gives one more GPU to the job
//! with the largest marginal throughput gain per GPU. The paper's
//! adaptation: "we implement AFS by allocating base demand to each job
//! first and allocating one more worker to the job with the largest
//! throughput gain per GPU", and notes that AFS "assumes unbounded
//! elasticity" — so elastic jobs may grow past their nominal `w_max`
//! (capped here at twice the range to keep the model sane), which is what
//! drives its high GPU usage and its JCT cost (§7.4).

use super::{assignment_workers, scale_in_removal, JobScheduler};
use crate::gpu::GpuType;
use crate::placement::{place_best_effort, place_gang, PlacementConfig};
use crate::snapshot::{Action, PoolKind, ServerGroup, ServerView, Snapshot};

/// The AFS comparator.
#[derive(Debug, Clone)]
pub struct AfsScheduler {
    /// Multiplier over `w_max` that approximates "unbounded" elasticity.
    pub unbounded_factor: u32,
}

impl Default for AfsScheduler {
    fn default() -> Self {
        AfsScheduler {
            unbounded_factor: 2,
        }
    }
}

impl AfsScheduler {
    /// Creates the scheduler with the default unbounded factor.
    pub fn new() -> Self {
        Self::default()
    }
}

fn config() -> PlacementConfig {
    PlacementConfig {
        special_elastic_treatment: false,
    }
}

impl JobScheduler for AfsScheduler {
    fn name(&self) -> &'static str {
        "afs"
    }

    fn schedule(&mut self, snapshot: &Snapshot) -> Vec<Action> {
        let mut servers: Vec<ServerView> = snapshot.servers.clone();
        let mut scale_ins: Vec<Action> = Vec::new();
        let mut launches: Vec<Action> = Vec::new();
        let mut scale_outs: Vec<Action> = Vec::new();

        // AFS resizes from scratch every epoch: each running elastic job's
        // flexible workers are returned to the pool (a scale-in action) and
        // regrown below if the job wins the greedy contest.
        #[derive(Clone)]
        struct Cand {
            /// Index into `snapshot.running` when resizing a running job.
            running_idx: Option<usize>,
            /// Index into `snapshot.pending` when growing a fresh launch.
            pending_idx: Option<usize>,
            workers: u32,
            cap: u32,
        }

        let mut cands: Vec<Cand> = Vec::new();

        for (i, r) in snapshot.running.iter().enumerate() {
            if r.flexible_workers > 0 {
                let removal = scale_in_removal(r, r.flexible_workers);
                for &(sid, w) in &removal {
                    if let Some(s) = servers.iter_mut().find(|s| s.id == sid) {
                        s.free_gpus = (s.free_gpus + w * r.spec.gpus_per_worker).min(s.total_gpus);
                    }
                }
                scale_ins.push(Action::ScaleIn {
                    job: r.spec.id,
                    removal,
                });
            }
            if r.spec.is_elastic() {
                cands.push(Cand {
                    running_idx: Some(i),
                    pending_idx: None,
                    workers: r.base_workers(),
                    cap: r.spec.w_max() * self.unbounded_factor,
                });
            }
        }

        // Base demand for every pending job, arrival order, skipping.
        for (i, p) in snapshot.pending.iter().enumerate() {
            let spec = &p.spec;
            let mut placed = place_gang(
                &mut servers,
                PoolKind::Training,
                spec.w_min(),
                spec.gpus_per_worker,
                ServerGroup::Base,
                config(),
            )
            .map(|a| (spec.w_min(), a));
            if placed.is_none() && spec.fungible {
                let count = if spec.is_elastic() {
                    spec.w_min()
                } else {
                    spec.w_min() * GpuType::T4.worker_multiplier(spec.reference_gpu)
                };
                placed = place_gang(
                    &mut servers,
                    PoolKind::OnLoan,
                    count,
                    spec.gpus_per_worker,
                    ServerGroup::Base,
                    config(),
                )
                .map(|a| (count, a));
            }
            if let Some((workers, placement)) = placed {
                launches.push(Action::Launch {
                    job: spec.id,
                    workers,
                    placement,
                });
                if spec.is_elastic() {
                    cands.push(Cand {
                        running_idx: None,
                        pending_idx: Some(i),
                        workers: spec.w_min(),
                        cap: spec.w_max() * self.unbounded_factor,
                    });
                }
            }
        }

        // Greedy: +1 worker to the candidate with the largest marginal
        // throughput gain per GPU; ties broken by least remaining work.
        let mut grows: Vec<(u32, Vec<(crate::snapshot::ServerId, u32)>)> =
            vec![(0, vec![]); cands.len()];
        loop {
            let mut best: Option<(usize, f64, f64)> = None;
            for (ci, c) in cands.iter().enumerate() {
                if c.workers >= c.cap {
                    continue;
                }
                let (spec, work_left) = match (c.running_idx, c.pending_idx) {
                    (Some(i), _) => (&snapshot.running[i].spec, snapshot.running[i].work_left),
                    (_, Some(i)) => (&snapshot.pending[i].spec, snapshot.pending[i].work_left),
                    _ => unreachable!("candidate has a source"),
                };
                let gain = (spec.curve.speedup(c.workers + 1) - spec.curve.speedup(c.workers))
                    / f64::from(spec.gpus_per_worker);
                if gain <= 0.0 {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((_, g, wl)) => {
                        gain > g + 1e-12 || ((gain - g).abs() <= 1e-12 && work_left < wl)
                    }
                };
                if better {
                    best = Some((ci, gain, work_left));
                }
            }
            let Some((ci, _, _)) = best else { break };
            let (spec, fungible, hetero) = match (cands[ci].running_idx, cands[ci].pending_idx) {
                (Some(i), _) => {
                    let r = &snapshot.running[i];
                    (&r.spec, r.spec.fungible, r.spec.hetero_capable)
                }
                (_, Some(i)) => {
                    let p = &snapshot.pending[i];
                    (&p.spec, p.spec.fungible, p.spec.hetero_capable)
                }
                _ => unreachable!(),
            };
            let pools = if fungible {
                vec![PoolKind::Training, PoolKind::OnLoan]
            } else {
                vec![PoolKind::Training]
            };
            let a = place_best_effort(
                &mut servers,
                &pools,
                1,
                spec.gpus_per_worker,
                ServerGroup::Flexible,
                config(),
                hetero,
            );
            if assignment_workers(&a) != 1 {
                // Cannot place anywhere: mark saturated.
                cands[ci].workers = cands[ci].cap;
                continue;
            }
            cands[ci].workers += 1;
            grows[ci].0 += 1;
            for (sid, w) in a {
                match grows[ci].1.iter_mut().find(|(s, _)| *s == sid) {
                    Some(slot) => slot.1 += w,
                    None => grows[ci].1.push((sid, w)),
                }
            }
        }

        // Emit the growth actions.
        for (ci, c) in cands.iter().enumerate() {
            let (grew, placement) = &grows[ci];
            if *grew == 0 {
                continue;
            }
            let id = match (c.running_idx, c.pending_idx) {
                (Some(i), _) => snapshot.running[i].spec.id,
                (_, Some(i)) => snapshot.pending[i].spec.id,
                _ => unreachable!(),
            };
            scale_outs.push(Action::ScaleOut {
                job: id,
                extra: *grew,
                placement: placement.clone(),
            });
        }

        // Scale-ins free GPUs that launches and scale-outs then take, so
        // order matters for the executor.
        let mut actions = scale_ins;
        actions.extend(launches);
        actions.extend(scale_outs);
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, JobSpec};
    use crate::snapshot::{PendingJobView, RunningJobView, ServerId};

    fn training(n: u32) -> Vec<ServerView> {
        (0..n)
            .map(|i| ServerView::idle(i, PoolKind::Training, GpuType::V100, 8))
            .collect()
    }

    #[test]
    fn allocates_bases_then_grows_best_marginal() {
        // Two elastic jobs; A uses 2 GPUs per worker, B uses 1 → B's
        // marginal gain per GPU is higher, so leftovers go to B.
        let a = JobSpec::elastic(0, 0.0, 1, 4, 2, 40.0);
        let b = JobSpec::elastic(1, 0.0, 1, 4, 1, 40.0);
        let snap = Snapshot {
            time_s: 0.0,
            servers: training(1),
            pending: vec![PendingJobView::fresh(a), PendingJobView::fresh(b)],
            running: vec![],
        };
        let actions = AfsScheduler::new().schedule(&snap);
        let grew_b: u32 = actions
            .iter()
            .filter_map(|x| match x {
                Action::ScaleOut { job, extra, .. } if *job == JobId(1) => Some(*extra),
                _ => None,
            })
            .sum();
        // 8 GPUs: bases take 2 + 1 = 3; B grows by 5 workers (1 GPU each).
        assert_eq!(grew_b, 5);
    }

    #[test]
    fn grows_past_w_max() {
        let b = JobSpec::elastic(0, 0.0, 1, 2, 1, 40.0);
        let snap = Snapshot {
            time_s: 0.0,
            servers: training(1),
            pending: vec![PendingJobView::fresh(b)],
            running: vec![],
        };
        let actions = AfsScheduler::new().schedule(&snap);
        let grew: u32 = actions
            .iter()
            .filter_map(|x| match x {
                Action::ScaleOut { extra, .. } => Some(*extra),
                _ => None,
            })
            .sum();
        // Unbounded factor 2 → cap 4 workers: base 1 + 3 growth.
        assert_eq!(grew, 3);
    }

    #[test]
    fn running_jobs_compete_with_new_jobs() {
        let running = RunningJobView {
            spec: JobSpec::elastic(0, 0.0, 1, 8, 1, 100.0),
            workers: 4,
            work_left: 50.0, // almost done → wins marginal ties
            placement: vec![(ServerId(0), 4)],
            flexible_workers: 3,
            flex_placement: vec![(ServerId(0), 3)],
        };
        let pending = JobSpec::elastic(1, 0.0, 1, 8, 1, 100.0);
        let mut srv = training(1);
        srv[0].free_gpus = 4;
        let snap = Snapshot {
            time_s: 0.0,
            servers: srv,
            pending: vec![PendingJobView::fresh(pending)],
            running: vec![running],
        };
        let actions = AfsScheduler::new().schedule(&snap);
        // The pending job launches at base demand (AFS always grants
        // bases) and the near-done running job wins the tie-broken growth.
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Launch { job, .. } if *job == JobId(1))));
        let grew_running: u32 = actions
            .iter()
            .filter_map(|x| match x {
                Action::ScaleOut { job, extra, .. } if *job == JobId(0) => Some(*extra),
                _ => None,
            })
            .sum();
        assert!(grew_running > 0, "running job regrows: {actions:?}");
    }
}
