//! Name-indexed registry of scheduling policies.
//!
//! Experiments select schedulers by *name* ("lyra", "fifo-backfill", …)
//! in their scenario config; the registry maps each name to a builder
//! that produces a boxed [`JobScheduler`] trait object. The simulator and
//! `lyra-bench` resolve names through [`PolicyRegistry::builtin`], and an
//! embedding application can [`register`](PolicyRegistry::register) its
//! own policies next to the built-ins — the ablation runner sweeps
//! whatever the registry holds.

use super::{
    AfsScheduler, FifoScheduler, GandivaScheduler, JobScheduler, LyraConfig, LyraScheduler,
    PolluxConfig, PolluxScheduler,
};
use crate::allocation::{AllocationConfig, Phase1Order, Phase2Solver};
use crate::placement::PlacementConfig;

/// Per-experiment inputs a policy builder may consume.
///
/// The registry's builders are pure functions of this context, so the
/// same registry can instantiate fresh, independently seeded schedulers
/// for every cell of an ablation matrix.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PolicyContext {
    /// Seed for policies with randomised comparators (Pollux's GA).
    pub seed: u64,
    /// GPU budget for the opportunistic policy: the most the inference
    /// cluster can lend, derived from its traffic trough by the caller
    /// (the registry has no access to traces).
    pub opportunistic_gpus: u32,
}

/// A boxed policy-builder closure: context in, fresh scheduler out.
pub type PolicyBuilder = Box<dyn Fn(&PolicyContext) -> Box<dyn JobScheduler> + Send + Sync>;

/// One registered policy: a name, a summary line for listings, and the
/// builder.
pub struct PolicyEntry {
    /// Unique lookup name (kebab-case by convention).
    pub name: String,
    /// One-line description for `lyra-bench` listings.
    pub summary: String,
    /// Whether the engine must disable §5.3's special elastic placement
    /// when running this policy (Table 6's naive-placement ablation
    /// expects no server to be labelled `Flexible`).
    pub naive_placement: bool,
    /// Builds a fresh scheduler instance.
    pub build: PolicyBuilder,
}

/// Error returned when a scenario names a policy the registry lacks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownPolicy {
    /// The name that failed to resolve.
    pub name: String,
    /// Every name the registry does know, for the error message.
    pub known: Vec<String>,
}

impl std::fmt::Display for UnknownPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown policy `{}` (known: {})",
            self.name,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownPolicy {}

/// The registry itself: an ordered list of entries (listing order is
/// registration order, so ablation sweeps are deterministic).
pub struct PolicyRegistry {
    entries: Vec<PolicyEntry>,
}

impl PolicyRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        PolicyRegistry {
            entries: Vec::new(),
        }
    }

    /// The registry holding every built-in policy evaluated in §7, under
    /// the names scenario configs use.
    pub fn builtin() -> Self {
        let mut r = Self::empty();
        r.register_fn("fifo", "strict FIFO, no backfill (Baseline)", false, |_| {
            Box::new(FifoScheduler::new())
        });
        r.register_fn("fifo-backfill", "FIFO with backfill", false, |_| {
            Box::new(FifoScheduler::with_backfill())
        });
        r.register_fn(
            "opportunistic",
            "FIFO queueing fungible jobs to idle inference GPUs only",
            false,
            |ctx| Box::new(FifoScheduler::opportunistic(ctx.opportunistic_gpus)),
        );
        r.register_fn(
            "lyra",
            "two-phase allocation + BFD placement (§5)",
            false,
            |_| Box::new(LyraScheduler::default()),
        );
        r.register_fn(
            "lyra-no-elastic",
            "Lyra with the elastic phase disabled (loaning-only rows)",
            false,
            |_| Box::new(LyraScheduler::new(LyraConfig::loaning_only())),
        );
        r.register_fn(
            "lyra-naive-placement",
            "Lyra without §5.3's special elastic placement (Table 6)",
            true,
            |_| {
                Box::new(LyraScheduler::new(LyraConfig {
                    allocation: AllocationConfig::default(),
                    placement: PlacementConfig {
                        special_elastic_treatment: false,
                    },
                }))
            },
        );
        r.register_fn("gandiva", "opportunistic grow/shrink comparator", false, |_| {
            Box::new(GandivaScheduler::new())
        });
        r.register_fn(
            "afs",
            "greedy marginal-throughput-per-GPU comparator",
            false,
            |_| Box::new(AfsScheduler::new()),
        );
        r.register_fn(
            "pollux",
            "goodput + genetic-algorithm comparator",
            false,
            |ctx| {
                Box::new(PolluxScheduler::new(PolluxConfig {
                    seed: ctx.seed,
                    ..PolluxConfig::default()
                }))
            },
        );
        r.register_fn(
            "lyra-las",
            "Lyra with least-attained-service phase-1 ordering",
            false,
            |_| {
                Box::new(LyraScheduler::new(LyraConfig {
                    allocation: AllocationConfig {
                        phase1: Phase1Order::Las,
                        ..AllocationConfig::default()
                    },
                    placement: PlacementConfig::default(),
                }))
            },
        );
        r.register_fn(
            "lyra-greedy-phase2",
            "Lyra with the greedy phase-2 solver instead of the knapsack",
            false,
            |_| {
                Box::new(LyraScheduler::new(LyraConfig {
                    allocation: AllocationConfig {
                        phase2: Phase2Solver::Greedy,
                        ..AllocationConfig::default()
                    },
                    placement: PlacementConfig::default(),
                }))
            },
        );
        r
    }

    /// Registers an entry, replacing any existing entry with the same
    /// name in place (so an override keeps the original sweep position).
    pub fn register(&mut self, entry: PolicyEntry) {
        match self.entries.iter_mut().find(|e| e.name == entry.name) {
            Some(slot) => *slot = entry,
            None => self.entries.push(entry),
        }
    }

    /// [`register`](Self::register) from parts, for builders that are
    /// plain closures.
    pub fn register_fn(
        &mut self,
        name: &str,
        summary: &str,
        naive_placement: bool,
        build: impl Fn(&PolicyContext) -> Box<dyn JobScheduler> + Send + Sync + 'static,
    ) {
        self.register(PolicyEntry {
            name: name.to_string(),
            summary: summary.to_string(),
            naive_placement,
            build: Box::new(build),
        });
    }

    /// Every registered name, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name.as_str()).collect()
    }

    /// All entries, in registration order.
    pub fn entries(&self) -> &[PolicyEntry] {
        &self.entries
    }

    /// Looks up one entry by name.
    pub fn get(&self, name: &str) -> Option<&PolicyEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Like [`get`](Self::get), but an unresolved name returns the same
    /// [`UnknownPolicy`] error [`build`](Self::build) would.
    ///
    /// # Errors
    ///
    /// [`UnknownPolicy`] listing every known name.
    pub fn get_checked(&self, name: &str) -> Result<&PolicyEntry, UnknownPolicy> {
        self.get(name).ok_or_else(|| UnknownPolicy {
            name: name.to_string(),
            known: self.names().iter().map(|n| n.to_string()).collect(),
        })
    }

    /// Whether `name` resolves.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Builds a fresh scheduler for `name`.
    ///
    /// # Errors
    ///
    /// [`UnknownPolicy`] when the name is not registered; the error lists
    /// every known name.
    pub fn build(
        &self,
        name: &str,
        ctx: &PolicyContext,
    ) -> Result<Box<dyn JobScheduler>, UnknownPolicy> {
        match self.get(name) {
            Some(entry) => Ok((entry.build)(ctx)),
            None => Err(UnknownPolicy {
                name: name.to_string(),
                known: self.names().iter().map(|n| n.to_string()).collect(),
            }),
        }
    }
}

impl std::fmt::Debug for PolicyRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Snapshot;

    #[test]
    fn builtin_names_build_and_self_report() {
        let reg = PolicyRegistry::builtin();
        let ctx = PolicyContext {
            seed: 7,
            opportunistic_gpus: 16,
        };
        assert_eq!(reg.names().len(), 11);
        for name in reg.names() {
            let mut policy = reg.build(name, &ctx).expect("builtin builds");
            // Every builder must yield a live scheduler; an empty snapshot
            // must produce no actions.
            assert!(policy.schedule(&Snapshot::default()).is_empty(), "{name}");
        }
    }

    #[test]
    fn unknown_names_error_with_the_known_set() {
        let reg = PolicyRegistry::builtin();
        let err = reg
            .build("lyra-quantum", &PolicyContext::default())
            .err()
            .expect("unknown name errors");
        assert_eq!(err.name, "lyra-quantum");
        assert!(err.known.iter().any(|n| n == "lyra"));
        let msg = err.to_string();
        assert!(msg.contains("lyra-quantum") && msg.contains("fifo-backfill"));
    }

    #[test]
    fn register_replaces_in_place() {
        let mut reg = PolicyRegistry::builtin();
        let before = reg
            .names()
            .iter()
            .position(|n| *n == "lyra")
            .expect("lyra registered");
        reg.register_fn("lyra", "override", false, |_| {
            Box::new(FifoScheduler::new())
        });
        let after = reg
            .names()
            .iter()
            .position(|n| *n == "lyra")
            .expect("lyra still registered");
        assert_eq!(before, after, "override keeps sweep position");
        assert_eq!(reg.get("lyra").expect("entry").summary, "override");
        let built = reg
            .build("lyra", &PolicyContext::default())
            .expect("override builds");
        assert_eq!(built.name(), "fifo");
    }

    #[test]
    fn naive_placement_metadata_is_carried() {
        let reg = PolicyRegistry::builtin();
        assert!(reg.get("lyra-naive-placement").expect("entry").naive_placement);
        assert!(!reg.get("lyra").expect("entry").naive_placement);
    }
}
