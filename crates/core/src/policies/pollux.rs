//! Pollux-style goodput-driven scheduling with a genetic algorithm (§7.1).
//!
//! Pollux (OSDI '21) models each job's *goodput* — system throughput times
//! statistical efficiency — co-tunes the batch size with the allocation
//! (Adascale keeps the learning rate consistent), and searches the joint
//! allocation space with a genetic algorithm. The paper's replication notes
//! that Pollux's behaviour hinges on the iteration budget ("the preset 100
//! iterations are not sufficient … we set the number of iterations to 250")
//! and that it does not explicitly maximise the number of launched jobs,
//! which costs it queuing time (§7.4).
//!
//! This implementation follows that structure: a seeded GA over worker
//! counts, fitness = sum of tuned per-job speedups (goodput relative to the
//! job's base allocation) with a small penalty per reallocation, capacity
//! repair by random decrement, elitism, tournament selection and uniform
//! crossover.

use super::{assignment_workers, scale_in_removal, JobScheduler};
use crate::gpu::GpuType;
use crate::job::JobSpec;
use crate::placement::{place_best_effort, place_gang, PlacementConfig};
use crate::snapshot::{Action, PoolKind, ServerGroup, ServerView, Snapshot};
use crate::tuning::GoodputModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pollux configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolluxConfig {
    /// Genetic-algorithm iterations per epoch (the paper uses 250 at
    /// cluster scale).
    pub iterations: u32,
    /// Population size.
    pub population: usize,
    /// Penalty subtracted from fitness per resized running job — Pollux's
    /// reallocation-cost term.
    pub realloc_penalty: f64,
    /// RNG seed (the GA is stochastic but reproducible).
    pub seed: u64,
}

impl Default for PolluxConfig {
    fn default() -> Self {
        PolluxConfig {
            iterations: 250,
            population: 24,
            realloc_penalty: 0.05,
            seed: 0xB0CC1,
        }
    }
}

/// The Pollux comparator.
#[derive(Debug, Clone)]
pub struct PolluxScheduler {
    /// Configuration.
    pub config: PolluxConfig,
    rng: StdRng,
}

impl PolluxScheduler {
    /// Creates the scheduler.
    pub fn new(config: PolluxConfig) -> Self {
        PolluxScheduler {
            rng: StdRng::seed_from_u64(config.seed),
            config,
        }
    }
}

impl Default for PolluxScheduler {
    fn default() -> Self {
        Self::new(PolluxConfig::default())
    }
}

/// One decision variable of the GA.
struct Gene {
    /// Source: pending index or running index.
    pending_idx: Option<usize>,
    running_idx: Option<usize>,
    /// Admissible worker counts: `0` means "leave queued" (pending only).
    min: u32,
    max: u32,
    can_skip: bool,
    gpus_per_worker: u32,
    /// Current workers (running jobs) for the reallocation penalty.
    current: Option<u32>,
}

/// Tuned goodput of `spec` at `workers`, normalised by its base-allocation
/// goodput — Pollux's per-job "speedup".
fn speedup_at(spec: &JobSpec, model: &GoodputModel, workers: u32, progress: f64) -> f64 {
    if workers == 0 {
        return 0.0;
    }
    let (_, tuned) = model.best_batch(spec.curve.speedup(workers), workers, progress);
    let base = model.goodput(
        spec.curve.speedup(spec.w_min()),
        spec.w_min(),
        model.base_local_batch,
        progress,
    );
    if base <= 0.0 {
        0.0
    } else {
        tuned / base
    }
}

impl JobScheduler for PolluxScheduler {
    fn name(&self) -> &'static str {
        "pollux"
    }

    fn rng_state(&self) -> Option<u64> {
        Some(self.rng.state())
    }

    fn restore_rng_state(&mut self, state: u64) {
        self.rng = StdRng::seed_from_u64(state);
    }

    fn schedule(&mut self, snapshot: &Snapshot) -> Vec<Action> {
        // Capacity: idle GPUs plus the entire allocation of running elastic
        // jobs — their genes pay for every worker down to `w_min`, so the
        // pool must include the base GPUs they already hold.
        let capacity: u64 = u64::from(snapshot.free_gpus())
            + snapshot
                .running
                .iter()
                .filter(|r| r.spec.is_elastic())
                .map(|r| u64::from(r.workers) * u64::from(r.spec.gpus_per_worker))
                .sum::<u64>();

        // Build genes and per-gene goodput context.
        let mut genes: Vec<Gene> = Vec::new();
        let mut specs: Vec<&JobSpec> = Vec::new();
        let mut progresses: Vec<f64> = Vec::new();
        for (i, p) in snapshot.pending.iter().enumerate() {
            genes.push(Gene {
                pending_idx: Some(i),
                running_idx: None,
                min: p.spec.w_min(),
                max: p.spec.w_max(),
                can_skip: true,
                gpus_per_worker: p.spec.gpus_per_worker,
                current: None,
            });
            specs.push(&p.spec);
            let work = p.spec.work();
            progresses.push(if work > 0.0 {
                (1.0 - p.work_left / work).clamp(0.0, 1.0)
            } else {
                0.0
            });
        }
        for (i, r) in snapshot.running.iter().enumerate() {
            if !r.spec.is_elastic() {
                continue;
            }
            genes.push(Gene {
                pending_idx: None,
                running_idx: Some(i),
                min: r.spec.w_min(),
                max: r.spec.w_max(),
                can_skip: false,
                gpus_per_worker: r.spec.gpus_per_worker,
                current: Some(r.workers),
            });
            specs.push(&r.spec);
            let work = r.spec.work();
            progresses.push(if work > 0.0 {
                (1.0 - r.work_left / work).clamp(0.0, 1.0)
            } else {
                0.0
            });
        }
        if genes.is_empty() {
            return Vec::new();
        }
        let models: Vec<GoodputModel> = specs
            .iter()
            .map(|s| GoodputModel::typical(s.w_min()))
            .collect();

        let used = |ind: &[u32]| -> u64 {
            ind.iter()
                .zip(&genes)
                .map(|(&w, g)| u64::from(w) * u64::from(g.gpus_per_worker))
                .sum()
        };
        let repair = |ind: &mut [u32], rng: &mut StdRng| {
            let mut guard = 0;
            while used(ind) > capacity && guard < 100_000 {
                guard += 1;
                let i = rng.gen_range(0..ind.len());
                let g = &genes[i];
                if ind[i] == 0 {
                    continue;
                }
                if ind[i] > g.min {
                    ind[i] -= 1;
                } else if g.can_skip {
                    ind[i] = 0;
                }
                // Running jobs stuck at min cannot shrink further; try
                // another index (the guard bounds the loop when nothing
                // can shrink — then the individual stays infeasible and
                // gets a fitness of -inf below).
            }
        };
        let fitness = |ind: &[u32]| -> f64 {
            if used(ind) > capacity {
                return f64::NEG_INFINITY;
            }
            let mut f = 0.0;
            for (i, &w) in ind.iter().enumerate() {
                f += speedup_at(specs[i], &models[i], w, progresses[i]);
                if let Some(cur) = genes[i].current {
                    if w != cur {
                        f -= self.config.realloc_penalty;
                    }
                }
            }
            f
        };

        // Seed population: current state, all-min, randoms.
        let mut population: Vec<Vec<u32>> = Vec::with_capacity(self.config.population);
        let current: Vec<u32> = genes.iter().map(|g| g.current.unwrap_or(0)).collect();
        let mut all_min: Vec<u32> = genes.iter().map(|g| g.min).collect();
        repair(&mut all_min, &mut self.rng);
        population.push(current.clone());
        population.push(all_min);
        while population.len() < self.config.population {
            let mut ind: Vec<u32> = genes
                .iter()
                .map(|g| {
                    if g.can_skip && self.rng.gen_bool(0.3) {
                        0
                    } else {
                        self.rng.gen_range(g.min..=g.max)
                    }
                })
                .collect();
            repair(&mut ind, &mut self.rng);
            population.push(ind);
        }

        // Cache each individual's fitness; recompute only on replacement.
        let mut fits: Vec<f64> = population.iter().map(|ind| fitness(ind)).collect();
        let mut best_i = 0;
        for (i, &f) in fits.iter().enumerate() {
            if f > fits[best_i] {
                best_i = i;
            }
        }
        let mut best = population[best_i].clone();
        let mut best_fit = fits[best_i];

        for _ in 0..self.config.iterations {
            // Tournament selection of two parents.
            let pick = |rng: &mut StdRng| -> usize {
                let a = rng.gen_range(0..population.len());
                let b = rng.gen_range(0..population.len());
                if fits[a] >= fits[b] {
                    a
                } else {
                    b
                }
            };
            let pa = pick(&mut self.rng);
            let pb = pick(&mut self.rng);
            // Uniform crossover.
            let mut child: Vec<u32> = (0..genes.len())
                .map(|i| {
                    if self.rng.gen_bool(0.5) {
                        population[pa][i]
                    } else {
                        population[pb][i]
                    }
                })
                .collect();
            // Mutation.
            if self.rng.gen_bool(0.8) {
                let i = self.rng.gen_range(0..genes.len());
                let g = &genes[i];
                child[i] = if g.can_skip && self.rng.gen_bool(0.2) {
                    0
                } else {
                    self.rng.gen_range(g.min..=g.max)
                };
            }
            repair(&mut child, &mut self.rng);
            let cf = fitness(&child);
            // Replace the weakest individual.
            let mut wi = 0;
            for (i, &f) in fits.iter().enumerate() {
                if f < fits[wi] {
                    wi = i;
                }
            }
            if cf > fits[wi] {
                population[wi] = child.clone();
                fits[wi] = cf;
            }
            if cf > best_fit {
                best = child;
                best_fit = cf;
            }
        }

        // Translate the best individual into actions.
        let mut servers: Vec<ServerView> = snapshot.servers.clone();
        let mut scale_ins: Vec<Action> = Vec::new();
        let mut launches: Vec<Action> = Vec::new();
        let mut scale_outs: Vec<Action> = Vec::new();
        let placement_config = PlacementConfig {
            special_elastic_treatment: false,
        };

        // Scale-ins first (free capacity).
        for (gi, g) in genes.iter().enumerate() {
            let Some(ri) = g.running_idx else { continue };
            let r = &snapshot.running[ri];
            let target = best[gi].max(g.min);
            if target < r.workers {
                let removal = scale_in_removal(r, r.workers - target);
                for &(sid, w) in &removal {
                    if let Some(s) = servers.iter_mut().find(|s| s.id == sid) {
                        s.free_gpus = (s.free_gpus + w * r.spec.gpus_per_worker).min(s.total_gpus);
                    }
                }
                if !removal.is_empty() {
                    scale_ins.push(Action::ScaleIn {
                        job: r.spec.id,
                        removal,
                    });
                }
            }
        }
        // Launches.
        for (gi, g) in genes.iter().enumerate() {
            let Some(pi) = g.pending_idx else { continue };
            if best[gi] == 0 {
                continue;
            }
            let spec = &snapshot.pending[pi].spec;
            let base = spec.w_min();
            let mut placed = place_gang(
                &mut servers,
                PoolKind::Training,
                base,
                spec.gpus_per_worker,
                ServerGroup::Base,
                placement_config,
            )
            .map(|a| (base, a));
            if placed.is_none() && spec.fungible {
                let count = if spec.is_elastic() {
                    base
                } else {
                    base * GpuType::T4.worker_multiplier(spec.reference_gpu)
                };
                placed = place_gang(
                    &mut servers,
                    PoolKind::OnLoan,
                    count,
                    spec.gpus_per_worker,
                    ServerGroup::Base,
                    placement_config,
                )
                .map(|a| (count, a));
            }
            let Some((workers, placement)) = placed else {
                continue;
            };
            launches.push(Action::Launch {
                job: spec.id,
                workers,
                placement,
            });
            let extra = best[gi].saturating_sub(base);
            if extra > 0 {
                let pools = if spec.fungible {
                    vec![PoolKind::Training, PoolKind::OnLoan]
                } else {
                    vec![PoolKind::Training]
                };
                let a = place_best_effort(
                    &mut servers,
                    &pools,
                    extra,
                    spec.gpus_per_worker,
                    ServerGroup::Flexible,
                    placement_config,
                    spec.hetero_capable,
                );
                if !a.is_empty() {
                    scale_outs.push(Action::ScaleOut {
                        job: spec.id,
                        extra: assignment_workers(&a),
                        placement: a,
                    });
                }
            }
        }
        // Scale-outs for running jobs.
        for (gi, g) in genes.iter().enumerate() {
            let Some(ri) = g.running_idx else { continue };
            let r = &snapshot.running[ri];
            let target = best[gi].max(g.min);
            if target > r.workers {
                let pools = if r.spec.fungible {
                    vec![PoolKind::Training, PoolKind::OnLoan]
                } else {
                    vec![PoolKind::Training]
                };
                let a = place_best_effort(
                    &mut servers,
                    &pools,
                    target - r.workers,
                    r.spec.gpus_per_worker,
                    ServerGroup::Flexible,
                    placement_config,
                    r.spec.hetero_capable,
                );
                if !a.is_empty() {
                    scale_outs.push(Action::ScaleOut {
                        job: r.spec.id,
                        extra: assignment_workers(&a),
                        placement: a,
                    });
                }
            }
        }

        let mut actions = scale_ins;
        actions.extend(launches);
        actions.extend(scale_outs);
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use crate::snapshot::{PendingJobView, RunningJobView, ServerId};

    fn training(n: u32) -> Vec<ServerView> {
        (0..n)
            .map(|i| ServerView::idle(i, PoolKind::Training, GpuType::V100, 8))
            .collect()
    }

    fn fast_config() -> PolluxConfig {
        PolluxConfig {
            iterations: 100,
            population: 16,
            realloc_penalty: 0.05,
            seed: 7,
        }
    }

    #[test]
    fn launches_jobs_when_capacity_abounds() {
        let a = JobSpec::elastic(0, 0.0, 2, 4, 1, 50.0);
        let b = JobSpec::elastic(1, 0.0, 2, 4, 1, 30.0);
        let snap = Snapshot {
            time_s: 0.0,
            servers: training(2),
            pending: vec![PendingJobView::fresh(a), PendingJobView::fresh(b)],
            running: vec![],
        };
        let actions = PolluxScheduler::new(fast_config()).schedule(&snap);
        let launched: Vec<JobId> = actions
            .iter()
            .filter_map(|x| match x {
                Action::Launch { job, .. } => Some(*job),
                _ => None,
            })
            .collect();
        assert_eq!(launched.len(), 2, "plenty of room: both launch");
    }

    #[test]
    fn respects_capacity() {
        // 8 GPUs; three jobs wanting [2,8] workers each: the GA must keep
        // the total within capacity.
        let specs: Vec<JobSpec> = (0..3)
            .map(|i| JobSpec::elastic(i, 0.0, 2, 8, 1, 50.0))
            .collect();
        let snap = Snapshot {
            time_s: 0.0,
            servers: training(1),
            pending: specs.into_iter().map(PendingJobView::fresh).collect(),
            running: vec![],
        };
        let actions = PolluxScheduler::new(fast_config()).schedule(&snap);
        let total: u32 = actions
            .iter()
            .map(|a| match a {
                Action::Launch { workers, .. } => *workers,
                Action::ScaleOut { extra, .. } => *extra,
                Action::ScaleIn { .. } => 0,
            })
            .sum();
        assert!(total <= 8, "placed {total} workers into 8 GPUs");
    }

    #[test]
    fn is_seed_deterministic() {
        let mk = || {
            let a = JobSpec::elastic(0, 0.0, 2, 8, 1, 50.0);
            let b = JobSpec::elastic(1, 0.0, 2, 8, 1, 10.0);
            Snapshot {
                time_s: 0.0,
                servers: training(1),
                pending: vec![PendingJobView::fresh(a), PendingJobView::fresh(b)],
                running: vec![],
            }
        };
        let x = PolluxScheduler::new(fast_config()).schedule(&mk());
        let y = PolluxScheduler::new(fast_config()).schedule(&mk());
        assert_eq!(x, y);
    }

    #[test]
    fn shrinks_nearly_done_jobs_for_fresh_ones() {
        // A running job at 95 % progress holding 8 workers vs a fresh
        // pending job: goodput favours reallocating toward the fresh job.
        let running = RunningJobView {
            spec: JobSpec::elastic(0, 0.0, 2, 8, 1, 100.0),
            workers: 8,
            work_left: 40.0, // 95 % done (work = 800)
            placement: vec![(ServerId(0), 8)],
            flexible_workers: 6,
            flex_placement: vec![(ServerId(0), 6)],
        };
        let fresh = JobSpec::elastic(1, 0.0, 2, 8, 1, 100.0);
        let mut srv = training(1);
        srv[0].free_gpus = 0; // the running job occupies all 8 GPUs
        let snap = Snapshot {
            time_s: 0.0,
            servers: srv,
            pending: vec![PendingJobView::fresh(fresh)],
            running: vec![running],
        };
        let actions = PolluxScheduler::new(fast_config()).schedule(&snap);
        assert!(
            actions.iter().any(|a| matches!(a, Action::ScaleIn { .. })),
            "old job shrinks: {actions:?}"
        );
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, Action::Launch { job, .. } if *job == JobId(1))),
            "fresh job launches: {actions:?}"
        );
    }

    #[test]
    fn empty_snapshot_no_actions() {
        let mut s = PolluxScheduler::default();
        assert!(s.schedule(&Snapshot::default()).is_empty());
    }
}
