//! The complete job-scheduling policies evaluated in §7.
//!
//! Each policy consumes a [`Snapshot`] at a scheduling epoch and returns the
//! [`Action`]s to apply: launches for pending jobs (base demand), scale-outs
//! for flexible workers and scale-ins when elastic jobs must shrink. The
//! simulator (or a resource-manager shim) executes the actions.
//!
//! | Policy | Paper role |
//! |---|---|
//! | [`FifoScheduler`] | the Baseline: FIFO, no loaning, no scaling |
//! | [`LyraScheduler`] | §5: two-phase allocation + BFD placement |
//! | [`GandivaScheduler`] | opportunistic grow/shrink (§7.1) |
//! | [`AfsScheduler`] | greedy marginal-throughput-per-GPU (§7.1) |
//! | [`PolluxScheduler`] | goodput + genetic algorithm + tuning (§7.1) |
//!
//! Lyra+TunedJobs is [`LyraScheduler`] with the simulator applying
//! [`crate::tuning::GoodputModel::tuned_gain`] to elastic jobs' service
//! rates — the scheduling policy itself is unchanged (§7.4).

mod afs;
mod fifo;
mod gandiva;
mod lyra;
mod pollux;
mod registry;

pub use afs::AfsScheduler;
pub use fifo::FifoScheduler;
pub use gandiva::GandivaScheduler;
pub use lyra::{LyraConfig, LyraScheduler};
pub use pollux::{PolluxConfig, PolluxScheduler};
pub use registry::{PolicyContext, PolicyEntry, PolicyRegistry, UnknownPolicy};

use crate::snapshot::{Action, Assignment, RunningJobView, ServerId, Snapshot};

/// A job-scheduling policy invoked at every scheduling epoch.
pub trait JobScheduler {
    /// Short name for reports ("fifo", "lyra", …).
    fn name(&self) -> &'static str;

    /// Computes the actions for this epoch.
    ///
    /// Implementations must be deterministic given the snapshot and their
    /// own seeded state, and must return *feasible* actions: launches and
    /// scale-outs come with placements that fit the snapshot's free GPUs.
    fn schedule(&mut self, snapshot: &Snapshot) -> Vec<Action>;

    /// Raw RNG state for checkpointing, `None` for stateless policies.
    ///
    /// A policy whose decisions consume randomness must expose its
    /// generator state here (and accept it back via
    /// [`restore_rng_state`](Self::restore_rng_state)) so a restored
    /// run replays the identical epoch decisions.
    fn rng_state(&self) -> Option<u64> {
        None
    }

    /// Restores a previously captured RNG state; no-op for stateless
    /// policies.
    fn restore_rng_state(&mut self, _state: u64) {}
}

/// Builds a scale-in removal for `k` workers of a running elastic job,
/// draining whole servers of its flexible placement first so that vacated
/// on-loan servers can be returned without preemption.
pub(crate) fn scale_in_removal(running: &RunningJobView, k: u32) -> Assignment {
    let mut slots: Vec<(ServerId, u32)> = running.flex_placement.clone();
    // Fewest-workers servers first: vacating them entirely frees servers.
    slots.sort_by_key(|&(id, n)| (n, id));
    let mut removal: Vec<(ServerId, u32)> = Vec::new();
    let mut left = k;
    for (id, n) in slots {
        if left == 0 {
            break;
        }
        let take = n.min(left);
        removal.push((id, take));
        left -= take;
    }
    removal
}

/// Sums the workers in an assignment.
pub(crate) fn assignment_workers(a: &Assignment) -> u32 {
    a.iter().map(|(_, w)| w).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSpec;

    #[test]
    fn scale_in_prefers_emptying_small_slots() {
        let running = RunningJobView {
            spec: JobSpec::elastic(1, 0.0, 2, 8, 1, 10.0),
            workers: 8,
            work_left: 100.0,
            placement: vec![(ServerId(0), 4), (ServerId(1), 3), (ServerId(2), 1)],
            flexible_workers: 6,
            flex_placement: vec![(ServerId(0), 2), (ServerId(1), 3), (ServerId(2), 1)],
        };
        let removal = scale_in_removal(&running, 3);
        // Server 2 (1 worker) drained first, then server 0 (2 workers).
        assert_eq!(removal, vec![(ServerId(2), 1), (ServerId(0), 2)]);
        assert_eq!(assignment_workers(&removal), 3);
    }

    #[test]
    fn scale_in_caps_at_flexible_workers() {
        let running = RunningJobView {
            spec: JobSpec::elastic(1, 0.0, 2, 8, 1, 10.0),
            workers: 4,
            work_left: 100.0,
            placement: vec![(ServerId(0), 4)],
            flexible_workers: 2,
            flex_placement: vec![(ServerId(0), 2)],
        };
        let removal = scale_in_removal(&running, 10);
        assert_eq!(assignment_workers(&removal), 2);
    }
}
