//! Lyra's job scheduler: two-phase allocation (§5.2) plus BFD placement
//! with elastic/on-loan preferences (§5.3) and lowest-priority scheduling
//! of heterogeneous jobs (§6).

use super::{assignment_workers, scale_in_removal, JobScheduler};
use crate::allocation::{two_phase_allocate_with, AllocationConfig};
use crate::gpu::GpuType;
use crate::job::{JobId, JobSpec};
use crate::mckp::MckpScratch;
use crate::placement::{
    audit_placement, candidate_fits, place_best_effort, place_gang_with, PlacementConfig,
    PlacementScratch, WorkerRole,
};
use crate::snapshot::{Action, PoolKind, ServerGroup, ServerView, Snapshot};

/// Configuration of the Lyra policy.
#[derive(Debug, Clone, Copy, PartialEq)]
#[derive(Default)]
pub struct LyraConfig {
    /// Two-phase allocation knobs (elastic phase on/off, normalisation).
    pub allocation: AllocationConfig,
    /// Placement knobs (the §5.3 special elastic treatment; Table 6
    /// disables it).
    pub placement: PlacementConfig,
}


impl LyraConfig {
    /// Lyra without elastic scaling — the configuration of the capacity-
    /// loaning-only rows of Table 5 (§7.3).
    pub fn loaning_only() -> Self {
        LyraConfig {
            allocation: AllocationConfig {
                elastic_phase: false,
                ..AllocationConfig::default()
            },
            placement: PlacementConfig::default(),
        }
    }
}

/// Reusable solver buffers carried across scheduling epochs. Pure scratch:
/// no call-to-call state, so cloning a scheduler or starting fresh changes
/// nothing but allocation traffic.
#[derive(Debug, Clone, Default)]
struct SchedScratch {
    /// Phase-2 knapsack DP table + choice matrix.
    mckp: MckpScratch,
    /// Gang-placement server copy + audit candidate list.
    placement: PlacementScratch,
}

/// The Lyra job scheduler.
#[derive(Debug, Clone, Default)]
pub struct LyraScheduler {
    /// Policy configuration.
    pub config: LyraConfig,
    scratch: SchedScratch,
}

impl LyraScheduler {
    /// Creates the scheduler with the given configuration.
    pub fn new(config: LyraConfig) -> Self {
        LyraScheduler {
            config,
            scratch: SchedScratch::default(),
        }
    }
}

/// Applies a scale-in removal to the scratch server state, releasing GPUs
/// and resetting the group label of servers that become empty.
fn apply_removal(
    servers: &mut [ServerView],
    removal: &[(crate::snapshot::ServerId, u32)],
    gpus_per_worker: u32,
) {
    for &(sid, workers) in removal {
        if let Some(s) = servers.iter_mut().find(|s| s.id == sid) {
            s.free_gpus = (s.free_gpus + workers * gpus_per_worker).min(s.total_gpus);
            if s.is_empty() {
                s.group = ServerGroup::Unassigned;
            }
        }
    }
}

/// Pool preference for a job's *base* (gang) workers.
fn base_pools(spec: &JobSpec, special: bool) -> Vec<PoolKind> {
    if spec.hetero_capable {
        vec![PoolKind::Training, PoolKind::OnLoan]
    } else if spec.is_elastic() && spec.fungible && special {
        vec![PoolKind::OnLoan, PoolKind::Training]
    } else if spec.fungible {
        vec![PoolKind::Training, PoolKind::OnLoan]
    } else {
        vec![PoolKind::Training]
    }
}

/// Pool preference for a job's *flexible* workers.
fn flex_pools(spec: &JobSpec, special: bool) -> Vec<PoolKind> {
    if spec.hetero_capable || (spec.fungible && special) {
        vec![PoolKind::OnLoan, PoolKind::Training]
    } else if spec.fungible {
        vec![PoolKind::Training, PoolKind::OnLoan]
    } else {
        vec![PoolKind::Training]
    }
}

impl LyraScheduler {
    /// Places one launch decision, returning the actions (launch plus an
    /// optional flexible scale-out) or `None` when the gang does not fit.
    fn place_launch(
        &mut self,
        servers: &mut [ServerView],
        spec: &JobSpec,
        target_workers: u32,
    ) -> Option<Vec<Action>> {
        let special = self.config.placement.special_elastic_treatment;
        let base_workers = spec.w_min();
        let extra = target_workers.saturating_sub(base_workers);
        let auditing = lyra_obs::audit::is_enabled();

        // Gang-place the base demand: one pool, first preference that fits.
        let pools = base_pools(spec, special);
        // Candidate fits (with best-fit costs) before placement mutates
        // the scratch state, for the decision audit.
        let base_candidates = if auditing {
            candidate_fits(
                servers,
                &pools,
                spec.gpus_per_worker,
                ServerGroup::Base,
                self.config.placement,
            )
        } else {
            Vec::new()
        };
        let mut launched: Option<(u32, Vec<(crate::snapshot::ServerId, u32)>)> = None;
        for pool in pools {
            // Fungible *inelastic* jobs moved to T4 take the memory-driven
            // worker multiplier; elastic jobs keep their worker count (the
            // per-worker rate models the slower GPU).
            let count = if pool == PoolKind::OnLoan && !spec.is_elastic() {
                base_workers * GpuType::T4.worker_multiplier(spec.reference_gpu)
            } else {
                base_workers
            };
            if let Some(a) = place_gang_with(
                &mut self.scratch.placement,
                servers,
                pool,
                count,
                spec.gpus_per_worker,
                ServerGroup::Base,
                self.config.placement,
            ) {
                launched = Some((count, a));
                break;
            }
        }
        if auditing {
            let role = if spec.is_elastic() {
                WorkerRole::ElasticBase
            } else {
                WorkerRole::Inelastic
            };
            audit_placement(
                spec.id,
                role,
                spec.gpus_per_worker,
                launched.as_ref().map(|(_, a)| a),
                &base_candidates,
            );
        }
        let (workers, placement) = launched?;
        let mut actions = vec![Action::Launch {
            job: spec.id,
            workers,
            placement,
        }];

        if extra > 0 {
            let flex_prefs = flex_pools(spec, special);
            let flex_candidates = if auditing {
                candidate_fits(
                    servers,
                    &flex_prefs,
                    spec.gpus_per_worker,
                    ServerGroup::Flexible,
                    self.config.placement,
                )
            } else {
                Vec::new()
            };
            let flex = place_best_effort(
                servers,
                &flex_prefs,
                extra,
                spec.gpus_per_worker,
                ServerGroup::Flexible,
                self.config.placement,
                spec.hetero_capable,
            );
            if auditing {
                let placed = (!flex.is_empty()).then_some(&flex);
                audit_placement(
                    spec.id,
                    WorkerRole::ElasticFlexible,
                    spec.gpus_per_worker,
                    placed,
                    &flex_candidates,
                );
            }
            if !flex.is_empty() {
                actions.push(Action::ScaleOut {
                    job: spec.id,
                    extra: assignment_workers(&flex),
                    placement: flex,
                });
            }
        }
        Some(actions)
    }

    /// Runs allocation + placement over one snapshot slice, mutating the
    /// scratch servers.
    fn schedule_slice(&mut self, snapshot: &Snapshot, servers: &mut [ServerView]) -> Vec<Action> {
        let outcome =
            two_phase_allocate_with(&mut self.scratch.mckp, snapshot, self.config.allocation);
        let mut actions: Vec<Action> = Vec::new();

        // Scale-ins first: they free capacity the launches were promised.
        // `resizes` is id-sorted and short; `running` is long and also
        // id-ordered — resolving each resize against it emits actions in
        // the same order as a walk over every running job, without paying
        // an O(running) probe loop every epoch.
        let mut scale_outs: Vec<(JobId, u32)> = Vec::new();
        for &(id, target) in &outcome.resizes {
            let Some(r) = snapshot.running.iter().find(|r| r.spec.id == id) else {
                continue;
            };
            if target < r.workers {
                let removal = scale_in_removal(r, r.workers - target);
                apply_removal(servers, &removal, r.spec.gpus_per_worker);
                if !removal.is_empty() {
                    actions.push(Action::ScaleIn {
                        job: r.spec.id,
                        removal,
                    });
                }
            } else if target > r.workers {
                scale_outs.push((r.spec.id, target - r.workers));
            }
        }

        // Launches in BFD order (largest per-worker demand first). Specs
        // come straight from the allocator's pending indices — launches
        // are few even when the queue is deep, and this runs every
        // scheduler epoch, so no pass over the whole queue.
        let mut launches: Vec<(&JobSpec, u32)> = outcome
            .launches
            .iter()
            .zip(&outcome.launch_indices)
            .map(|(&(id, target), &idx)| {
                let spec = &snapshot.pending[idx as usize].spec;
                debug_assert_eq!(spec.id, id, "launch index out of step with launch list");
                (spec, target)
            })
            .collect();
        launches.sort_by(|a, b| {
            b.0.gpus_per_worker
                .cmp(&a.0.gpus_per_worker)
                .then(a.0.id.cmp(&b.0.id))
        });
        for (spec, target) in launches {
            if let Some(mut acts) = self.place_launch(servers, spec, target) {
                actions.append(&mut acts);
            }
        }

        // Scale-outs for running jobs.
        for (id, extra) in scale_outs {
            let r = snapshot
                .running
                .iter()
                .find(|r| r.spec.id == id)
                .expect("resize target exists");
            let flex = place_best_effort(
                servers,
                &flex_pools(&r.spec, self.config.placement.special_elastic_treatment),
                extra,
                r.spec.gpus_per_worker,
                ServerGroup::Flexible,
                self.config.placement,
                r.spec.hetero_capable,
            );
            if !flex.is_empty() {
                actions.push(Action::ScaleOut {
                    job: id,
                    extra: assignment_workers(&flex),
                    placement: flex,
                });
            }
        }
        actions
    }
}

impl JobScheduler for LyraScheduler {
    fn name(&self) -> &'static str {
        "lyra"
    }

    fn schedule(&mut self, snapshot: &Snapshot) -> Vec<Action> {
        let mut servers = snapshot.servers.clone();

        // Fast path: with no heterogeneous jobs anywhere, the "main" slice
        // below is the whole snapshot and the second pass is empty — skip
        // cloning every pending/running view just to filter nothing out.
        let any_hetero = snapshot.pending.iter().any(|p| p.spec.hetero_capable)
            || snapshot.running.iter().any(|r| r.spec.hetero_capable);
        if !any_hetero {
            return self.schedule_slice(snapshot, &mut servers);
        }

        // Heterogeneous jobs get the lowest priority: they are scheduled in
        // a second pass over whatever the first pass left (§6).
        let main = Snapshot {
            time_s: snapshot.time_s,
            servers: servers.clone(),
            pending: snapshot
                .pending
                .iter()
                .filter(|p| !p.spec.hetero_capable)
                .cloned()
                .collect(),
            running: snapshot
                .running
                .iter()
                .filter(|r| !r.spec.hetero_capable)
                .cloned()
                .collect(),
        };
        let mut actions = self.schedule_slice(&main, &mut servers);

        let hetero_pending: Vec<_> = snapshot
            .pending
            .iter()
            .filter(|p| p.spec.hetero_capable)
            .cloned()
            .collect();
        let hetero_running: Vec<_> = snapshot
            .running
            .iter()
            .filter(|r| r.spec.hetero_capable)
            .cloned()
            .collect();
        if !hetero_pending.is_empty() || !hetero_running.is_empty() {
            let hetero = Snapshot {
                time_s: snapshot.time_s,
                servers: servers.clone(),
                pending: hetero_pending,
                running: hetero_running,
            };
            actions.extend(self.schedule_slice(&hetero, &mut servers));
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{PendingJobView, RunningJobView, ServerId};

    fn servers(train: u32, loan: u32) -> Vec<ServerView> {
        let mut v: Vec<ServerView> = (0..train)
            .map(|i| ServerView::idle(i, PoolKind::Training, GpuType::V100, 8))
            .collect();
        for i in 0..loan {
            v.push(ServerView::idle(
                train + i,
                PoolKind::OnLoan,
                GpuType::T4,
                8,
            ));
        }
        v
    }

    fn sched() -> LyraScheduler {
        LyraScheduler::default()
    }

    #[test]
    fn launches_base_and_flexible_separately() {
        let spec = JobSpec::elastic(0, 0.0, 2, 6, 1, 30.0);
        let snap = Snapshot {
            time_s: 0.0,
            servers: servers(1, 0),
            pending: vec![PendingJobView::fresh(spec)],
            running: vec![],
        };
        let actions = sched().schedule(&snap);
        assert_eq!(actions.len(), 2);
        match (&actions[0], &actions[1]) {
            (Action::Launch { workers, .. }, Action::ScaleOut { extra, .. }) => {
                assert_eq!(*workers, 2);
                assert_eq!(*extra, 4);
            }
            other => panic!("unexpected actions {other:?}"),
        }
    }

    #[test]
    fn elastic_fungible_prefers_on_loan_and_splits_groups() {
        let spec = JobSpec::elastic(0, 0.0, 2, 4, 2, 30.0).with_fungible(true);
        let snap = Snapshot {
            time_s: 0.0,
            servers: servers(1, 2),
            pending: vec![PendingJobView::fresh(spec)],
            running: vec![],
        };
        let actions = sched().schedule(&snap);
        let launch_servers: Vec<u32> = match &actions[0] {
            Action::Launch { placement, .. } => placement.iter().map(|(s, _)| s.0).collect(),
            other => panic!("unexpected {other:?}"),
        };
        let flex_servers: Vec<u32> = match &actions[1] {
            Action::ScaleOut { placement, .. } => placement.iter().map(|(s, _)| s.0).collect(),
            other => panic!("unexpected {other:?}"),
        };
        // Base on one on-loan server, flexible on the *other* (group split).
        assert!(launch_servers.iter().all(|s| *s >= 1));
        assert!(flex_servers.iter().all(|s| *s >= 1));
        assert!(launch_servers.iter().all(|s| !flex_servers.contains(s)));
    }

    #[test]
    fn fungible_inelastic_gets_worker_multiplier_on_t4() {
        let spec = JobSpec::inelastic(0, 0.0, 2, 2, 50.0).with_fungible(true);
        let snap = Snapshot {
            time_s: 0.0,
            servers: servers(0, 1),
            pending: vec![PendingJobView::fresh(spec)],
            running: vec![],
        };
        let actions = sched().schedule(&snap);
        match &actions[0] {
            Action::Launch { workers, .. } => assert_eq!(*workers, 4),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn running_jobs_scale_in_under_pressure() {
        // One 8-GPU server: a running elastic job holds 4 workers (2 flex);
        // a short inelastic job needs 6 GPUs.
        let running = RunningJobView {
            spec: JobSpec::elastic(0, 0.0, 2, 6, 1, 100.0),
            workers: 4,
            work_left: 400.0,
            placement: vec![(ServerId(0), 4)],
            flexible_workers: 2,
            flex_placement: vec![(ServerId(0), 2)],
        };
        let mut srv = servers(1, 0);
        srv[0].free_gpus = 4;
        let snap = Snapshot {
            time_s: 0.0,
            servers: srv,
            pending: vec![PendingJobView::fresh(JobSpec::inelastic(1, 0.0, 6, 1, 5.0))],
            running: vec![running],
        };
        let actions = sched().schedule(&snap);
        let scale_in = actions.iter().find(|a| matches!(a, Action::ScaleIn { .. }));
        let launch = actions.iter().find(|a| matches!(a, Action::Launch { .. }));
        assert!(scale_in.is_some(), "elastic job shrinks: {actions:?}");
        assert!(launch.is_some(), "short job launches: {actions:?}");
    }

    #[test]
    fn hetero_jobs_scheduled_last() {
        // 8 GPUs; a hetero job (4 GPUs) submitted *before* a normal job
        // (8 GPUs). Lyra gives the normal job priority; hetero job waits.
        let hetero = JobSpec::inelastic(0, 0.0, 4, 1, 10.0).with_hetero(true);
        let normal = JobSpec::inelastic(1, 0.0, 8, 1, 10.0);
        let snap = Snapshot {
            time_s: 0.0,
            servers: servers(1, 0),
            pending: vec![PendingJobView::fresh(hetero), PendingJobView::fresh(normal)],
            running: vec![],
        };
        let actions = sched().schedule(&snap);
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0].job(), JobId(1));
    }

    #[test]
    fn hetero_flexible_spans_gpu_types() {
        let spec = JobSpec::elastic(0, 0.0, 2, 8, 2, 30.0)
            .with_fungible(true)
            .with_hetero(true);
        let snap = Snapshot {
            time_s: 0.0,
            servers: servers(1, 1),
            pending: vec![PendingJobView::fresh(spec)],
            running: vec![],
        };
        let actions = sched().schedule(&snap);
        // Base (2×2 GPUs) on training; flexible 6 workers need 12 GPUs:
        // 4 on training remainder? base takes 4 of training's 8; flex
        // prefers on-loan (4 workers) then spans back to training (2).
        let total: u32 = actions
            .iter()
            .map(|a| match a {
                Action::Launch { workers, .. } => *workers,
                Action::ScaleOut { extra, .. } => *extra,
                Action::ScaleIn { .. } => 0,
            })
            .sum();
        assert_eq!(total, 8, "full range placed across both pools: {actions:?}");
    }

    #[test]
    fn loaning_only_config_never_scales() {
        let spec = JobSpec::elastic(0, 0.0, 2, 6, 1, 30.0);
        let snap = Snapshot {
            time_s: 0.0,
            servers: servers(1, 0),
            pending: vec![PendingJobView::fresh(spec)],
            running: vec![],
        };
        let actions = LyraScheduler::new(LyraConfig::loaning_only()).schedule(&snap);
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            Action::Launch { workers, .. } => assert_eq!(*workers, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_snapshot_no_actions() {
        assert!(sched().schedule(&Snapshot::default()).is_empty());
    }
}
