//! The Baseline scheduler: FIFO with gang scheduling (§7.1).
//!
//! Jobs launch in strict submission order at their requested demand. The
//! scheduler stops at the first job whose gang placement fails
//! (head-of-line blocking — the behaviour of a plain FIFO cluster scheduler
//! without backfill), or optionally skips blocked jobs when `backfill` is
//! enabled. No elastic scaling: elastic jobs run at their requested demand
//! for their whole lifetime.
//!
//! Fungible jobs may still use on-loan servers when the scenario loans
//! capacity (rows 6–9 of Table 5 combine FIFO job scheduling with capacity
//! loaning): if a fungible job's gang does not fit on training servers, the
//! scheduler retries on the on-loan pool with the memory-driven worker
//! multiplier ([`crate::gpu::GpuType::worker_multiplier`]).

use super::JobScheduler;
use crate::gpu::GpuType;
use crate::placement::{place_gang, PlacementConfig};
use crate::snapshot::{Action, PoolKind, ServerGroup, Snapshot};

/// FIFO baseline policy.
#[derive(Debug, Clone)]
pub struct FifoScheduler {
    /// Skip blocked jobs instead of head-of-line blocking.
    pub backfill: bool,
    /// Opportunistic mode (§7.1's "Opportunistic Scheduling"): fungible
    /// jobs queue to the *inference* cluster only — they run on on-loan
    /// servers when idle ones exist and never occupy training servers.
    pub fungible_on_loan_only: bool,
    /// Largest GPU footprint the inference cluster could ever host (its
    /// capacity minus headroom). Fungible jobs whose adjusted demand
    /// exceeds this fall back to the training queue instead of waiting
    /// forever. Zero disables the check.
    pub on_loan_capacity_cap: u32,
}

impl FifoScheduler {
    /// Strict FIFO (the paper's Baseline).
    pub fn new() -> Self {
        FifoScheduler {
            backfill: false,
            fungible_on_loan_only: false,
            on_loan_capacity_cap: 0,
        }
    }

    /// FIFO with backfill (skips jobs that do not fit).
    pub fn with_backfill() -> Self {
        FifoScheduler {
            backfill: true,
            ..Self::new()
        }
    }

    /// The opportunistic comparator: fungible jobs wait for idle
    /// inference servers with lower priority than inference work; other
    /// jobs use the training cluster FIFO. Backfill is implied (the two
    /// queues are independent).
    pub fn opportunistic(inference_capacity_gpus: u32) -> Self {
        FifoScheduler {
            // Training-side scheduling matches the Baseline's FIFO; the
            // fungible/inference queue skips independently.
            backfill: true,
            fungible_on_loan_only: true,
            on_loan_capacity_cap: inference_capacity_gpus,
        }
    }
}

impl Default for FifoScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl JobScheduler for FifoScheduler {
    fn name(&self) -> &'static str {
        if self.backfill {
            "fifo-backfill"
        } else {
            "fifo"
        }
    }

    fn schedule(&mut self, snapshot: &Snapshot) -> Vec<Action> {
        let mut servers = snapshot.servers.clone();
        let config = PlacementConfig {
            special_elastic_treatment: false,
        };
        let mut actions = Vec::new();
        for p in &snapshot.pending {
            let spec = &p.spec;
            let workers = spec.demand;
            let mult = GpuType::T4.worker_multiplier(spec.reference_gpu);
            let fits_inference = self.on_loan_capacity_cap == 0
                || workers * mult * spec.gpus_per_worker <= self.on_loan_capacity_cap;
            // A job already evicted from the inference side falls back to
            // the training queue — users do not resubmit into the same
            // eviction loop forever.
            if self.fungible_on_loan_only && spec.fungible && fits_inference && p.preemptions == 0 {
                // Opportunistic: inference pool only, with the worker
                // multiplier; blocked fungible jobs never stall others.
                let w = workers * mult;
                if let Some(a) = place_gang(
                    &mut servers,
                    PoolKind::OnLoan,
                    w,
                    spec.gpus_per_worker,
                    ServerGroup::Base,
                    config,
                ) {
                    actions.push(Action::Launch {
                        job: spec.id,
                        workers: w,
                        placement: a,
                    });
                }
                continue;
            }
            // Training pool first.
            let placed = place_gang(
                &mut servers,
                PoolKind::Training,
                workers,
                spec.gpus_per_worker,
                ServerGroup::Base,
                config,
            )
            .map(|a| (workers, a))
            .or_else(|| {
                if spec.fungible && !self.fungible_on_loan_only {
                    let w = workers * mult;
                    place_gang(
                        &mut servers,
                        PoolKind::OnLoan,
                        w,
                        spec.gpus_per_worker,
                        ServerGroup::Base,
                        config,
                    )
                    .map(|a| (w, a))
                } else {
                    None
                }
            });
            match placed {
                Some((w, placement)) => actions.push(Action::Launch {
                    job: spec.id,
                    workers: w,
                    placement,
                }),
                None if self.backfill => continue,
                None => break,
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, JobSpec};
    use crate::snapshot::{PendingJobView, ServerView};

    fn snap(pending: Vec<JobSpec>, train_servers: u32, loan_servers: u32) -> Snapshot {
        let mut servers: Vec<ServerView> = (0..train_servers)
            .map(|i| ServerView::idle(i, PoolKind::Training, GpuType::V100, 8))
            .collect();
        for i in 0..loan_servers {
            servers.push(ServerView::idle(
                train_servers + i,
                PoolKind::OnLoan,
                GpuType::T4,
                8,
            ));
        }
        Snapshot {
            time_s: 0.0,
            servers,
            pending: pending.into_iter().map(PendingJobView::fresh).collect(),
            running: vec![],
        }
    }

    #[test]
    fn launches_in_submission_order() {
        let s = snap(
            vec![
                JobSpec::inelastic(0, 0.0, 4, 1, 100.0),
                JobSpec::inelastic(1, 0.0, 4, 1, 1.0),
            ],
            1,
            0,
        );
        let actions = FifoScheduler::new().schedule(&s);
        assert_eq!(actions.len(), 2);
        assert_eq!(actions[0].job(), JobId(0));
        assert_eq!(actions[1].job(), JobId(1));
    }

    #[test]
    fn head_of_line_blocking() {
        // Job 0 needs 16 GPUs (doesn't fit); strict FIFO must not launch
        // job 1 even though it fits.
        let s = snap(
            vec![
                JobSpec::inelastic(0, 0.0, 16, 1, 100.0),
                JobSpec::inelastic(1, 0.0, 2, 1, 1.0),
            ],
            1,
            0,
        );
        assert!(FifoScheduler::new().schedule(&s).is_empty());
        let actions = FifoScheduler::with_backfill().schedule(&s);
        assert_eq!(actions.len(), 1);
        assert_eq!(actions[0].job(), JobId(1));
    }

    #[test]
    fn fungible_job_falls_through_to_on_loan_with_multiplier() {
        // 0 training servers; a fungible 2-worker V100-sized job lands on
        // T4 with 4 workers.
        let spec = JobSpec::inelastic(0, 0.0, 2, 2, 50.0).with_fungible(true);
        let s = snap(vec![spec], 0, 1);
        let actions = FifoScheduler::new().schedule(&s);
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            Action::Launch { workers, .. } => assert_eq!(*workers, 4),
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn non_fungible_job_cannot_use_on_loan() {
        let spec = JobSpec::inelastic(0, 0.0, 2, 2, 50.0);
        let s = snap(vec![spec], 0, 1);
        assert!(FifoScheduler::new().schedule(&s).is_empty());
    }

    #[test]
    fn elastic_jobs_run_at_requested_demand() {
        let mut spec = JobSpec::elastic(0, 0.0, 2, 6, 1, 30.0);
        spec.demand = 2;
        let s = snap(vec![spec], 1, 0);
        let actions = FifoScheduler::new().schedule(&s);
        match &actions[0] {
            Action::Launch { workers, .. } => assert_eq!(*workers, 2),
            other => panic!("unexpected action {other:?}"),
        }
    }
}
