#![warn(missing_docs)]

//! # lyra-core
//!
//! The scheduling algorithms of *Lyra: Elastic Scheduling for Deep Learning
//! Clusters* (EuroSys '23).
//!
//! This crate is the paper's primary contribution, implemented as pure,
//! deterministic functions over snapshot types so that it can be driven by
//! both the discrete-event simulator (`lyra-sim`) and a real resource
//! manager:
//!
//! * [`reclaim`] — server reclaiming for capacity loaning (§4): the server
//!   preemption-cost heuristic for the knapsack problem with dependent item
//!   values, plus the Random, smallest-count-first and exhaustive-optimal
//!   comparators used in the paper's evaluation.
//! * [`allocation`] — two-phase resource allocation (§5.2): shortest-job
//!   first over the inelastic workload, then a multiple-choice knapsack over
//!   elastic jobs' flexible demand.
//! * [`mckp`] — the multiple-choice knapsack dynamic program.
//! * [`placement`] — best-fit-decreasing worker placement with elastic /
//!   inelastic pool preferences and the base/flexible server-group split
//!   (§5.3).
//! * [`policies`] — the complete job schedulers evaluated in §7: the FIFO
//!   baseline, Gandiva, AFS, Pollux, Lyra and Lyra+TunedJobs.
//! * [`tuning`] — the Adascale-style batch-size / learning-rate agent shared
//!   by Pollux and Lyra+TunedJobs (§7.4).
//!
//! All algorithms are safe Rust, allocation-light and seeded where stochastic
//! (Pollux's genetic algorithm), so results are reproducible bit-for-bit.

pub mod allocation;
pub mod analysis;
pub mod gpu;
pub mod job;
pub mod mckp;
pub mod placement;
pub mod policies;
pub mod reclaim;
pub mod snapshot;
pub mod tuning;

pub use allocation::{
    two_phase_allocate, two_phase_allocate_with, AllocationConfig, AllocationOutcome,
};
pub use analysis::{evaluate_two_job_split, optimal_two_job_allocation, TwoJobOutcome};
pub use gpu::{GpuSpec, GpuType, SpeedFactors};
pub use job::{Elasticity, JobClass, JobId, JobSpec, ScalingCurve};
pub use mckp::{solve_mckp, solve_mckp_with, McKnapsackGroup, McKnapsackItem, MckpScratch, MckpSolution};
pub use placement::{
    place_best_effort, place_gang, place_gang_with, place_workers, place_workers_with,
    PlacementConfig, PlacementOutcome, PlacementRequest, PlacementScratch, WorkerRole,
};
pub use reclaim::{
    reclaim_exhaustive_optimal, reclaim_random, reclaim_scf, reclaim_servers, CostModel,
    ReclaimEngine, ReclaimOutcome, ReclaimRequest,
};
pub use policies::{JobScheduler, PolicyContext, PolicyEntry, PolicyRegistry, UnknownPolicy};
pub use snapshot::{PoolKind, RunningJobView, ServerId, ServerView, Snapshot};
