//! The multiple-choice knapsack problem (MCKP) solver used by phase 2 of
//! Lyra's resource allocation (§5.2).
//!
//! Each elastic job forms a *group* with `w_max − w_min` items; item `k`
//! represents giving the job `k` extra workers, its weight is the number of
//! GPUs those workers need, and its value is the resulting JCT reduction
//! (Figure 6). The solver packs items into the knapsack of remaining GPUs,
//! taking **exactly one or zero items from each group**, to maximise total
//! JCT reduction.
//!
//! MCKP is NP-hard but admits a pseudo-polynomial dynamic program in
//! `O(capacity · total items)` time, which the paper reports solving in at
//! most 0.02 s for 354 items and 245 GPUs; the Criterion bench
//! `benches/mckp.rs` reproduces that measurement point.

use serde::{Deserialize, Serialize};

/// One candidate allocation for a group.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McKnapsackItem {
    /// GPUs consumed if this item is chosen.
    pub weight: u32,
    /// JCT reduction (seconds) if this item is chosen.
    pub value: f64,
}

/// All candidate allocations of one elastic job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McKnapsackGroup {
    /// Caller-side key for mapping the solution back (e.g. a job id).
    pub key: u64,
    /// Candidate items; at most one will be chosen.
    pub items: Vec<McKnapsackItem>,
}

/// Solution of one MCKP instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MckpSolution {
    /// Sum of values of the chosen items.
    pub total_value: f64,
    /// Sum of weights of the chosen items (≤ capacity).
    pub total_weight: u32,
    /// Per group (same order as the input), the index of the chosen item or
    /// `None` if the group takes nothing.
    pub chosen: Vec<Option<usize>>,
}

/// Reusable buffers for [`solve_mckp_with`].
///
/// The DP table, its double buffer and the (flattened) choice matrix are
/// the solver's only allocations; a policy that carries a scratch across
/// scheduling epochs amortises them to zero once the high-water capacity
/// has been seen. The scratch holds no state between calls — every call
/// fully reinitialises the region it uses — so one scratch may serve any
/// sequence of instances.
#[derive(Debug, Clone, Default)]
pub struct MckpScratch {
    /// `dp[c]`: best value using the groups processed so far with ≤ c GPUs.
    dp: Vec<f64>,
    /// Double buffer for the per-group relaxation.
    next: Vec<f64>,
    /// Flattened `groups × (cap + 1)` choice matrix; `u32::MAX` = no item.
    choice: Vec<u32>,
}

/// Solves the multiple-choice knapsack by dynamic programming.
///
/// Items with zero weight and positive value are taken greedily; items with
/// non-positive value are never chosen (taking nothing from the group
/// dominates them). Runs in `O(capacity · Σ|items|)` time and
/// `O(groups · capacity)` space for choice reconstruction.
///
/// Allocates fresh buffers per call; hot paths should hold a
/// [`MckpScratch`] and call [`solve_mckp_with`] instead.
///
/// # Examples
///
/// ```
/// use lyra_core::{solve_mckp, McKnapsackGroup, McKnapsackItem};
/// // Figure 6: job A (1 item) and job B (4 items), knapsack of 4 GPUs.
/// let groups = vec![
///     McKnapsackGroup {
///         key: 0,
///         items: vec![McKnapsackItem { weight: 2, value: 50.0 }],
///     },
///     McKnapsackGroup {
///         key: 1,
///         items: vec![
///             McKnapsackItem { weight: 1, value: 20.0 },
///             McKnapsackItem { weight: 2, value: 30.0 },
///             McKnapsackItem { weight: 3, value: 36.0 },
///             McKnapsackItem { weight: 4, value: 40.0 },
///         ],
///     },
/// ];
/// let sol = solve_mckp(&groups, 4);
/// // Best: A's 2-GPU item (50) + B's 2-GPU item (30) = 80.
/// assert_eq!(sol.total_value, 80.0);
/// assert_eq!(sol.chosen, vec![Some(0), Some(1)]);
/// ```
pub fn solve_mckp(groups: &[McKnapsackGroup], capacity: u32) -> MckpSolution {
    solve_mckp_with(&mut MckpScratch::default(), groups, capacity)
}

/// [`solve_mckp`] over caller-owned scratch buffers.
///
/// The effective DP width is clamped by the sum of per-group maximum
/// weights: any feasible solution weighs at most that much, so a wider
/// table cannot change the optimum — this keeps cluster-scale epochs cheap
/// when idle capacity dwarfs the elastic demand.
pub fn solve_mckp_with(
    scratch: &mut MckpScratch,
    groups: &[McKnapsackGroup],
    capacity: u32,
) -> MckpSolution {
    let _timing = lyra_obs::span::span("core.mckp");
    let total_max_weight: u64 = groups
        .iter()
        .map(|g| u64::from(g.items.iter().map(|i| i.weight).max().unwrap_or(0)))
        .sum();
    let cap = u64::from(capacity).min(total_max_weight) as usize;
    const NONE: u32 = u32::MAX;
    let width = cap + 1;
    let MckpScratch { dp, next, choice } = scratch;
    dp.clear();
    dp.resize(width, 0.0);
    next.clear();
    next.resize(width, 0.0);
    choice.clear();
    choice.resize(groups.len() * width, NONE);

    for (g, group) in groups.iter().enumerate() {
        // `choice_row[c]`: item chosen by group g when the DP table for
        // prefix g+1 holds capacity c.
        let choice_row = &mut choice[g * width..(g + 1) * width];
        // Taking nothing from the group is always allowed.
        next.copy_from_slice(dp);
        for (i, item) in group.items.iter().enumerate() {
            if item.value <= 0.0 {
                continue;
            }
            let w = item.weight as usize;
            if w > cap {
                continue;
            }
            for c in w..=cap {
                let cand = dp[c - w] + item.value;
                if cand > next[c] {
                    next[c] = cand;
                    choice_row[c] = i as u32;
                }
            }
        }
        std::mem::swap(dp, next);
    }

    // The DP value is monotone in capacity, so the optimum sits at `cap`.
    let total_value = dp[cap];
    let mut chosen = vec![None; groups.len()];
    let mut c = cap;
    for g in (0..groups.len()).rev() {
        let pick = choice[g * width + c];
        if pick != NONE {
            let i = pick as usize;
            chosen[g] = Some(i);
            c -= groups[g].items[i].weight as usize;
        }
    }
    let total_weight = chosen
        .iter()
        .enumerate()
        .filter_map(|(g, c)| c.map(|i| groups[g].items[i].weight))
        .sum();
    MckpSolution {
        total_value,
        total_weight,
        chosen,
    }
}

/// Brute-force MCKP for verification (exponential; tests only).
#[doc(hidden)]
pub fn solve_mckp_bruteforce(groups: &[McKnapsackGroup], capacity: u32) -> f64 {
    fn recurse(groups: &[McKnapsackGroup], g: usize, cap_left: i64, acc: f64, best: &mut f64) {
        if acc > *best {
            *best = acc;
        }
        if g == groups.len() {
            return;
        }
        // Skip the group.
        recurse(groups, g + 1, cap_left, acc, best);
        for item in &groups[g].items {
            if i64::from(item.weight) <= cap_left && item.value > 0.0 {
                recurse(
                    groups,
                    g + 1,
                    cap_left - i64::from(item.weight),
                    acc + item.value,
                    best,
                );
            }
        }
    }
    let mut best = 0.0;
    recurse(groups, 0, i64::from(capacity), 0.0, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn item(weight: u32, value: f64) -> McKnapsackItem {
        McKnapsackItem { weight, value }
    }

    #[test]
    fn empty_instance() {
        let sol = solve_mckp(&[], 10);
        assert_eq!(sol.total_value, 0.0);
        assert_eq!(sol.total_weight, 0);
        assert!(sol.chosen.is_empty());
    }

    #[test]
    fn zero_capacity_takes_nothing_with_positive_weights() {
        let groups = vec![McKnapsackGroup {
            key: 0,
            items: vec![item(1, 100.0)],
        }];
        let sol = solve_mckp(&groups, 0);
        assert_eq!(sol.total_value, 0.0);
        assert_eq!(sol.chosen, vec![None]);
    }

    #[test]
    fn one_item_per_group_is_enforced() {
        // A group where taking two items would be profitable if allowed.
        let groups = vec![McKnapsackGroup {
            key: 0,
            items: vec![item(1, 10.0), item(1, 9.0)],
        }];
        let sol = solve_mckp(&groups, 2);
        assert_eq!(sol.total_value, 10.0);
        assert_eq!(sol.chosen, vec![Some(0)]);
    }

    #[test]
    fn negative_and_zero_values_never_chosen() {
        let groups = vec![McKnapsackGroup {
            key: 0,
            items: vec![item(1, 0.0), item(1, -5.0)],
        }];
        let sol = solve_mckp(&groups, 4);
        assert_eq!(sol.total_value, 0.0);
        assert_eq!(sol.chosen, vec![None]);
    }

    #[test]
    fn figure6_instance_prefers_global_optimum() {
        // Table 4 / Figure 6: with 8 GPUs total and base demands consuming
        // 2·2 (A) + 2·1 (B) = 6 GPUs, 2 GPUs remain for flexible demand.
        let groups = vec![
            McKnapsackGroup {
                key: 0,
                items: vec![item(2, 50.0)],
            },
            McKnapsackGroup {
                key: 1,
                items: vec![item(1, 20.0), item(2, 30.0), item(3, 36.0), item(4, 40.0)],
            },
        ];
        let sol = solve_mckp(&groups, 2);
        // A's single item (weight 2, value 50) beats B's (weight 2, value
        // 30) — matching §5.1's conclusion that favouring A is optimal.
        assert_eq!(sol.total_value, 50.0);
        assert_eq!(sol.chosen, vec![Some(0), None]);
    }

    #[test]
    fn weight_reconstruction_matches_choice() {
        let groups = vec![
            McKnapsackGroup {
                key: 0,
                items: vec![item(3, 7.0), item(5, 9.0)],
            },
            McKnapsackGroup {
                key: 1,
                items: vec![item(2, 4.0)],
            },
        ];
        let sol = solve_mckp(&groups, 7);
        let value: f64 = sol
            .chosen
            .iter()
            .enumerate()
            .filter_map(|(g, c)| c.map(|i| groups[g].items[i].value))
            .sum();
        assert_eq!(value, sol.total_value);
        assert!(sol.total_weight <= 7);
        // Best: (5, 9.0) from group 0 plus (2, 4.0) from group 1 = 13.
        assert_eq!(sol.total_value, 13.0);
        assert_eq!(sol.total_weight, 7);
        assert_eq!(sol.chosen, vec![Some(1), Some(0)]);
    }

    #[test]
    fn oversized_items_are_skipped() {
        let groups = vec![McKnapsackGroup {
            key: 0,
            items: vec![item(100, 1000.0), item(2, 5.0)],
        }];
        let sol = solve_mckp(&groups, 10);
        assert_eq!(sol.total_value, 5.0);
        assert_eq!(sol.chosen, vec![Some(1)]);
    }

    proptest! {
        #[test]
        fn dp_matches_bruteforce(
            groups in prop::collection::vec(
                prop::collection::vec((1u32..6, 0.0f64..50.0), 1..5),
                0..5,
            ),
            capacity in 0u32..20,
        ) {
            let groups: Vec<McKnapsackGroup> = groups
                .into_iter()
                .enumerate()
                .map(|(k, items)| McKnapsackGroup {
                    key: k as u64,
                    items: items
                        .into_iter()
                        .map(|(w, v)| McKnapsackItem { weight: w, value: v })
                        .collect(),
                })
                .collect();
            let sol = solve_mckp(&groups, capacity);
            let best = solve_mckp_bruteforce(&groups, capacity);
            prop_assert!((sol.total_value - best).abs() < 1e-9);
            prop_assert!(sol.total_weight <= capacity);
            // Reconstructed value must equal reported value.
            let value: f64 = sol
                .chosen
                .iter()
                .enumerate()
                .filter_map(|(g, c)| c.map(|i| groups[g].items[i].value))
                .sum();
            prop_assert!((value - sol.total_value).abs() < 1e-9);
        }
    }
}
