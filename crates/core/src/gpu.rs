//! GPU types and cross-type normalisation.
//!
//! The paper's production environment uses Tesla V100 (32 GB) in the training
//! cluster and T4 (16 GB) in the inference cluster (§2.1, §7.1). Capacity
//! loaning makes the training scheduler face a heterogeneous pool, so
//! on-loan GPUs are *normalised* relative to training GPUs when calculating
//! resource capacity (§5.2). Lyra's testbed observation (§7.5) is that
//! roughly three loaned T4 servers match one V100 training server in
//! computational capability, which fixes the default normalisation factor at
//! 1/3.

use serde::{Deserialize, Serialize};

/// The kind of accelerator installed in a server.
///
/// Only the two types that appear in the paper's clusters are modelled; the
/// [`GpuSpec`] table makes it easy to register more.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GpuType {
    /// Nvidia Tesla V100, 32 GB — the training-cluster GPU.
    V100,
    /// Nvidia T4, 16 GB — the inference-cluster GPU.
    T4,
}

impl GpuType {
    /// Returns the static specification of this GPU type.
    pub fn spec(self) -> GpuSpec {
        match self {
            GpuType::V100 => GpuSpec {
                gpu_type: GpuType::V100,
                memory_gb: 32,
                // Reference device: one V100 delivers one unit of training
                // throughput per worker-second.
                capability: 1.0,
            },
            GpuType::T4 => GpuSpec {
                gpu_type: GpuType::T4,
                memory_gb: 16,
                // Three T4 servers ≈ one V100 server (§7.5).
                capability: 1.0 / 3.0,
            },
        }
    }

    /// Training-throughput capability relative to a V100.
    pub fn capability(self) -> f64 {
        self.spec().capability
    }

    /// Device memory in gigabytes.
    pub fn memory_gb(self) -> u32 {
        self.spec().memory_gb
    }

    /// How many workers a job sized for `reference` needs per original worker
    /// when it runs on `self`, keeping the global batch size fixed.
    ///
    /// Fungible jobs moved onto smaller inference GPUs must shrink their
    /// local batch size to fit model plus intermediate data into memory and
    /// compensate with more workers so the global batch size — and hence
    /// model quality — is unchanged (§2.1). The factor is the memory ratio,
    /// rounded up.
    ///
    /// # Examples
    ///
    /// ```
    /// use lyra_core::GpuType;
    /// // A V100-sized worker needs two T4 workers (32 GB / 16 GB).
    /// assert_eq!(GpuType::T4.worker_multiplier(GpuType::V100), 2);
    /// assert_eq!(GpuType::V100.worker_multiplier(GpuType::V100), 1);
    /// ```
    pub fn worker_multiplier(self, reference: GpuType) -> u32 {
        let need = reference.memory_gb();
        let have = self.memory_gb();
        need.div_ceil(have).max(1)
    }
}

/// Per-generation speed multipliers layered on top of the static
/// capability table.
///
/// The paper's clusters hold exactly one V100 and one T4 generation, but
/// real fleets mix hardware refreshes: an A100 refresh of the training
/// pool or a newer inference part changes per-type throughput without
/// changing the memory-driven worker multiplier. A `SpeedFactors` value
/// scales each type's [`GpuType::capability`] uniformly across the
/// cluster; `1.0` everywhere reproduces the paper's environment exactly.
///
/// # Examples
///
/// ```
/// use lyra_core::gpu::{GpuType, SpeedFactors};
/// let refresh = SpeedFactors { v100: 1.5, t4: 1.0 };
/// assert_eq!(refresh.factor(GpuType::V100), 1.5);
/// assert_eq!(SpeedFactors::default().factor(GpuType::T4), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedFactors {
    /// Multiplier applied to every V100's capability.
    pub v100: f64,
    /// Multiplier applied to every T4's capability.
    pub t4: f64,
}

impl Default for SpeedFactors {
    fn default() -> Self {
        SpeedFactors { v100: 1.0, t4: 1.0 }
    }
}

impl SpeedFactors {
    /// The multiplier for one GPU type.
    pub fn factor(self, ty: GpuType) -> f64 {
        match ty {
            GpuType::V100 => self.v100,
            GpuType::T4 => self.t4,
        }
    }

    /// Checks that every factor is finite and strictly positive.
    ///
    /// # Errors
    ///
    /// Returns the offending type and value otherwise; a zero or negative
    /// factor would silently stall every job on that hardware.
    pub fn validate(self) -> Result<(), (GpuType, f64)> {
        for ty in [GpuType::V100, GpuType::T4] {
            let f = self.factor(ty);
            if !f.is_finite() || f <= 0.0 {
                return Err((ty, f));
            }
        }
        Ok(())
    }
}

/// Static description of a GPU model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Which model this spec describes.
    pub gpu_type: GpuType,
    /// Device memory in gigabytes.
    pub memory_gb: u32,
    /// Training throughput per worker relative to a V100 worker.
    pub capability: f64,
}

/// Normalises a mixed pool of free GPUs into V100-equivalent capacity.
///
/// Used by the allocator when sizing phase-2 knapsack capacity over a pool
/// that contains on-loan inference GPUs (§5.2: "The on-loan inference GPUs
/// are normalized relative to training GPUs when calculating the resource
/// capacity").
///
/// # Examples
///
/// ```
/// use lyra_core::gpu::{normalized_capacity, GpuType};
/// let cap = normalized_capacity(&[(GpuType::V100, 8), (GpuType::T4, 9)]);
/// assert!((cap - 11.0).abs() < 1e-9); // 8 + 9/3
/// ```
pub fn normalized_capacity(free: &[(GpuType, u32)]) -> f64 {
    free.iter()
        .map(|&(ty, n)| f64::from(n) * ty.capability())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_is_reference_device() {
        assert_eq!(GpuType::V100.capability(), 1.0);
        assert_eq!(GpuType::V100.memory_gb(), 32);
    }

    #[test]
    fn t4_is_one_third_of_v100() {
        assert!((GpuType::T4.capability() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(GpuType::T4.memory_gb(), 16);
    }

    #[test]
    fn worker_multiplier_matches_memory_ratio() {
        assert_eq!(GpuType::T4.worker_multiplier(GpuType::V100), 2);
        assert_eq!(GpuType::V100.worker_multiplier(GpuType::T4), 1);
        assert_eq!(GpuType::T4.worker_multiplier(GpuType::T4), 1);
    }

    #[test]
    fn normalized_capacity_mixes_pools() {
        assert_eq!(normalized_capacity(&[]), 0.0);
        let cap = normalized_capacity(&[(GpuType::V100, 3), (GpuType::T4, 6)]);
        assert!((cap - 5.0).abs() < 1e-9);
    }

    #[test]
    fn speed_factors_default_to_identity() {
        let s = SpeedFactors::default();
        assert_eq!(s.factor(GpuType::V100), 1.0);
        assert_eq!(s.factor(GpuType::T4), 1.0);
        assert_eq!(s.validate(), Ok(()));
    }

    #[test]
    fn speed_factors_reject_non_positive_and_non_finite() {
        let zero = SpeedFactors { v100: 0.0, t4: 1.0 };
        assert_eq!(zero.validate(), Err((GpuType::V100, 0.0)));
        let neg = SpeedFactors { v100: 1.0, t4: -0.5 };
        assert_eq!(neg.validate(), Err((GpuType::T4, -0.5)));
        let nan = SpeedFactors {
            v100: f64::NAN,
            t4: 1.0,
        };
        assert!(nan.validate().is_err());
        assert!(SpeedFactors {
            v100: f64::INFINITY,
            t4: 1.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn spec_roundtrip_is_consistent() {
        for ty in [GpuType::V100, GpuType::T4] {
            let spec = ty.spec();
            assert_eq!(spec.gpu_type, ty);
            assert_eq!(spec.memory_gb, ty.memory_gb());
            assert_eq!(spec.capability, ty.capability());
        }
    }
}
