//! Goodput modelling and the hyperparameter-tuning job agent (§7.4).
//!
//! Pollux schedules by *goodput* — system throughput times statistical
//! efficiency — and co-tunes the batch size and learning rate as the
//! allocation changes. The paper adapts that agent into **Lyra+TunedJobs**:
//! Lyra's scheduler plus per-job batch-size/learning-rate tuning within the
//! scaling range.
//!
//! The model here follows the structure of Pollux (OSDI '21) and the
//! gradient-noise-scale analysis it builds on:
//!
//! * **System throughput** with `w` workers and local batch `b`:
//!   `T(w, b) = s(w) · t(b)` where `s` is the job's scaling curve and
//!   `t(b) = b / (b + c)` captures the per-step fixed overhead `c` that a
//!   larger batch amortises.
//! * **Statistical efficiency** of global batch `M = w·b`:
//!   `E(M) = (M₀ + φ) / (M + φ)` — the classic noise-scale result that
//!   training on batch `M` needs `(M + φ)/(M₀ + φ)` times the samples of
//!   the reference batch `M₀`. The efficiency scale `φ` decays as the
//!   loss plateaus, so large allocations lose efficiency late in training
//!   — which is what makes Pollux shrink big jobs near the end (§7.4's
//!   observation).
//! * **Goodput** `G(w, b) = T(w, b) · E(w·b)`; the agent picks the local
//!   batch `b* = argmax G` after every allocation change (Adascale keeps
//!   the learning rate consistent, which the model treats as free).

use serde::{Deserialize, Serialize};

/// Goodput model parameters of one job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GoodputModel {
    /// Local batch size the job was submitted with.
    pub base_local_batch: u32,
    /// Smallest local batch the model converges with.
    pub min_local_batch: u32,
    /// Largest local batch that fits in GPU memory.
    pub max_local_batch: u32,
    /// Per-step fixed overhead, in samples (larger ⇒ bigger batches pay
    /// off more).
    pub step_overhead: f64,
    /// Efficiency scale at the start of training.
    pub phi0: f64,
    /// Decay of the efficiency scale over training:
    /// `φ(p) = φ₀ / (1 + decay · p)` at progress `p ∈ [0, 1]`. A smaller
    /// `φ` makes large batches *less* efficient, so a job's marginal
    /// goodput falls toward the end of training — the mechanism behind
    /// Pollux shrinking large-and-long jobs near completion (§7.4).
    pub phi_decay: f64,
    /// Reference worker count (the job's base demand), fixing `M₀`.
    pub ref_workers: u32,
}

impl GoodputModel {
    /// A reasonable default for the large elastic models of §2.2.
    pub fn typical(ref_workers: u32) -> Self {
        GoodputModel {
            base_local_batch: 32,
            min_local_batch: 8,
            max_local_batch: 128,
            step_overhead: 16.0,
            phi0: 512.0,
            phi_decay: 8.0,
            ref_workers: ref_workers.max(1),
        }
    }

    /// Efficiency scale at training progress `p ∈ [0, 1]`.
    pub fn phi(&self, progress: f64) -> f64 {
        self.phi0 / (1.0 + self.phi_decay * progress.clamp(0.0, 1.0))
    }

    /// Reference global batch size `M₀`.
    pub fn m0(&self) -> f64 {
        f64::from(self.ref_workers) * f64::from(self.base_local_batch)
    }

    /// Per-worker throughput factor of local batch `b`, normalised to the
    /// base batch (`t(b)/t(b₀)`; 1.0 at `b = b₀`).
    pub fn batch_throughput(&self, local_batch: u32) -> f64 {
        let t = |b: f64| b / (b + self.step_overhead);
        t(f64::from(local_batch)) / t(f64::from(self.base_local_batch))
    }

    /// Statistical efficiency of global batch `m` at progress `p`:
    /// `(M₀ + φ)/(m + φ)`, clamped to 1 for sub-reference batches.
    ///
    /// # Examples
    ///
    /// ```
    /// use lyra_core::tuning::GoodputModel;
    /// let g = GoodputModel::typical(2);
    /// assert_eq!(g.efficiency(g.m0(), 0.0), 1.0);
    /// assert!(g.efficiency(4.0 * g.m0(), 0.0) < 1.0);
    /// ```
    pub fn efficiency(&self, global_batch: f64, progress: f64) -> f64 {
        let phi = self.phi(progress);
        ((self.m0() + phi) / (global_batch + phi)).min(1.0)
    }

    /// Goodput with `w` workers at aggregate speedup `speedup` (from the
    /// job's [`crate::ScalingCurve`]) and local batch `b`, at progress `p`.
    ///
    /// Units: reference-worker equivalents of *useful* work per second.
    pub fn goodput(&self, speedup: f64, workers: u32, local_batch: u32, progress: f64) -> f64 {
        let m = f64::from(workers) * f64::from(local_batch);
        speedup * self.batch_throughput(local_batch) * self.efficiency(m, progress)
    }

    /// The batch size the tuning agent picks for `w` workers at progress
    /// `p`, and the goodput it achieves.
    pub fn best_batch(&self, speedup: f64, workers: u32, progress: f64) -> (u32, f64) {
        let mut best = (self.base_local_batch, 0.0_f64);
        let mut b = self.min_local_batch.max(1);
        while b <= self.max_local_batch {
            let g = self.goodput(speedup, workers, b, progress);
            if g > best.1 {
                best = (b, g);
            }
            b *= 2;
        }
        best
    }

    /// Multiplicative gain of tuning over the untuned fixed-batch run at
    /// the same allocation (≥ 1 up to floating error).
    ///
    /// This is the factor Lyra+TunedJobs applies to a job's service rate.
    pub fn tuned_gain(&self, speedup: f64, workers: u32, progress: f64) -> f64 {
        let untuned = self.goodput(speedup, workers, self.base_local_batch, progress);
        if untuned <= 0.0 {
            return 1.0;
        }
        let (_, tuned) = self.best_batch(speedup, workers, progress);
        (tuned / untuned).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_is_one_at_reference_batch() {
        let g = GoodputModel::typical(4);
        assert!((g.efficiency(g.m0(), 0.0) - 1.0).abs() < 1e-12);
        assert!(g.efficiency(g.m0() / 2.0, 0.0) <= 1.0);
    }

    #[test]
    fn efficiency_decreases_with_batch() {
        let g = GoodputModel::typical(2);
        let e1 = g.efficiency(g.m0(), 0.0);
        let e2 = g.efficiency(2.0 * g.m0(), 0.0);
        let e4 = g.efficiency(4.0 * g.m0(), 0.0);
        assert!(e1 > e2 && e2 > e4);
    }

    #[test]
    fn large_batch_efficiency_decays_with_progress() {
        let g = GoodputModel::typical(2);
        assert!(g.phi(1.0) < g.phi(0.0));
        // Late in training, scaling out pays off less: the marginal
        // goodput of a big allocation shrinks, so a goodput scheduler
        // reallocates toward fresh jobs (§7.4's Pollux observation).
        let early = g.goodput(8.0, 8, 32, 0.0);
        let late = g.goodput(8.0, 8, 32, 1.0);
        assert!(late < early);
        // The base allocation suffers less than the large one.
        let early_base = g.goodput(2.0, 2, 32, 0.0);
        let late_base = g.goodput(2.0, 2, 32, 1.0);
        assert!((late / early) < (late_base / early_base) + 1e-12);
    }

    #[test]
    fn batch_throughput_normalised_at_base() {
        let g = GoodputModel::typical(2);
        assert!((g.batch_throughput(g.base_local_batch) - 1.0).abs() < 1e-12);
        assert!(g.batch_throughput(2 * g.base_local_batch) > 1.0);
        assert!(g.batch_throughput(g.base_local_batch / 2) < 1.0);
    }

    #[test]
    fn tuned_gain_is_at_least_one() {
        let g = GoodputModel::typical(2);
        for w in [1u32, 2, 4, 8, 16] {
            for p in [0.0, 0.3, 0.9] {
                let gain = g.tuned_gain(f64::from(w), w, p);
                assert!(gain >= 1.0, "gain {gain} < 1 at w={w} p={p}");
                assert!(gain < 4.0, "gain {gain} implausibly large");
            }
        }
    }

    #[test]
    fn best_batch_respects_memory_bound() {
        let g = GoodputModel::typical(2);
        for w in [1u32, 4, 32] {
            let (b, _) = g.best_batch(f64::from(w), w, 0.0);
            assert!(b >= g.min_local_batch && b <= g.max_local_batch);
        }
    }

    #[test]
    fn more_workers_more_goodput_but_sublinear() {
        let g = GoodputModel::typical(2);
        let g2 = g.goodput(2.0, 2, 32, 0.0);
        let g4 = g.goodput(4.0, 4, 32, 0.0);
        let g8 = g.goodput(8.0, 8, 32, 0.0);
        assert!(g4 > g2 && g8 > g4, "goodput increases");
        assert!(g8 / g2 < 4.0, "but sublinearly (efficiency loss)");
    }

    #[test]
    fn goodput_zero_workers_is_zero() {
        let g = GoodputModel::typical(2);
        assert_eq!(g.goodput(0.0, 0, 32, 0.0), 0.0);
    }
}
