//! Lyra's two-phase resource allocation (§5.2).
//!
//! The key insight: an elastic job's demand splits into a *base* part that
//! behaves like an inelastic job (not granting it stalls the job) and a
//! *flexible* part that can be granted later without stalling anything.
//! Phase 1 therefore runs shortest-job-first over the **inelastic
//! workload** — inelastic jobs plus elastic jobs' base demands — to launch
//! as many jobs as possible and minimise queuing. Phase 2 hands the
//! remaining GPUs to elastic jobs' flexible demands by solving a
//! multiple-choice knapsack ([`crate::mckp`]) whose item values are JCT
//! reductions.
//!
//! The available capacity at an epoch is "idle GPUs and GPUs being used by
//! flexible workers for resizing": flexible workers of running elastic jobs
//! are *returned to the pool* before phase 1 and re-awarded (or not) by
//! phase 2, which is how Lyra scales jobs in under pressure without
//! preempting anyone.

use crate::job::JobId;
use crate::mckp::{solve_mckp_with, McKnapsackGroup, McKnapsackItem, MckpScratch};
use crate::snapshot::Snapshot;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How phase 1 orders the pending queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Phase1Order {
    /// Shortest-job-first on the estimated running time (§5.2's choice).
    #[default]
    Sjf,
    /// Least-attained-service, Tiresias-style: jobs that have consumed
    /// the least GPU-time go first. Needs *no* running-time estimates —
    /// the information-agnostic direction the paper names as future work
    /// (§10).
    Las,
    /// Plain submission order.
    Fifo,
}

/// How phase 2 distributes leftover GPUs to elastic jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Phase2Solver {
    /// The multiple-choice knapsack DP (§5.2's choice).
    #[default]
    Mckp,
    /// Greedy: repeatedly give one worker to the job with the highest
    /// marginal JCT reduction per GPU — the "greedy local heuristic"
    /// flavour the paper argues the knapsack beats (§2.3). Kept as an
    /// ablation.
    Greedy,
}

/// Tunables of the two-phase allocator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllocationConfig {
    /// Run phase 2 (elastic scale-out). Disabled for the capacity-loaning
    /// only experiments (§7.3).
    pub elastic_phase: bool,
    /// Normalise on-loan GPU capacity to V100-equivalents when sizing the
    /// pool (§5.2). When false, a GPU is a GPU.
    pub normalize_capacity: bool,
    /// Phase-1 queue ordering.
    pub phase1: Phase1Order,
    /// Phase-2 solver.
    pub phase2: Phase2Solver,
}

impl Default for AllocationConfig {
    fn default() -> Self {
        AllocationConfig {
            elastic_phase: true,
            normalize_capacity: false,
            phase1: Phase1Order::Sjf,
            phase2: Phase2Solver::Mckp,
        }
    }
}

/// The allocator's decision for one epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct AllocationOutcome {
    /// Pending jobs to launch, with their initial worker counts
    /// (base demand plus any phase-2 award), in launch order.
    pub launches: Vec<(JobId, u32)>,
    /// Index into `snapshot.pending` of each entry of `launches`
    /// (parallel array), so callers can resolve launch specs in
    /// O(launches) instead of re-scanning the queue.
    pub launch_indices: Vec<u32>,
    /// New worker targets for *running* elastic jobs whose allocation
    /// changed: `(job, new total workers)`. Omits unchanged jobs.
    pub resizes: Vec<(JobId, u32)>,
    /// Pending jobs that could not be scheduled this epoch.
    pub skipped: Vec<JobId>,
    /// GPUs of capacity left unused after both phases.
    pub leftover_gpus: u32,
}

/// Runs the two-phase allocation over a snapshot.
///
/// Phase 1 sorts pending jobs by their estimated base-demand running time
/// (SJF) and grants base demands while capacity lasts, skipping jobs that do
/// not fit. Phase 2 forms one knapsack group per elastic job — newly
/// launched or already running — and maximises total JCT reduction.
///
/// The returned worker counts are *allocation* results; worker-to-server
/// placement is a separate step ([`crate::placement`]).
///
/// # Examples
///
/// ```
/// use lyra_core::{two_phase_allocate, AllocationConfig, JobSpec, Snapshot};
/// use lyra_core::snapshot::{PendingJobView, PoolKind, ServerView};
/// use lyra_core::gpu::GpuType;
///
/// // Table 4: jobs A [2,3]×2 GPUs and B [2,6]×1 GPU share 8 GPUs.
/// let snapshot = Snapshot {
///     time_s: 0.0,
///     servers: vec![ServerView::idle(0, PoolKind::Training, GpuType::V100, 8)],
///     pending: vec![
///         PendingJobView::fresh(JobSpec::elastic(0, 0.0, 2, 3, 2, 100.0)),
///         PendingJobView::fresh(JobSpec::elastic(1, 0.0, 2, 6, 1, 20.0)),
///     ],
///     running: vec![],
/// };
/// let out = two_phase_allocate(&snapshot, AllocationConfig::default());
/// // Both bases fit (4 + 2 = 6 GPUs); the 2 leftover GPUs go to A
/// // (JCT reduction 50 beats B's 30) — §5.1's counterexample resolved.
/// assert_eq!(out.launches, vec![(lyra_core::JobId(1), 2), (lyra_core::JobId(0), 3)]);
/// ```
pub fn two_phase_allocate(snapshot: &Snapshot, config: AllocationConfig) -> AllocationOutcome {
    two_phase_allocate_with(&mut MckpScratch::default(), snapshot, config)
}

/// [`two_phase_allocate`] over a caller-owned phase-2 DP scratch.
///
/// Policies that run every scheduling epoch should hold one
/// [`MckpScratch`] and pass it here so the knapsack's DP table and choice
/// matrix are reused across ticks instead of reallocated.
pub fn two_phase_allocate_with(
    mckp_scratch: &mut MckpScratch,
    snapshot: &Snapshot,
    config: AllocationConfig,
) -> AllocationOutcome {
    let _timing = lyra_obs::span::span("core.allocation");
    let auditing = lyra_obs::audit::is_enabled();
    // Pool capacity: idle GPUs plus GPUs held by flexible workers of
    // running elastic jobs (which are up for resizing). When normalising,
    // *both* parts are V100-equivalents: a flexible worker's GPUs are
    // weighted by the capability of the server they sit on (an on-loan T4
    // flexible worker must not be counted at full V100 weight — the §5.3
    // steering case), and the floor is taken once over the sum so the two
    // parts cannot drift into mixed units.
    let mut capacity: u64 = if config.normalize_capacity {
        let idle = snapshot.normalized_free_gpus();
        let capability_of = |id: crate::snapshot::ServerId| -> f64 {
            snapshot
                .servers
                .iter()
                .find(|s| s.id == id)
                .map_or(1.0, |s| s.effective_capability())
        };
        let flexible: f64 = snapshot
            .running
            .iter()
            .flat_map(|r| {
                r.flex_placement.iter().map(move |&(sid, workers)| {
                    f64::from(workers) * f64::from(r.spec.gpus_per_worker) * capability_of(sid)
                })
            })
            .sum();
        (idle + flexible).floor() as u64
    } else {
        let flexible_pool: u64 = snapshot
            .running
            .iter()
            .map(|r| u64::from(r.flexible_workers) * u64::from(r.spec.gpus_per_worker))
            .sum();
        u64::from(snapshot.free_gpus()) + flexible_pool
    };

    // ---- Phase 1 over the inelastic workload. ----
    // One sequential pass copies everything the admit loop needs into
    // compact rows: the queue runs deep under load, and both an indexed
    // sort comparator and a per-admission spec lookup would chase
    // ~200-byte-stride pointers into the pending array on every step.
    // With inline rows the O(q log q) sort and the O(q) admit loop stay
    // in cache and never touch `snapshot.pending` again.
    struct Phase1Row {
        /// Priority key, pre-mapped to IEEE total-order bits so the hot
        /// sort compares integers instead of calling `partial_cmp` on
        /// floats. For the finite, `-0.0`-normalised keys produced above
        /// this orders exactly like `f64::partial_cmp`.
        key: u64,
        id: JobId,
        idx: u32,
        base_gpus: u32,
        w_min: u32,
    }
    fn total_order_bits(x: f64) -> u64 {
        // Normalise -0.0 to +0.0 (partial_cmp calls them equal) before
        // the standard sign-fold: negatives flip entirely, positives
        // just set the sign bit, making unsigned order = float order.
        let bits = (if x == 0.0 { 0.0f64 } else { x }).to_bits();
        if bits >> 63 == 1 {
            !bits
        } else {
            bits | (1 << 63)
        }
    }
    let mut order: Vec<Phase1Row> = snapshot
        .pending
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let key = match config.phase1 {
                Phase1Order::Sjf => p.est_running_time_s,
                // Attained service = GPU-time consumed so far, inferred
                // from the work already completed (work is reference
                // worker-seconds, i.e. GPU-time up to the per-worker GPU
                // factor).
                Phase1Order::Las => {
                    (p.spec.work() - p.work_left).max(0.0) * f64::from(p.spec.gpus_per_worker)
                }
                Phase1Order::Fifo => 0.0,
            };
            Phase1Row {
                key: total_order_bits(key),
                id: p.spec.id,
                idx: i as u32,
                base_gpus: p.spec.base_gpus(),
                w_min: p.spec.w_min(),
            }
        })
        .collect();
    if config.phase1 != Phase1Order::Fifo {
        order.sort_unstable_by_key(|r| (r.key, r.id));
    }

    let mut launches: Vec<(JobId, u32)> = Vec::new();
    let mut launch_indices: Vec<u32> = Vec::new();
    // Launched job → (pending index, position in `launches`). The position
    // lets phase 2 back-patch awards by direct index instead of rescanning
    // the launch list per award.
    let mut launched_set: HashMap<JobId, (usize, usize)> = HashMap::new();
    let mut skipped: Vec<JobId> = Vec::new();
    let phase1_capacity = capacity.min(u64::from(u32::MAX)) as u32;
    let mut phase1_audit: Vec<lyra_obs::audit::Phase1Entry> = Vec::new();
    for r in &order {
        let need = u64::from(r.base_gpus);
        let admitted = need <= capacity;
        if admitted {
            capacity -= need;
            launched_set.insert(r.id, (r.idx as usize, launches.len()));
            launches.push((r.id, r.w_min));
            launch_indices.push(r.idx);
        } else {
            skipped.push(r.id);
        }
        if auditing {
            phase1_audit.push(lyra_obs::audit::Phase1Entry {
                job: r.id.0,
                est_running_time_s: snapshot.pending[r.idx as usize].est_running_time_s,
                base_gpus: r.base_gpus,
                admitted,
                cause: (!admitted).then_some(lyra_obs::DelayCause::GpuScarcity),
            });
        }
    }
    if auditing && !phase1_audit.is_empty() {
        lyra_obs::audit::record(lyra_obs::audit::AuditRecord::Phase1Order {
            capacity_gpus: phase1_capacity,
            order: phase1_audit,
        });
    }

    // ---- Phase 2: MCKP over elastic jobs' flexible demand. ----
    let mut resizes: Vec<(JobId, u32)> = Vec::new();
    if config.elastic_phase {
        // Group sources: launched elastic pending jobs, then running
        // elastic jobs. Keep indices to map the solution back.
        enum Source {
            /// Pending index plus the job's position in `launches`.
            Pending { idx: usize, launch: usize },
            Running(usize),
        }
        let mut paired: Vec<(McKnapsackGroup, Source)> = Vec::new();

        let push_group = |id: JobId,
                          w_min: u32,
                          w_max: u32,
                          gpw: u32,
                          est_rt: f64,
                          curve: &crate::job::ScalingCurve,
                          src: Source,
                          paired: &mut Vec<(McKnapsackGroup, Source)>| {
            if w_max <= w_min || est_rt <= 0.0 {
                return;
            }
            let s_base = curve.speedup(w_min);
            let items: Vec<McKnapsackItem> = (1..=(w_max - w_min))
                .map(|k| {
                    let s_k = curve.speedup(w_min + k);
                    let value = if s_k > 0.0 {
                        est_rt * (1.0 - s_base / s_k)
                    } else {
                        0.0
                    };
                    McKnapsackItem {
                        weight: k * gpw,
                        value,
                    }
                })
                .collect();
            paired.push((McKnapsackGroup { key: id.0, items }, src));
        };

        for (id, &(idx, launch)) in &launched_set {
            let p = &snapshot.pending[idx];
            if p.spec.is_elastic() {
                push_group(
                    *id,
                    p.spec.w_min(),
                    p.spec.w_max(),
                    p.spec.gpus_per_worker,
                    p.est_running_time_s,
                    &p.spec.curve,
                    Source::Pending { idx, launch },
                    &mut paired,
                );
            }
        }
        for (ridx, r) in snapshot.running.iter().enumerate() {
            if r.spec.is_elastic() {
                // Remaining running time at base demand, from remaining work.
                let rate = r.spec.service_rate(r.spec.w_min(), 1.0);
                let est_rt = if rate > 0.0 { r.work_left / rate } else { 0.0 };
                push_group(
                    r.spec.id,
                    r.spec.w_min(),
                    r.spec.w_max(),
                    r.spec.gpus_per_worker,
                    est_rt,
                    &r.spec.curve,
                    Source::Running(ridx),
                    &mut paired,
                );
            }
        }

        // Deterministic group order (HashMap iteration above is not).
        // Keys are job ids, hence unique; sorting the pairs moves the
        // groups rather than cloning their item vectors.
        paired.sort_by_key(|(g, _)| g.key);
        let (groups_sorted, sources): (Vec<McKnapsackGroup>, Vec<Source>) =
            paired.into_iter().unzip();

        // The DP clamps its table width by the per-group max-weight sum
        // internally; recompute the clamp here only because the audit
        // records the effective capacity.
        let total_max_weight: u64 = groups_sorted
            .iter()
            .map(|g| u64::from(g.items.iter().map(|i| i.weight).max().unwrap_or(0)))
            .sum();
        let cap_u32 = capacity.min(total_max_weight).min(u64::from(u32::MAX)) as u32;
        let solution = match config.phase2 {
            Phase2Solver::Mckp => solve_mckp_with(mckp_scratch, &groups_sorted, cap_u32),
            Phase2Solver::Greedy => solve_greedy(&groups_sorted, cap_u32),
        };
        capacity -= u64::from(solution.total_weight);

        if auditing && !groups_sorted.is_empty() {
            // Per-group option values are capped: a wide elastic range
            // would bloat every audit record.
            const AUDIT_VALUES: usize = 16;
            let audit_groups = groups_sorted
                .iter()
                .zip(&solution.chosen)
                .map(|(g, chosen)| {
                    let gpw = g.items.first().map_or(1, |i| i.weight.max(1));
                    let chosen_extra = chosen.map(|i| g.items[i].weight / gpw).unwrap_or(0);
                    lyra_obs::audit::MckpGroupAudit {
                        job: g.key,
                        values: g.items.iter().take(AUDIT_VALUES).map(|i| i.value).collect(),
                        chosen_extra,
                        chosen_value: chosen.map(|i| g.items[i].value).unwrap_or(0.0),
                        cause: (chosen_extra == 0 && !g.items.is_empty())
                            .then_some(lyra_obs::DelayCause::MckpDenial),
                    }
                })
                .collect();
            lyra_obs::audit::record(lyra_obs::audit::AuditRecord::Phase2Mckp {
                capacity_gpus: cap_u32,
                groups: audit_groups,
                total_value: solution.total_value,
                total_weight: solution.total_weight,
            });
        }

        for (slot, chosen) in solution.chosen.iter().enumerate() {
            let extra = chosen
                .map(|i| {
                    let item = &groups_sorted[slot].items[i];
                    item.weight / groups_sorted[slot].items[0].weight.max(1)
                })
                .unwrap_or(0);
            // Recover extra workers from weight: weight = k × gpus/worker,
            // items[0].weight = gpus/worker.
            match sources[slot] {
                Source::Pending { idx, launch } => {
                    let p = &snapshot.pending[idx];
                    if extra > 0 {
                        debug_assert_eq!(
                            launches[launch].0, p.spec.id,
                            "phase-2 award must patch its own launch entry"
                        );
                        launches[launch].1 = p.spec.w_min() + extra;
                    }
                }
                Source::Running(ridx) => {
                    let r = &snapshot.running[ridx];
                    let target = r.spec.w_min() + extra;
                    if target != r.workers {
                        resizes.push((r.spec.id, target));
                    }
                }
            }
        }
        resizes.sort_by_key(|(id, _)| *id);
    }

    AllocationOutcome {
        launches,
        launch_indices,
        resizes,
        skipped,
        leftover_gpus: capacity.min(u64::from(u32::MAX)) as u32,
    }
}

/// The greedy phase-2 ablation solver, exposed verbatim for the
/// differential oracles in `lyra-oracle` (`test-oracles` feature only —
/// production callers go through `two_phase_allocate_with`).
#[cfg(feature = "test-oracles")]
pub fn greedy_phase2_for_oracles(
    groups: &[McKnapsackGroup],
    capacity: u32,
) -> crate::mckp::MckpSolution {
    solve_greedy(groups, capacity)
}

/// Greedy phase-2 ablation: repeatedly take the upgrade step (to the next
/// item within a group) with the best marginal value per GPU. Optimal for
/// concave value curves, suboptimal in general — the point of comparison
/// for the knapsack (§2.3).
fn solve_greedy(groups: &[McKnapsackGroup], capacity: u32) -> crate::mckp::MckpSolution {
    let mut chosen: Vec<Option<usize>> = vec![None; groups.len()];
    let mut used: u64 = 0;
    let cap = u64::from(capacity);
    loop {
        let mut best: Option<(usize, f64)> = None;
        for (g, group) in groups.iter().enumerate() {
            let next = chosen[g].map_or(0, |i| i + 1);
            let Some(item) = group.items.get(next) else {
                continue;
            };
            let (prev_w, prev_v) = chosen[g]
                .map(|i| (group.items[i].weight, group.items[i].value))
                .unwrap_or((0, 0.0));
            let dw = item.weight.saturating_sub(prev_w);
            let dv = item.value - prev_v;
            if dv <= 0.0 || used + u64::from(dw) > cap {
                continue;
            }
            let ratio = dv / f64::from(dw.max(1));
            if best.is_none_or(|(_, r)| ratio > r) {
                best = Some((g, ratio));
            }
        }
        let Some((g, _)) = best else { break };
        let next = chosen[g].map_or(0, |i| i + 1);
        let prev_w = chosen[g].map_or(0, |i| groups[g].items[i].weight);
        // Guard like the scan above: a non-monotone group (next item
        // lighter than the current one) must not underflow the budget.
        used += u64::from(groups[g].items[next].weight.saturating_sub(prev_w));
        chosen[g] = Some(next);
    }
    let total_value = chosen
        .iter()
        .enumerate()
        .filter_map(|(g, c)| c.map(|i| groups[g].items[i].value))
        .sum();
    let total_weight = chosen
        .iter()
        .enumerate()
        .filter_map(|(g, c)| c.map(|i| groups[g].items[i].weight))
        .sum();
    crate::mckp::MckpSolution {
        total_value,
        total_weight,
        chosen,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuType;
    use crate::job::JobSpec;
    use crate::snapshot::{PendingJobView, PoolKind, RunningJobView, ServerId, ServerView};

    fn cluster(gpus: u32) -> Vec<ServerView> {
        (0..gpus.div_ceil(8))
            .map(|i| ServerView::idle(i, PoolKind::Training, GpuType::V100, 8.min(gpus - i * 8)))
            .collect()
    }

    fn snap(servers: Vec<ServerView>, pending: Vec<JobSpec>) -> Snapshot {
        Snapshot {
            time_s: 0.0,
            servers,
            pending: pending.into_iter().map(PendingJobView::fresh).collect(),
            running: vec![],
        }
    }

    #[test]
    fn table2_equal_split_is_not_chosen() {
        // Table 2/3: A [2,6] 50 s, B [2,6] 20 s, 8 workers. The best of the
        // three listed solutions favours B (avg JCT 41.67). Two-phase:
        // bases 2+2, leftovers 4 go to the larger-value group.
        let a = JobSpec::elastic(0, 0.0, 2, 6, 1, 50.0);
        let b = JobSpec::elastic(1, 0.0, 2, 6, 1, 20.0);
        let out = two_phase_allocate(&snap(cluster(8), vec![a, b]), AllocationConfig::default());
        // Values for extra k: A: 150(1 − 2/(2+k)); B: 60(1 − 2/(2+k)).
        // A's values dominate B's at every k, so all 4 extras go to A:
        // A=6, B=2 → JCTs 50 and 60... but the MCKP maximises value sum
        // (runtime reduction), picking A's k=4 (value 100) over any split
        // (A3+B1: 90+12=102? A's k=3 is 90, B k=1 is 12 → 102 > 100).
        let m: HashMap<JobId, u32> = out.launches.iter().copied().collect();
        let total: u32 = m.values().sum();
        assert_eq!(total, 8, "all 8 workers allocated");
        assert_eq!(m[&JobId(0)] + m[&JobId(1)], 8);
        // Verify it picked the MCKP optimum over these value curves.
        let val =
            |spec: &JobSpec, w: u32| -> f64 { spec.base_running_time() - spec.running_time(w) };
        let a = JobSpec::elastic(0, 0.0, 2, 6, 1, 50.0);
        let b = JobSpec::elastic(1, 0.0, 2, 6, 1, 20.0);
        let achieved = val(&a, m[&JobId(0)]) + val(&b, m[&JobId(1)]);
        let mut best = 0.0_f64;
        for wa in 2..=6u32 {
            let wb = 8 - wa;
            if (2..=6).contains(&wb) {
                best = best.max(val(&a, wa) + val(&b, wb));
            }
        }
        assert!((achieved - best).abs() < 1e-9);
    }

    #[test]
    fn table4_prioritizes_job_a() {
        // Table 4: A [2,3]×2-GPU 100 s, B [2,6]×1-GPU 20 s, 8 GPUs.
        // Bases: A 4 GPUs + B 2 GPUs, 2 left. A's extra worker reduces JCT
        // by 50 s; B's best 2-GPU item reduces 30 s → favour A (avg 62).
        let a = JobSpec::elastic(0, 0.0, 2, 3, 2, 100.0);
        let b = JobSpec::elastic(1, 0.0, 2, 6, 1, 20.0);
        let out = two_phase_allocate(&snap(cluster(8), vec![a, b]), AllocationConfig::default());
        let m: HashMap<JobId, u32> = out.launches.iter().copied().collect();
        assert_eq!(m[&JobId(0)], 3, "A gets its flexible worker");
        assert_eq!(m[&JobId(1)], 2, "B stays at base");
    }

    #[test]
    fn phase1_is_sjf_with_skipping() {
        // 8 GPUs; three inelastic jobs: 60 s × 6 GPUs, 10 s × 4 GPUs,
        // 20 s × 4 GPUs. SJF launches the 10 s and 20 s jobs and skips the
        // 60 s one.
        let jobs = vec![
            JobSpec::inelastic(0, 0.0, 6, 1, 60.0),
            JobSpec::inelastic(1, 0.0, 4, 1, 10.0),
            JobSpec::inelastic(2, 0.0, 4, 1, 20.0),
        ];
        let out = two_phase_allocate(&snap(cluster(8), jobs), AllocationConfig::default());
        assert_eq!(out.launches, vec![(JobId(1), 4), (JobId(2), 4)]);
        assert_eq!(out.skipped, vec![JobId(0)]);
        assert_eq!(out.leftover_gpus, 0);
    }

    #[test]
    fn running_elastic_jobs_can_be_scaled_in() {
        // A running elastic job holds 4 workers (2 flexible). A pending
        // 10 s inelastic job needs 4 GPUs but only 2 are idle: phase 1 must
        // take the flexible pool, scaling the running job to base.
        let running = RunningJobView {
            spec: JobSpec::elastic(0, 0.0, 2, 6, 1, 100.0),
            workers: 4,
            work_left: 300.0,
            placement: vec![(ServerId(0), 4)],
            flexible_workers: 2,
            flex_placement: vec![(ServerId(0), 2)],
        };
        let mut servers = cluster(8);
        servers[0].free_gpus = 2; // 4 by the elastic job + 2 by someone else
        let pending = vec![JobSpec::inelastic(1, 0.0, 4, 1, 10.0)];
        let snapshot = Snapshot {
            time_s: 0.0,
            servers,
            pending: pending.into_iter().map(PendingJobView::fresh).collect(),
            running: vec![running],
        };
        let out = two_phase_allocate(&snapshot, AllocationConfig::default());
        assert_eq!(out.launches, vec![(JobId(1), 4)]);
        assert_eq!(out.resizes, vec![(JobId(0), 2)]);
    }

    #[test]
    fn running_elastic_jobs_can_be_scaled_out() {
        let running = RunningJobView {
            spec: JobSpec::elastic(0, 0.0, 2, 6, 1, 100.0),
            workers: 2,
            work_left: 300.0,
            placement: vec![(ServerId(0), 2)],
            flexible_workers: 0,
            flex_placement: vec![],
        };
        let mut servers = cluster(8);
        servers[0].free_gpus = 6;
        let snapshot = Snapshot {
            time_s: 0.0,
            servers,
            pending: vec![],
            running: vec![running],
        };
        let out = two_phase_allocate(&snapshot, AllocationConfig::default());
        assert_eq!(out.resizes, vec![(JobId(0), 6)]);
        assert_eq!(out.leftover_gpus, 2);
    }

    #[test]
    fn elastic_phase_disabled_keeps_bases_only() {
        let a = JobSpec::elastic(0, 0.0, 2, 6, 1, 50.0);
        let out = two_phase_allocate(
            &snap(cluster(8), vec![a]),
            AllocationConfig {
                elastic_phase: false,
                normalize_capacity: false,
                ..AllocationConfig::default()
            },
        );
        assert_eq!(out.launches, vec![(JobId(0), 2)]);
        assert_eq!(out.leftover_gpus, 6);
    }

    #[test]
    fn normalization_discounts_on_loan_gpus() {
        // 8 idle T4 GPUs ≈ 2.67 V100-equivalents: a 3-GPU job no longer
        // fits when normalising.
        let servers = vec![ServerView::idle(0, PoolKind::OnLoan, GpuType::T4, 8)];
        let pending = vec![JobSpec::inelastic(0, 0.0, 3, 1, 10.0)];
        let out = two_phase_allocate(
            &snap(servers.clone(), pending.clone()),
            AllocationConfig {
                elastic_phase: true,
                normalize_capacity: true,
                ..AllocationConfig::default()
            },
        );
        assert!(out.launches.is_empty());
        assert_eq!(out.skipped, vec![JobId(0)]);
        // Without normalisation it fits.
        let out = two_phase_allocate(&snap(servers, pending), AllocationConfig::default());
        assert_eq!(out.launches.len(), 1);
    }

    #[test]
    fn normalization_discounts_t4_flexible_workers() {
        // Regression: the flexible pool must be V100-normalized like the
        // idle pool. A running elastic job parks 6 flexible workers on an
        // on-loan T4 server; with 2 idle T4 GPUs the true pool is
        // (2 + 6) × 1/3 = 2.67 → 2 GPUs, so a 4-GPU job must be skipped.
        // The old code summed the flexible part raw (6 full GPUs) and
        // admitted it.
        let mut servers = vec![
            ServerView::idle(0, PoolKind::Training, GpuType::V100, 8),
            ServerView::idle(1, PoolKind::OnLoan, GpuType::T4, 8),
        ];
        servers[0].free_gpus = 6; // 2 held by the running job's base workers
        servers[1].free_gpus = 2; // 6 held by its flexible workers
        let running = RunningJobView {
            spec: JobSpec::elastic(0, 0.0, 2, 8, 1, 100.0),
            workers: 8,
            work_left: 300.0,
            placement: vec![(ServerId(0), 2), (ServerId(1), 6)],
            flexible_workers: 6,
            flex_placement: vec![(ServerId(1), 6)],
        };
        // Make the V100 server fully busy so only T4 capacity remains.
        servers[0].free_gpus = 0;
        let pending = vec![JobSpec::inelastic(1, 0.0, 4, 1, 10.0)];
        let config = AllocationConfig {
            elastic_phase: false, // isolate the capacity accounting
            normalize_capacity: true,
            ..AllocationConfig::default()
        };
        let snapshot = Snapshot {
            time_s: 0.0,
            servers: servers.clone(),
            pending: pending.clone().into_iter().map(PendingJobView::fresh).collect(),
            running: vec![running.clone()],
        };
        let out = two_phase_allocate(&snapshot, config);
        assert!(out.launches.is_empty(), "4-GPU job must not fit in 2.67 V100-equivalents");
        assert_eq!(out.skipped, vec![JobId(1)]);
        assert_eq!(out.leftover_gpus, 2, "leftover is normalized too");
        // Without normalisation a GPU is a GPU: 2 idle + 6 flexible = 8.
        let snapshot = Snapshot {
            time_s: 0.0,
            servers,
            pending: pending.into_iter().map(PendingJobView::fresh).collect(),
            running: vec![running],
        };
        let out = two_phase_allocate(
            &snapshot,
            AllocationConfig {
                elastic_phase: false,
                ..AllocationConfig::default()
            },
        );
        assert_eq!(out.launches, vec![(JobId(1), 4)]);
    }

    #[test]
    fn greedy_handles_non_monotone_group_weights() {
        // Regression: the apply step used an unguarded subtraction and
        // underflowed (debug) / wrapped (release) when a later item was
        // lighter than the current one.
        let groups = vec![McKnapsackGroup {
            key: 0,
            items: vec![
                McKnapsackItem { weight: 5, value: 10.0 },
                McKnapsackItem { weight: 2, value: 15.0 },
            ],
        }];
        let sol = solve_greedy(&groups, 10);
        assert!(sol.total_weight <= 10);
        assert!(sol.total_value >= 10.0);
    }

    proptest::proptest! {
        /// Greedy never beats the DP, never panics and never overpacks —
        /// on arbitrary (including non-monotone-weight) groups.
        #[test]
        fn greedy_bounded_by_dp_on_arbitrary_groups(
            groups in proptest::collection::vec(
                proptest::collection::vec((0u32..10, -10.0f64..50.0), 1..5),
                0..5,
            ),
            capacity in 0u32..30,
        ) {
            let groups: Vec<McKnapsackGroup> = groups
                .into_iter()
                .enumerate()
                .map(|(k, items)| McKnapsackGroup {
                    key: k as u64,
                    items: items
                        .into_iter()
                        .map(|(w, v)| McKnapsackItem { weight: w, value: v })
                        .collect(),
                })
                .collect();
            let greedy = solve_greedy(&groups, capacity);
            let dp = crate::mckp::solve_mckp(&groups, capacity);
            proptest::prop_assert!(greedy.total_value <= dp.total_value + 1e-9);
            proptest::prop_assert!(greedy.total_weight <= capacity);
        }
    }

    #[test]
    fn empty_snapshot_is_a_noop() {
        let out = two_phase_allocate(&Snapshot::default(), AllocationConfig::default());
        assert!(out.launches.is_empty());
        assert!(out.resizes.is_empty());
        assert!(out.skipped.is_empty());
    }

    #[test]
    fn tie_on_runtime_breaks_by_job_id() {
        let jobs = vec![
            JobSpec::inelastic(5, 0.0, 4, 1, 10.0),
            JobSpec::inelastic(3, 0.0, 4, 1, 10.0),
        ];
        let out = two_phase_allocate(&snap(cluster(4), jobs), AllocationConfig::default());
        assert_eq!(out.launches, vec![(JobId(3), 4)]);
        assert_eq!(out.skipped, vec![JobId(5)]);
    }
}
