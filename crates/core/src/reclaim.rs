//! Server reclaiming for capacity loaning (§4).
//!
//! When the inference cluster asks for `N_R` servers back, every training
//! job running on a returned server must be preempted — losing all progress
//! unless it checkpoints. Picking the cheapest set of servers is a knapsack
//! problem with *dependent item values*: preempting a job that spans several
//! servers empties all of them at once, so server costs are coupled
//! (Figure 5 / Table 1).
//!
//! Lyra defines a server's **preemption cost** as the sum, over the jobs it
//! hosts, of the fraction of each job's servers that this server represents
//! (`Σ_j 1/servers(j)`), then greedily returns the lowest-cost server,
//! preempts its jobs everywhere, updates the remaining costs and repeats
//! until the demand is met. Ties are broken by the collateral damage the
//! choice would incur. The module also provides the paper's comparators:
//! [`reclaim_random`], smallest-count-first ([`reclaim_scf`]), the
//! GPU-fraction cost variant that Table 1 shows to be inferior, and an
//! exhaustive optimal search used in §7.3's optimality study.

use crate::job::JobId;
use crate::snapshot::ServerId;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// How a server's preemption cost is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CostModel {
    /// Lyra's choice: each job contributes `1 / (number of servers hosting
    /// it)` — the "sum of job's server fraction" column of Table 1.
    ServerFraction,
    /// Each job contributes the fraction of its GPUs on this server — the
    /// "sum of job's GPU fraction" column of Table 1, shown to mis-rank
    /// server 5 in the example.
    GpuFraction,
    /// Each job contributes 1 — the naive "# running jobs" column of
    /// Table 1 (the plain 0-1 knapsack value).
    JobCount,
}

/// A job's cluster-wide footprint, as needed for cost computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobFootprint {
    /// Job identity.
    pub id: JobId,
    /// Number of distinct servers hosting at least one of its workers
    /// (including servers outside the reclaim candidate set).
    pub total_servers: u32,
    /// Total GPUs the job occupies cluster-wide.
    pub total_gpus: u32,
}

/// A reclaim-candidate (on-loan) server and the jobs it hosts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReclaimServerView {
    /// Server identity.
    pub id: ServerId,
    /// Total GPUs installed.
    pub total_gpus: u32,
    /// `(job, GPUs that job occupies here)` for every job with ≥1 worker on
    /// this server.
    pub jobs: Vec<(JobId, u32)>,
}

impl ReclaimServerView {
    fn is_empty(&self, alive: &HashSet<JobId>) -> bool {
        self.jobs.iter().all(|(j, _)| !alive.contains(j))
    }
}

/// One reclaiming request from the orchestrator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReclaimRequest {
    /// Candidate on-loan servers (only these can be returned).
    pub servers: Vec<ReclaimServerView>,
    /// Footprints of every job appearing in `servers`.
    pub jobs: Vec<JobFootprint>,
    /// Number of servers the inference cluster wants back (`N_R`).
    pub need: usize,
}

impl ReclaimRequest {
    fn footprints(&self) -> HashMap<JobId, JobFootprint> {
        self.jobs.iter().map(|f| (f.id, *f)).collect()
    }

    /// Validates internal consistency; useful when assembling requests from
    /// external state.
    ///
    /// Returns an error string describing the first inconsistency found:
    /// a job on a server without a footprint, or per-server GPU usage
    /// exceeding the server size.
    pub fn validate(&self) -> Result<(), String> {
        let fp = self.footprints();
        for s in &self.servers {
            let mut used = 0;
            for &(j, g) in &s.jobs {
                if !fp.contains_key(&j) {
                    return Err(format!("{j} on {} has no footprint", s.id));
                }
                used += g;
            }
            if used > s.total_gpus {
                return Err(format!(
                    "{} hosts {used} GPUs of jobs but has only {}",
                    s.id, s.total_gpus
                ));
            }
        }
        Ok(())
    }
}

/// Result of a reclaiming decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReclaimOutcome {
    /// Servers to hand back, in selection order.
    pub returned: Vec<ServerId>,
    /// Jobs that must be preempted.
    pub preempted: Vec<JobId>,
    /// GPUs vacated beyond the reclaiming demand (`need` × server size):
    /// idle GPUs on returned servers plus GPUs the preempted jobs held on
    /// servers that were *not* returned. This is the paper's "collateral
    /// damage" numerator (§7.3).
    pub collateral_gpus: u32,
    /// How many of the `need` servers could not be provided (candidates
    /// exhausted).
    pub shortfall: usize,
}

/// Per-server preemption cost under a [`CostModel`], considering only
/// still-alive jobs.
///
/// For the server-fraction model the denominator is capped at the
/// *remaining demand*: vacating more servers than the inference cluster
/// asked for is pure collateral, so a job spanning five servers is no
/// cheaper than a single-server job when only one server is needed. With
/// `need_left ≥ span` this reduces to the paper's `1/servers(j)`.
fn server_cost(
    server: &ReclaimServerView,
    alive: &HashSet<JobId>,
    footprints: &HashMap<JobId, JobFootprint>,
    model: CostModel,
    need_left: usize,
) -> f64 {
    server
        .jobs
        .iter()
        .filter(|(j, _)| alive.contains(j))
        .map(|&(j, gpus_here)| {
            let fp = &footprints[&j];
            match model {
                CostModel::ServerFraction => {
                    let useful = fp.total_servers.min(need_left.max(1) as u32).max(1);
                    1.0 / f64::from(useful)
                }
                CostModel::GpuFraction => f64::from(gpus_here) / f64::from(fp.total_gpus.max(1)),
                CostModel::JobCount => 1.0,
            }
        })
        .sum()
}

/// Computes Table 1's cost columns for a request — exposed for the `tab1`
/// experiment and tests.
pub fn cost_table(request: &ReclaimRequest) -> Vec<(ServerId, f64, f64, f64)> {
    let fp = request.footprints();
    let alive: HashSet<JobId> = fp.keys().copied().collect();
    request
        .servers
        .iter()
        .map(|s| {
            (
                s.id,
                server_cost(s, &alive, &fp, CostModel::JobCount, request.need),
                server_cost(s, &alive, &fp, CostModel::GpuFraction, request.need),
                server_cost(s, &alive, &fp, CostModel::ServerFraction, request.need),
            )
        })
        .collect()
}

/// Collateral damage of returning `server` now: GPUs its alive jobs hold on
/// servers that will *not* be handed back as a result — i.e. non-candidate
/// servers, and candidate servers that do not become empty when this
/// server's jobs are preempted. Candidate servers that cascade-empty count
/// toward the reclaiming demand, so freeing them is not damage.
fn collateral_of(
    server: &ReclaimServerView,
    candidates: &[&ReclaimServerView],
    alive: &HashSet<JobId>,
    footprints: &HashMap<JobId, JobFootprint>,
) -> u32 {
    let preempt: HashSet<JobId> = server
        .jobs
        .iter()
        .filter(|(j, _)| alive.contains(j))
        .map(|(j, _)| *j)
        .collect();
    let mut on_candidates: HashMap<JobId, u32> = HashMap::new();
    let mut damage = 0;
    for t in candidates {
        let freed: u32 = t
            .jobs
            .iter()
            .filter(|(j, _)| preempt.contains(j))
            .map(|(_, g)| g)
            .sum();
        for &(j, g) in &t.jobs {
            if preempt.contains(&j) {
                *on_candidates.entry(j).or_insert(0) += g;
            }
        }
        if t.id == server.id || freed == 0 {
            continue;
        }
        let becomes_empty = t
            .jobs
            .iter()
            .all(|(j, _)| !alive.contains(j) || preempt.contains(j));
        if !becomes_empty {
            damage += freed;
        }
    }
    // GPUs held on servers outside the candidate set are always damage.
    for j in &preempt {
        let total = footprints.get(j).map_or(0, |f| f.total_gpus);
        damage += total.saturating_sub(on_candidates.get(j).copied().unwrap_or(0));
    }
    damage
}

/// Shared greedy loop: repeatedly take all empty candidates for free, then
/// apply `pick` to choose the next non-empty server to clear.
fn greedy_reclaim<F>(request: &ReclaimRequest, mut pick: F) -> ReclaimOutcome
where
    F: FnMut(&[&ReclaimServerView], &HashSet<JobId>, &HashMap<JobId, JobFootprint>, usize) -> usize,
{
    let _timing = lyra_obs::span::span("core.reclaim");
    let footprints = request.footprints();
    let mut alive: HashSet<JobId> = footprints.keys().copied().collect();
    let mut returned: Vec<ServerId> = Vec::new();
    let mut returned_set: HashSet<ServerId> = HashSet::new();
    let mut preempted: Vec<JobId> = Vec::new();

    while returned.len() < request.need {
        // Empty candidates (originally idle or emptied by cascades) are
        // free to return.
        if let Some(s) = request
            .servers
            .iter()
            .find(|s| !returned_set.contains(&s.id) && s.is_empty(&alive))
        {
            returned.push(s.id);
            returned_set.insert(s.id);
            continue;
        }
        let candidates: Vec<&ReclaimServerView> = request
            .servers
            .iter()
            .filter(|s| !returned_set.contains(&s.id))
            .collect();
        if candidates.is_empty() {
            break;
        }
        let need_left = request.need - returned.len();
        let idx = pick(&candidates, &alive, &footprints, need_left);
        let victim = candidates[idx];
        for &(j, _) in &victim.jobs {
            if alive.remove(&j) {
                preempted.push(j);
            }
        }
        returned.push(victim.id);
        returned_set.insert(victim.id);
    }

    let collateral = collateral_damage(request, &returned, &preempted);
    let shortfall = request.need.saturating_sub(returned.len());
    ReclaimOutcome {
        returned,
        preempted,
        collateral_gpus: collateral,
        shortfall,
    }
}

/// Total GPUs vacated in excess of the demand actually served, for a given
/// returned-server set and preempted-job set.
fn collateral_damage(request: &ReclaimRequest, returned: &[ServerId], preempted: &[JobId]) -> u32 {
    let returned_set: HashSet<ServerId> = returned.iter().copied().collect();
    let preempted_set: HashSet<JobId> = preempted.iter().copied().collect();
    let footprints = request.footprints();
    // Idle GPUs on returned servers (capacity handed back unused by jobs,
    // beyond what was actually occupied) do not count as damage — the
    // demand is in servers. Damage is progress-bearing GPUs freed outside
    // returned servers.
    let mut on_returned: HashMap<JobId, u32> = HashMap::new();
    for s in &request.servers {
        if returned_set.contains(&s.id) {
            for &(j, g) in &s.jobs {
                *on_returned.entry(j).or_insert(0) += g;
            }
        }
    }
    preempted_set
        .iter()
        .map(|j| {
            let total = footprints.get(j).map_or(0, |f| f.total_gpus);
            total.saturating_sub(on_returned.get(j).copied().unwrap_or(0))
        })
        .sum()
}

/// Lyra's reclaiming heuristic (§4) under a configurable [`CostModel`].
///
/// Greedily returns the server with the lowest preemption cost, breaking
/// ties by collateral damage, preempts its jobs everywhere, updates costs
/// and repeats until `need` servers are vacated (cascade-emptied servers are
/// returned for free).
///
/// # Examples
///
/// ```
/// use lyra_core::reclaim::*;
/// use lyra_core::{JobId, ServerId};
/// // Figure 5: job a spans servers 1&2; reclaiming both costs 1 job.
/// let req = ReclaimRequest {
///     servers: vec![
///         ReclaimServerView { id: ServerId(1), total_gpus: 8, jobs: vec![(JobId(0), 8)] },
///         ReclaimServerView { id: ServerId(2), total_gpus: 8, jobs: vec![(JobId(0), 8)] },
///         ReclaimServerView { id: ServerId(3), total_gpus: 8, jobs: vec![(JobId(1), 8)] },
///     ],
///     jobs: vec![
///         JobFootprint { id: JobId(0), total_servers: 2, total_gpus: 16 },
///         JobFootprint { id: JobId(1), total_servers: 1, total_gpus: 8 },
///     ],
///     need: 2,
/// };
/// let out = reclaim_servers(&req, CostModel::ServerFraction);
/// assert_eq!(out.preempted.len(), 1); // only job a
/// ```
pub fn reclaim_servers(request: &ReclaimRequest, model: CostModel) -> ReclaimOutcome {
    greedy_reclaim(request, |candidates, alive, footprints, need_left| {
        let auditing = lyra_obs::audit::is_enabled();
        let mut audit_costs = Vec::new();
        let mut best = 0;
        let mut best_cost = f64::INFINITY;
        let mut best_coll = u32::MAX;
        for (i, s) in candidates.iter().enumerate() {
            let cost = server_cost(s, alive, footprints, model, need_left);
            let coll = collateral_of(s, candidates, alive, footprints);
            if auditing && audit_costs.len() < AUDIT_CANDIDATES {
                audit_costs.push(lyra_obs::audit::ReclaimCandidate {
                    server: s.id.0,
                    cost,
                    collateral_gpus: coll,
                });
            }
            if cost < best_cost - 1e-12 || ((cost - best_cost).abs() <= 1e-12 && coll < best_coll) {
                best = i;
                best_cost = cost;
                best_coll = coll;
            }
        }
        if auditing {
            let victim = candidates[best];
            let preempted: Vec<u64> = victim
                .jobs
                .iter()
                .filter(|(j, _)| alive.contains(j))
                .map(|(j, _)| j.0)
                .collect();
            let cause =
                (!preempted.is_empty()).then_some(lyra_obs::DelayCause::ReclaimPreemption);
            lyra_obs::audit::record(lyra_obs::audit::AuditRecord::ReclaimChoice {
                need: need_left as u32,
                candidates: audit_costs,
                chosen: victim.id.0,
                preempted,
                cause,
            });
        }
        best
    })
}

/// Cap on candidate costs kept per reclaim audit record.
const AUDIT_CANDIDATES: usize = 16;

/// Random reclaiming comparator (§7.1): clears uniformly random candidate
/// servers until the demand is met.
pub fn reclaim_random<R: Rng>(request: &ReclaimRequest, rng: &mut R) -> ReclaimOutcome {
    greedy_reclaim(request, |candidates, _, _, _| {
        rng.gen_range(0..candidates.len())
    })
}

/// Smallest-(job)-count-first comparator (§7.1): clears the candidate
/// hosting the fewest running jobs first.
pub fn reclaim_scf(request: &ReclaimRequest) -> ReclaimOutcome {
    greedy_reclaim(request, |candidates, alive, _footprints, _need_left| {
        let mut best = 0;
        let mut best_key = (usize::MAX, u32::MAX);
        for (i, s) in candidates.iter().enumerate() {
            let count = s.jobs.iter().filter(|(j, _)| alive.contains(j)).count();
            // Plain job-count ranking with an id tie-break — SCF is blind
            // to job spans, which is exactly what Lyra's cost fixes.
            if (count, s.id.0) < best_key {
                best = i;
                best_key = (count, s.id.0);
            }
        }
        best
    })
}

/// Exhaustive optimal reclaiming: the minimum-preemption solution, found by
/// searching job subsets in increasing size (§7.3's optimality study).
///
/// Exponential in the number of distinct jobs — use only on small instances
/// (the paper reports the optimum's running time is ~420 000× Lyra's).
/// Returns `None` when even preempting every job cannot vacate `need`
/// servers.
pub fn reclaim_exhaustive_optimal(request: &ReclaimRequest) -> Option<ReclaimOutcome> {
    let footprints = request.footprints();
    let job_ids: Vec<JobId> = {
        let mut v: Vec<JobId> = footprints.keys().copied().collect();
        v.sort_unstable();
        v
    };

    let vacated_by = |preempt: &HashSet<JobId>| -> Vec<ServerId> {
        request
            .servers
            .iter()
            .filter(|s| s.jobs.iter().all(|(j, _)| preempt.contains(j)))
            .map(|s| s.id)
            .collect()
    };

    /// Enumerates all `k`-subsets of `job_ids[start..]` extending `combo`,
    /// keeping the candidate with the least collateral damage.
    #[allow(clippy::too_many_arguments)]
    fn enumerate(
        request: &ReclaimRequest,
        job_ids: &[JobId],
        k: usize,
        start: usize,
        combo: &mut Vec<JobId>,
        vacated_by: &dyn Fn(&HashSet<JobId>) -> Vec<ServerId>,
        best: &mut Option<ReclaimOutcome>,
    ) {
        if combo.len() == k {
            let preempt: HashSet<JobId> = combo.iter().copied().collect();
            let vacated = vacated_by(&preempt);
            if vacated.len() >= request.need {
                let returned: Vec<ServerId> = vacated.into_iter().take(request.need).collect();
                let mut preempted = combo.clone();
                preempted.sort_unstable();
                let collateral = collateral_damage(request, &returned, &preempted);
                let cand = ReclaimOutcome {
                    returned,
                    preempted,
                    collateral_gpus: collateral,
                    shortfall: 0,
                };
                let better = match best {
                    None => true,
                    Some(b) => cand.collateral_gpus < b.collateral_gpus,
                };
                if better {
                    *best = Some(cand);
                }
            }
            return;
        }
        for i in start..job_ids.len() {
            combo.push(job_ids[i]);
            enumerate(request, job_ids, k, i + 1, combo, vacated_by, best);
            combo.pop();
        }
    }

    // Smallest preemption count first: the first k with any feasible
    // solution is optimal in the primary objective.
    for k in 0..=job_ids.len() {
        let mut best: Option<ReclaimOutcome> = None;
        let mut combo = Vec::with_capacity(k);
        enumerate(request, &job_ids, k, 0, &mut combo, &vacated_by, &mut best);
        if best.is_some() {
            return best;
        }
    }
    None
}

/// Shuffles candidate order — a helper for randomised experiments that want
/// per-trial candidate permutations without touching the request itself.
pub fn shuffled_candidates<R: Rng>(request: &ReclaimRequest, rng: &mut R) -> ReclaimRequest {
    let mut r = request.clone();
    r.servers.shuffle(rng);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds Figure 5 / Table 1's example: six 8-GPU candidate servers.
    ///
    /// * servers 1, 2: job `a` spans both (half on each) — cost columns
    ///   (1, 0.5, 0.5);
    /// * server 3: job `b` fills it alone — (1, 1, 1);
    /// * server 4: 80 % of job `c`'s GPUs; `c`'s remainder sits on a
    ///   server outside the candidate set — (1, 0.8, 0.5);
    /// * server 5: jobs `d` and `e`, each holding 20 % of their GPUs here
    ///   (both span a second, non-candidate server) — (2, 0.4, 1);
    /// * server 6: 80 % of job `f`'s GPUs, remainder outside — (1, 0.8,
    ///   0.5).
    fn figure5() -> ReclaimRequest {
        let a = JobId(0);
        let b = JobId(1);
        let c = JobId(2);
        let d = JobId(3);
        let e = JobId(4);
        let f = JobId(5);
        ReclaimRequest {
            servers: vec![
                ReclaimServerView {
                    id: ServerId(1),
                    total_gpus: 8,
                    jobs: vec![(a, 4)],
                },
                ReclaimServerView {
                    id: ServerId(2),
                    total_gpus: 8,
                    jobs: vec![(a, 4)],
                },
                ReclaimServerView {
                    id: ServerId(3),
                    total_gpus: 8,
                    jobs: vec![(b, 8)],
                },
                ReclaimServerView {
                    id: ServerId(4),
                    total_gpus: 8,
                    jobs: vec![(c, 8)],
                },
                ReclaimServerView {
                    id: ServerId(5),
                    total_gpus: 8,
                    jobs: vec![(d, 2), (e, 2)],
                },
                ReclaimServerView {
                    id: ServerId(6),
                    total_gpus: 8,
                    jobs: vec![(f, 8)],
                },
            ],
            jobs: vec![
                JobFootprint {
                    id: a,
                    total_servers: 2,
                    total_gpus: 8,
                },
                JobFootprint {
                    id: b,
                    total_servers: 1,
                    total_gpus: 8,
                },
                JobFootprint {
                    id: c,
                    total_servers: 2,
                    total_gpus: 10,
                },
                JobFootprint {
                    id: d,
                    total_servers: 2,
                    total_gpus: 10,
                },
                JobFootprint {
                    id: e,
                    total_servers: 2,
                    total_gpus: 10,
                },
                JobFootprint {
                    id: f,
                    total_servers: 2,
                    total_gpus: 10,
                },
            ],
            need: 2,
        }
    }

    #[test]
    fn request_validation() {
        assert!(figure5().validate().is_ok());
        let mut bad = figure5();
        bad.servers[0].jobs.push((JobId(99), 1));
        assert!(bad.validate().is_err());
        let mut over = figure5();
        over.servers[0].jobs[0].1 = 100;
        assert!(over.validate().is_err());
    }

    #[test]
    fn table1_cost_columns_match_paper() {
        let table = cost_table(&figure5());
        // (id, job-count, gpu-fraction, server-fraction)
        let by_id: HashMap<u32, (f64, f64, f64)> = table
            .into_iter()
            .map(|(id, a, b, c)| (id.0, (a, b, c)))
            .collect();
        // Server 1: 1 job, 0.5 GPU fraction, 0.5 server fraction.
        assert_eq!(by_id[&1], (1.0, 0.5, 0.5));
        assert_eq!(by_id[&2], (1.0, 0.5, 0.5));
        assert_eq!(by_id[&3], (1.0, 1.0, 1.0));
        // Server 4: 1 job, 0.8 GPU fraction, 0.5 server fraction.
        assert_eq!(by_id[&4], (1.0, 0.8, 0.5));
        // Server 5: 2 jobs, 0.2 + 0.2 GPU fraction, 0.5 + 0.5 server
        // fraction.
        let (n, g, s) = by_id[&5];
        assert_eq!(n, 2.0);
        assert!((g - 0.4).abs() < 1e-12);
        assert_eq!(s, 1.0);
        assert_eq!(by_id[&6], (1.0, 0.8, 0.5));
    }

    #[test]
    fn lyra_reclaims_spanning_job_pair() {
        // Figure 5's optimum for N_R = 2: servers 1 & 2, one preemption.
        let out = reclaim_servers(&figure5(), CostModel::ServerFraction);
        assert_eq!(out.preempted.len(), 1);
        assert_eq!(out.preempted[0], JobId(0));
        let mut returned: Vec<u32> = out.returned.iter().map(|s| s.0).collect();
        returned.sort_unstable();
        assert_eq!(returned, vec![1, 2]);
        assert_eq!(out.collateral_gpus, 0);
        assert_eq!(out.shortfall, 0);
    }

    #[test]
    fn gpu_fraction_cost_makes_the_papers_mistake() {
        // Table 1's point: GPU-fraction cost ranks server 5 cheapest, which
        // preempts two jobs.
        let out = reclaim_servers(&figure5(), CostModel::GpuFraction);
        assert!(out.preempted.len() >= 2);
    }

    #[test]
    fn optimal_matches_lyra_on_figure5() {
        let opt = reclaim_exhaustive_optimal(&figure5()).expect("feasible");
        assert_eq!(opt.preempted.len(), 1);
        assert_eq!(opt.preempted[0], JobId(0));
    }

    #[test]
    fn scf_counts_jobs_not_fractions() {
        // SCF ranks every single-job server equally; with the secondary
        // tie-break it still avoids server 5 (two jobs).
        let out = reclaim_scf(&figure5());
        assert!(!out.returned.contains(&ServerId(5)));
    }

    #[test]
    fn random_is_seed_deterministic() {
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let a = reclaim_random(&figure5(), &mut rng1);
        let b = reclaim_random(&figure5(), &mut rng2);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_servers_are_free() {
        let mut req = figure5();
        req.servers.push(ReclaimServerView {
            id: ServerId(7),
            total_gpus: 8,
            jobs: vec![],
        });
        req.need = 1;
        let out = reclaim_servers(&req, CostModel::ServerFraction);
        assert_eq!(out.returned, vec![ServerId(7)]);
        assert!(out.preempted.is_empty());
    }

    #[test]
    fn shortfall_reported_when_candidates_exhausted() {
        let mut req = figure5();
        req.need = 10;
        let out = reclaim_servers(&req, CostModel::ServerFraction);
        assert_eq!(out.returned.len(), 6);
        assert_eq!(out.shortfall, 4);
        assert_eq!(out.preempted.len(), 6);
    }

    #[test]
    fn cascade_emptied_servers_count_toward_demand() {
        // Preempting job a (spanning servers 1 and 2) vacates both with a
        // single preemption.
        let mut req = figure5();
        req.servers.retain(|s| s.id.0 == 1 || s.id.0 == 2);
        req.jobs.retain(|f| f.id == JobId(0));
        req.need = 2;
        let out = reclaim_servers(&req, CostModel::ServerFraction);
        assert_eq!(out.preempted, vec![JobId(0)]);
        assert_eq!(out.returned.len(), 2);
        assert_eq!(out.collateral_gpus, 0);
    }

    #[test]
    fn collateral_counts_gpus_outside_returned_servers() {
        // Only server 4 is a candidate; job c also holds 2 GPUs on server 6
        // (not a candidate here) → collateral = 2.
        let req = ReclaimRequest {
            servers: vec![ReclaimServerView {
                id: ServerId(4),
                total_gpus: 8,
                jobs: vec![(JobId(2), 8)],
            }],
            jobs: vec![JobFootprint {
                id: JobId(2),
                total_servers: 2,
                total_gpus: 10,
            }],
            need: 1,
        };
        let out = reclaim_servers(&req, CostModel::ServerFraction);
        assert_eq!(out.preempted, vec![JobId(2)]);
        assert_eq!(out.collateral_gpus, 2);
    }

    #[test]
    fn optimal_none_when_infeasible() {
        let req = ReclaimRequest {
            servers: vec![],
            jobs: vec![],
            need: 1,
        };
        assert!(reclaim_exhaustive_optimal(&req).is_none());
    }

    #[test]
    fn optimal_zero_preemptions_when_idle_servers_suffice() {
        let req = ReclaimRequest {
            servers: vec![
                ReclaimServerView {
                    id: ServerId(0),
                    total_gpus: 8,
                    jobs: vec![],
                },
                ReclaimServerView {
                    id: ServerId(1),
                    total_gpus: 8,
                    jobs: vec![(JobId(0), 8)],
                },
            ],
            jobs: vec![JobFootprint {
                id: JobId(0),
                total_servers: 1,
                total_gpus: 8,
            }],
            need: 1,
        };
        let opt = reclaim_exhaustive_optimal(&req).unwrap();
        assert!(opt.preempted.is_empty());
        assert_eq!(opt.returned, vec![ServerId(0)]);
    }

    #[test]
    fn heuristic_never_beats_optimal_on_random_instances() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..50 {
            // Random small instance: ≤6 servers, ≤6 jobs spanning 1-2.
            let n_servers = rng.gen_range(2..=6usize);
            let n_jobs = rng.gen_range(1..=6usize);
            let mut servers: Vec<ReclaimServerView> = (0..n_servers)
                .map(|i| ReclaimServerView {
                    id: ServerId(i as u32),
                    total_gpus: 8,
                    jobs: vec![],
                })
                .collect();
            let mut jobs = Vec::new();
            for j in 0..n_jobs {
                let span = rng.gen_range(1..=2usize).min(n_servers);
                let mut placed = 0;
                let mut hosts = HashSet::new();
                while hosts.len() < span {
                    hosts.insert(rng.gen_range(0..n_servers));
                }
                for &h in &hosts {
                    let free: u32 = 8 - servers[h].jobs.iter().map(|(_, g)| g).sum::<u32>();
                    if free == 0 {
                        continue;
                    }
                    let g = rng.gen_range(1..=free.min(4));
                    servers[h].jobs.push((JobId(j as u64), g));
                    placed += g;
                }
                if placed > 0 {
                    let hosts_used = servers
                        .iter()
                        .filter(|s| s.jobs.iter().any(|(id, _)| *id == JobId(j as u64)))
                        .count() as u32;
                    jobs.push(JobFootprint {
                        id: JobId(j as u64),
                        total_servers: hosts_used,
                        total_gpus: placed,
                    });
                }
            }
            let need = rng.gen_range(1..=n_servers);
            let req = ReclaimRequest {
                servers,
                jobs,
                need,
            };
            req.validate().unwrap();
            let lyra = reclaim_servers(&req, CostModel::ServerFraction);
            if lyra.shortfall > 0 {
                continue;
            }
            let opt = reclaim_exhaustive_optimal(&req)
                .unwrap_or_else(|| panic!("trial {trial}: optimal infeasible"));
            assert!(
                lyra.preempted.len() >= opt.preempted.len(),
                "trial {trial}: heuristic beat the optimum?"
            );
        }
    }
}
