//! Server reclaiming for capacity loaning (§4).
//!
//! When the inference cluster asks for `N_R` servers back, every training
//! job running on a returned server must be preempted — losing all progress
//! unless it checkpoints. Picking the cheapest set of servers is a knapsack
//! problem with *dependent item values*: preempting a job that spans several
//! servers empties all of them at once, so server costs are coupled
//! (Figure 5 / Table 1).
//!
//! Lyra defines a server's **preemption cost** as the sum, over the jobs it
//! hosts, of the fraction of each job's servers that this server represents
//! (`Σ_j 1/servers(j)`), then greedily returns the lowest-cost server,
//! preempts its jobs everywhere, updates the remaining costs and repeats
//! until the demand is met. Ties are broken by the collateral damage the
//! choice would incur. The module also provides the paper's comparators:
//! [`reclaim_random`], smallest-count-first ([`reclaim_scf`]), the
//! GPU-fraction cost variant that Table 1 shows to be inferior, and an
//! exhaustive optimal search used in §7.3's optimality study.

use crate::job::JobId;
use crate::snapshot::ServerId;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, HashSet};

/// How a server's preemption cost is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CostModel {
    /// Lyra's choice: each job contributes `1 / (number of servers hosting
    /// it)` — the "sum of job's server fraction" column of Table 1.
    ServerFraction,
    /// Each job contributes the fraction of its GPUs on this server — the
    /// "sum of job's GPU fraction" column of Table 1, shown to mis-rank
    /// server 5 in the example.
    GpuFraction,
    /// Each job contributes 1 — the naive "# running jobs" column of
    /// Table 1 (the plain 0-1 knapsack value).
    JobCount,
}

/// A job's cluster-wide footprint, as needed for cost computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobFootprint {
    /// Job identity.
    pub id: JobId,
    /// Number of distinct servers hosting at least one of its workers
    /// (including servers outside the reclaim candidate set).
    pub total_servers: u32,
    /// Total GPUs the job occupies cluster-wide.
    pub total_gpus: u32,
}

/// A reclaim-candidate (on-loan) server and the jobs it hosts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReclaimServerView {
    /// Server identity.
    pub id: ServerId,
    /// Total GPUs installed.
    pub total_gpus: u32,
    /// `(job, GPUs that job occupies here)` for every job with ≥1 worker on
    /// this server.
    pub jobs: Vec<(JobId, u32)>,
}

impl ReclaimServerView {
    fn is_empty(&self, alive: &HashSet<JobId>) -> bool {
        self.jobs.iter().all(|(j, _)| !alive.contains(j))
    }
}

/// One reclaiming request from the orchestrator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReclaimRequest {
    /// Candidate on-loan servers (only these can be returned).
    pub servers: Vec<ReclaimServerView>,
    /// Footprints of every job appearing in `servers`.
    pub jobs: Vec<JobFootprint>,
    /// Number of servers the inference cluster wants back (`N_R`).
    pub need: usize,
}

impl ReclaimRequest {
    fn footprints(&self) -> HashMap<JobId, JobFootprint> {
        self.jobs.iter().map(|f| (f.id, *f)).collect()
    }

    /// Validates internal consistency; useful when assembling requests from
    /// external state.
    ///
    /// Returns an error string describing the first inconsistency found:
    /// a duplicate candidate server, a job listed twice on one server, a
    /// job on a server without a footprint, or per-server GPU usage
    /// exceeding the server size. Duplicates matter because the greedy
    /// loop indexes candidates by id and sums per-entry costs — a repeated
    /// entry would double-count a job's preemption cost and a repeated
    /// server could be "returned" twice toward the demand.
    pub fn validate(&self) -> Result<(), String> {
        let fp = self.footprints();
        let mut seen_servers: HashSet<ServerId> = HashSet::with_capacity(self.servers.len());
        for s in &self.servers {
            if !seen_servers.insert(s.id) {
                return Err(format!("{} appears twice among the candidates", s.id));
            }
            let mut used = 0;
            let mut seen_jobs: HashSet<JobId> = HashSet::with_capacity(s.jobs.len());
            for &(j, g) in &s.jobs {
                if !seen_jobs.insert(j) {
                    return Err(format!("{j} listed more than once on {}", s.id));
                }
                if !fp.contains_key(&j) {
                    return Err(format!("{j} on {} has no footprint", s.id));
                }
                used += g;
            }
            if used > s.total_gpus {
                return Err(format!(
                    "{} hosts {used} GPUs of jobs but has only {}",
                    s.id, s.total_gpus
                ));
            }
        }
        Ok(())
    }
}

/// Result of a reclaiming decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReclaimOutcome {
    /// Servers to hand back, in selection order.
    pub returned: Vec<ServerId>,
    /// Jobs that must be preempted.
    pub preempted: Vec<JobId>,
    /// GPUs vacated beyond the reclaiming demand (`need` × server size):
    /// idle GPUs on returned servers plus GPUs the preempted jobs held on
    /// servers that were *not* returned. This is the paper's "collateral
    /// damage" numerator (§7.3).
    pub collateral_gpus: u32,
    /// How many of the `need` servers could not be provided (candidates
    /// exhausted).
    pub shortfall: usize,
}

/// Per-server preemption cost under a [`CostModel`], considering only
/// still-alive jobs.
///
/// For the server-fraction model the denominator is capped at the
/// *remaining demand*: vacating more servers than the inference cluster
/// asked for is pure collateral, so a job spanning five servers is no
/// cheaper than a single-server job when only one server is needed. With
/// `need_left ≥ span` this reduces to the paper's `1/servers(j)`.
fn server_cost(
    server: &ReclaimServerView,
    alive: &HashSet<JobId>,
    footprints: &HashMap<JobId, JobFootprint>,
    model: CostModel,
    need_left: usize,
) -> f64 {
    server
        .jobs
        .iter()
        .filter(|(j, _)| alive.contains(j))
        .map(|&(j, gpus_here)| {
            let fp = &footprints[&j];
            match model {
                CostModel::ServerFraction => {
                    let useful = fp.total_servers.min(need_left.max(1) as u32).max(1);
                    1.0 / f64::from(useful)
                }
                CostModel::GpuFraction => f64::from(gpus_here) / f64::from(fp.total_gpus.max(1)),
                CostModel::JobCount => 1.0,
            }
        })
        .sum()
}

/// Computes Table 1's cost columns for a request — exposed for the `tab1`
/// experiment and tests.
///
/// The server-fraction column reports the paper's *uncapped* `1/servers(j)`
/// (Table 1 has no notion of remaining demand). The decision path still
/// uses the demand-capped cost — see [`reclaim_servers`] — so a request
/// whose `need` is smaller than a job's span shows the paper's number here
/// while the greedy loop ranks by the capped one.
pub fn cost_table(request: &ReclaimRequest) -> Vec<(ServerId, f64, f64, f64)> {
    let fp = request.footprints();
    let alive: HashSet<JobId> = fp.keys().copied().collect();
    request
        .servers
        .iter()
        .map(|s| {
            (
                s.id,
                server_cost(s, &alive, &fp, CostModel::JobCount, request.need),
                server_cost(s, &alive, &fp, CostModel::GpuFraction, request.need),
                server_cost(s, &alive, &fp, CostModel::ServerFraction, usize::MAX),
            )
        })
        .collect()
}

/// Collateral damage of returning `server` now: GPUs its alive jobs hold on
/// servers that will *not* be handed back as a result — i.e. non-candidate
/// servers, and candidate servers that do not become empty when this
/// server's jobs are preempted. Candidate servers that cascade-empty count
/// toward the reclaiming demand, so freeing them is not damage.
fn collateral_of(
    server: &ReclaimServerView,
    candidates: &[&ReclaimServerView],
    alive: &HashSet<JobId>,
    footprints: &HashMap<JobId, JobFootprint>,
) -> u32 {
    let preempt: HashSet<JobId> = server
        .jobs
        .iter()
        .filter(|(j, _)| alive.contains(j))
        .map(|(j, _)| *j)
        .collect();
    let mut on_candidates: HashMap<JobId, u32> = HashMap::new();
    let mut damage = 0;
    for t in candidates {
        let freed: u32 = t
            .jobs
            .iter()
            .filter(|(j, _)| preempt.contains(j))
            .map(|(_, g)| g)
            .sum();
        for &(j, g) in &t.jobs {
            if preempt.contains(&j) {
                *on_candidates.entry(j).or_insert(0) += g;
            }
        }
        if t.id == server.id || freed == 0 {
            continue;
        }
        let becomes_empty = t
            .jobs
            .iter()
            .all(|(j, _)| !alive.contains(j) || preempt.contains(j));
        if !becomes_empty {
            damage += freed;
        }
    }
    // GPUs held on servers outside the candidate set are always damage.
    for j in &preempt {
        let total = footprints.get(j).map_or(0, |f| f.total_gpus);
        damage += total.saturating_sub(on_candidates.get(j).copied().unwrap_or(0));
    }
    damage
}

/// Shared greedy loop: repeatedly take all empty candidates for free, then
/// apply `pick` to choose the next non-empty server to clear.
fn greedy_reclaim<F>(request: &ReclaimRequest, mut pick: F) -> ReclaimOutcome
where
    F: FnMut(&[&ReclaimServerView], &HashSet<JobId>, &HashMap<JobId, JobFootprint>, usize) -> usize,
{
    let _timing = lyra_obs::span::span("core.reclaim");
    let footprints = request.footprints();
    let mut alive: HashSet<JobId> = footprints.keys().copied().collect();
    let mut returned: Vec<ServerId> = Vec::new();
    let mut returned_set: HashSet<ServerId> = HashSet::new();
    let mut preempted: Vec<JobId> = Vec::new();

    while returned.len() < request.need {
        // Empty candidates (originally idle or emptied by cascades) are
        // free to return.
        if let Some(s) = request
            .servers
            .iter()
            .find(|s| !returned_set.contains(&s.id) && s.is_empty(&alive))
        {
            returned.push(s.id);
            returned_set.insert(s.id);
            continue;
        }
        let candidates: Vec<&ReclaimServerView> = request
            .servers
            .iter()
            .filter(|s| !returned_set.contains(&s.id))
            .collect();
        if candidates.is_empty() {
            break;
        }
        let need_left = request.need - returned.len();
        let idx = pick(&candidates, &alive, &footprints, need_left);
        let victim = candidates[idx];
        for &(j, _) in &victim.jobs {
            if alive.remove(&j) {
                preempted.push(j);
            }
        }
        returned.push(victim.id);
        returned_set.insert(victim.id);
    }

    let collateral = collateral_damage(request, &returned, &preempted);
    let shortfall = request.need.saturating_sub(returned.len());
    ReclaimOutcome {
        returned,
        preempted,
        collateral_gpus: collateral,
        shortfall,
    }
}

/// Total GPUs vacated in excess of the demand actually served, for a given
/// returned-server set and preempted-job set.
fn collateral_damage(request: &ReclaimRequest, returned: &[ServerId], preempted: &[JobId]) -> u32 {
    let returned_set: HashSet<ServerId> = returned.iter().copied().collect();
    let preempted_set: HashSet<JobId> = preempted.iter().copied().collect();
    let footprints = request.footprints();
    // Idle GPUs on returned servers (capacity handed back unused by jobs,
    // beyond what was actually occupied) do not count as damage — the
    // demand is in servers. Damage is progress-bearing GPUs freed outside
    // returned servers.
    let mut on_returned: HashMap<JobId, u32> = HashMap::new();
    for s in &request.servers {
        if returned_set.contains(&s.id) {
            for &(j, g) in &s.jobs {
                *on_returned.entry(j).or_insert(0) += g;
            }
        }
    }
    preempted_set
        .iter()
        .map(|j| {
            let total = footprints.get(j).map_or(0, |f| f.total_gpus);
            total.saturating_sub(on_returned.get(j).copied().unwrap_or(0))
        })
        .sum()
}

/// Lyra's reclaiming heuristic (§4) under a configurable [`CostModel`].
///
/// Greedily returns the server with the lowest preemption cost, breaking
/// ties by collateral damage, preempts its jobs everywhere, updates costs
/// and repeats until `need` servers are vacated (cascade-emptied servers are
/// returned for free).
///
/// # Examples
///
/// ```
/// use lyra_core::reclaim::*;
/// use lyra_core::{JobId, ServerId};
/// // Figure 5: job a spans servers 1&2; reclaiming both costs 1 job.
/// let req = ReclaimRequest {
///     servers: vec![
///         ReclaimServerView { id: ServerId(1), total_gpus: 8, jobs: vec![(JobId(0), 8)] },
///         ReclaimServerView { id: ServerId(2), total_gpus: 8, jobs: vec![(JobId(0), 8)] },
///         ReclaimServerView { id: ServerId(3), total_gpus: 8, jobs: vec![(JobId(1), 8)] },
///     ],
///     jobs: vec![
///         JobFootprint { id: JobId(0), total_servers: 2, total_gpus: 16 },
///         JobFootprint { id: JobId(1), total_servers: 1, total_gpus: 8 },
///     ],
///     need: 2,
/// };
/// let out = reclaim_servers(&req, CostModel::ServerFraction);
/// assert_eq!(out.preempted.len(), 1); // only job a
/// ```
pub fn reclaim_servers(request: &ReclaimRequest, model: CostModel) -> ReclaimOutcome {
    greedy_reclaim(request, |candidates, alive, footprints, need_left| {
        let auditing = lyra_obs::audit::is_enabled();
        let mut audit_costs = Vec::new();
        let mut best = 0;
        let mut best_cost = f64::INFINITY;
        let mut best_coll = u32::MAX;
        for (i, s) in candidates.iter().enumerate() {
            let cost = server_cost(s, alive, footprints, model, need_left);
            let coll = collateral_of(s, candidates, alive, footprints);
            if auditing && audit_costs.len() < AUDIT_CANDIDATES {
                audit_costs.push(lyra_obs::audit::ReclaimCandidate {
                    server: s.id.0,
                    cost,
                    collateral_gpus: coll,
                });
            }
            if cost < best_cost - 1e-12 || ((cost - best_cost).abs() <= 1e-12 && coll < best_coll) {
                best = i;
                best_cost = cost;
                best_coll = coll;
            }
        }
        if auditing {
            audit_choice(candidates, alive, need_left, best, audit_costs);
        }
        best
    })
}

/// Cap on candidate costs kept per reclaim audit record.
const AUDIT_CANDIDATES: usize = 16;

/// Records a [`lyra_obs::audit::AuditRecord::ReclaimChoice`] for the pick
/// of `best` out of `candidates` — shared by every comparator so each
/// reclaiming decision leaves an audit trail regardless of policy.
fn audit_choice(
    candidates: &[&ReclaimServerView],
    alive: &HashSet<JobId>,
    need_left: usize,
    best: usize,
    audit_costs: Vec<lyra_obs::audit::ReclaimCandidate>,
) {
    let victim = candidates[best];
    let preempted: Vec<u64> = victim
        .jobs
        .iter()
        .filter(|(j, _)| alive.contains(j))
        .map(|(j, _)| j.0)
        .collect();
    let cause = (!preempted.is_empty()).then_some(lyra_obs::DelayCause::ReclaimPreemption);
    lyra_obs::audit::record(lyra_obs::audit::AuditRecord::ReclaimChoice {
        need: need_left as u32,
        candidates: audit_costs,
        chosen: victim.id.0,
        preempted,
        cause,
    });
}

/// Random reclaiming comparator (§7.1): clears uniformly random candidate
/// servers until the demand is met.
///
/// Audited like every other comparator, but with an empty candidate-cost
/// list: a uniform draw has no meaningful per-candidate cost.
pub fn reclaim_random<R: Rng>(request: &ReclaimRequest, rng: &mut R) -> ReclaimOutcome {
    greedy_reclaim(request, |candidates, alive, _, need_left| {
        let best = rng.gen_range(0..candidates.len());
        if lyra_obs::audit::is_enabled() {
            audit_choice(candidates, alive, need_left, best, Vec::new());
        }
        best
    })
}

/// Smallest-(job)-count-first comparator (§7.1): clears the candidate
/// hosting the fewest running jobs first.
///
/// Audit records carry each candidate's alive-job count as its cost, plus
/// the collateral damage its choice would incur, mirroring
/// [`reclaim_servers`]'s records.
pub fn reclaim_scf(request: &ReclaimRequest) -> ReclaimOutcome {
    greedy_reclaim(request, |candidates, alive, footprints, need_left| {
        let auditing = lyra_obs::audit::is_enabled();
        let mut audit_costs = Vec::new();
        let mut best = 0;
        let mut best_key = (usize::MAX, u32::MAX);
        for (i, s) in candidates.iter().enumerate() {
            let count = s.jobs.iter().filter(|(j, _)| alive.contains(j)).count();
            if auditing && audit_costs.len() < AUDIT_CANDIDATES {
                audit_costs.push(lyra_obs::audit::ReclaimCandidate {
                    server: s.id.0,
                    cost: count as f64,
                    collateral_gpus: collateral_of(s, candidates, alive, footprints),
                });
            }
            // Plain job-count ranking with an id tie-break — SCF is blind
            // to job spans, which is exactly what Lyra's cost fixes.
            if (count, s.id.0) < best_key {
                best = i;
                best_key = (count, s.id.0);
            }
        }
        if auditing {
            audit_choice(candidates, alive, need_left, best, audit_costs);
        }
        best
    })
}

/// Incremental reclaiming engine: produces exactly [`reclaim_servers`]'s
/// outcome, in far less time on large requests.
///
/// The from-scratch greedy loop recomputes every candidate's preemption
/// cost *and* collateral damage on every iteration — O(candidates² ×
/// job entries) per request, the dominant term in `core.reclaim`'s
/// profile. This engine memoises both across the loop's iterations:
///
/// * **Empty sweep** — alive-empty candidates sit in an ordered queue (a
///   [`BTreeSet`] of candidate positions), so taking the first free
///   server is O(log C) amortised instead of a scan per returned server.
/// * **Cost memo** — a candidate's cost changes only when one of its jobs
///   is preempted, or (server-fraction model) when the remaining demand
///   drops below the span of a job it hosts (the demand cap in the cost
///   definition). Both are tracked — preemptions through a job→hosts
///   inverted index, the cap through the largest alive span seen at
///   memoisation time — so the per-iteration scan reads cached costs.
/// * **Collateral memo** — collateral damage only *matters* on cost ties
///   (and in audit records), so it is computed lazily and cached. A
///   preemption cascade invalidates the servers hosting a preempted job
///   and, two hops out, every candidate sharing a still-alive job with
///   one of those servers (their `becomes_empty` status may flip).
///   Shrinkage of the candidate list alone never changes a cached value:
///   a returned server was either alive-empty (its entries can never
///   intersect a preemption set) or the victim itself, whose jobs just
///   died — covered by the first hop.
///
/// A strict priority heap deliberately does **not** replace the selection
/// scan: the from-scratch pick is an order-dependent epsilon chain
/// (`1e-12` cost ties broken by collateral, scanned in candidate order),
/// which is not a total order, so heap ordering could flip decisions.
/// With memoised costs the linear scan is no longer the bottleneck. The
/// `incremental_engine_matches_from_scratch` proptest pins both paths to
/// identical outcomes over randomised request sequences.
///
/// Scratch buffers persist across calls (cleared, never shrunk); the
/// engine holds no cross-request state.
#[derive(Debug, Clone, Default)]
pub struct ReclaimEngine {
    /// Job id → dense index into the per-job arrays below.
    job_index: HashMap<JobId, u32>,
    /// Per job: footprint span, footprint GPUs, liveness.
    fp_span: Vec<u32>,
    fp_gpus: Vec<u32>,
    alive: Vec<bool>,
    /// CSR inverted index: job → hosting candidate positions, one entry
    /// per `(server, job)` list entry so duplicates behave as they would
    /// from scratch.
    host_start: Vec<u32>,
    host_list: Vec<u32>,
    cursor: Vec<u32>,
    /// Per candidate: alive-entry count and the two memos.
    alive_entries: Vec<u32>,
    cost_cache: Vec<f64>,
    cost_valid: Vec<bool>,
    max_alive_span: Vec<u32>,
    coll_cache: Vec<u32>,
    coll_valid: Vec<bool>,
    returned_mask: Vec<bool>,
    /// Alive-empty, not-yet-returned candidates in candidate order.
    empty_queue: BTreeSet<u32>,
    /// Scratch for collateral computation and cascade invalidation.
    preempt_mark: Vec<bool>,
    preempt_list: Vec<u32>,
    on_candidates: Vec<u32>,
    touched: Vec<u32>,
    touched_mark: Vec<bool>,
}

impl ReclaimEngine {
    /// An engine with empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds the per-request indices, reusing buffer capacity.
    fn setup(&mut self, request: &ReclaimRequest) {
        let n = request.servers.len();
        let nj = request.jobs.len();
        self.job_index.clear();
        self.fp_span.clear();
        self.fp_gpus.clear();
        for (k, f) in request.jobs.iter().enumerate() {
            // On duplicate footprints the last one wins, matching
            // `ReclaimRequest::footprints`.
            self.job_index.insert(f.id, k as u32);
            self.fp_span.push(f.total_servers);
            self.fp_gpus.push(f.total_gpus);
        }
        self.alive.clear();
        self.alive.resize(nj, true);
        self.host_start.clear();
        self.host_start.resize(nj + 1, 0);
        for s in &request.servers {
            for (j, _) in &s.jobs {
                if let Some(&k) = self.job_index.get(j) {
                    self.host_start[k as usize + 1] += 1;
                }
            }
        }
        for k in 0..nj {
            self.host_start[k + 1] += self.host_start[k];
        }
        self.host_list.clear();
        self.host_list.resize(self.host_start[nj] as usize, 0);
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.host_start[..nj]);
        self.alive_entries.clear();
        self.empty_queue.clear();
        for (p, s) in request.servers.iter().enumerate() {
            let mut entries = 0u32;
            for (j, _) in &s.jobs {
                if let Some(&k) = self.job_index.get(j) {
                    self.host_list[self.cursor[k as usize] as usize] = p as u32;
                    self.cursor[k as usize] += 1;
                    entries += 1;
                }
            }
            self.alive_entries.push(entries);
            if entries == 0 {
                self.empty_queue.insert(p as u32);
            }
        }
        self.cost_cache.clear();
        self.cost_cache.resize(n, 0.0);
        self.cost_valid.clear();
        self.cost_valid.resize(n, false);
        self.max_alive_span.clear();
        self.max_alive_span.resize(n, 0);
        self.coll_cache.clear();
        self.coll_cache.resize(n, 0);
        self.coll_valid.clear();
        self.coll_valid.resize(n, false);
        self.returned_mask.clear();
        self.returned_mask.resize(n, false);
        self.preempt_mark.clear();
        self.preempt_mark.resize(nj, false);
        self.on_candidates.clear();
        self.on_candidates.resize(nj, 0);
        self.touched.clear();
        self.touched_mark.clear();
        self.touched_mark.resize(n, false);
    }

    /// Memoised [`server_cost`] of candidate `p`, entry order preserved so
    /// the floating-point sum is bit-identical to the from-scratch path.
    fn cost_of(&mut self, p: usize, request: &ReclaimRequest, model: CostModel, need_left: usize) -> f64 {
        let span_ok = match model {
            // A memo that was taken with every alive span within the
            // demand cap holds uncapped 1/span terms, which stay correct
            // exactly while the (strictly decreasing) demand still covers
            // the largest alive span.
            CostModel::ServerFraction => (self.max_alive_span[p] as usize) <= need_left,
            CostModel::GpuFraction | CostModel::JobCount => true,
        };
        if self.cost_valid[p] && span_ok {
            return self.cost_cache[p];
        }
        let mut sum = 0.0;
        let mut max_span = 0u32;
        for &(j, gpus_here) in &request.servers[p].jobs {
            let Some(&k) = self.job_index.get(&j) else {
                continue;
            };
            let k = k as usize;
            if !self.alive[k] {
                continue;
            }
            let span = self.fp_span[k];
            max_span = max_span.max(span);
            sum += match model {
                CostModel::ServerFraction => {
                    let useful = span.min(need_left.max(1) as u32).max(1);
                    1.0 / f64::from(useful)
                }
                CostModel::GpuFraction => {
                    f64::from(gpus_here) / f64::from(self.fp_gpus[k].max(1))
                }
                CostModel::JobCount => 1.0,
            };
        }
        self.cost_cache[p] = sum;
        self.cost_valid[p] = true;
        self.max_alive_span[p] = max_span;
        sum
    }

    /// Memoised [`collateral_of`] for candidate `p` against the current
    /// non-returned candidate list.
    fn coll_of(&mut self, p: usize, request: &ReclaimRequest) -> u32 {
        if self.coll_valid[p] {
            return self.coll_cache[p];
        }
        self.preempt_list.clear();
        for &(j, _) in &request.servers[p].jobs {
            let Some(&k) = self.job_index.get(&j) else {
                continue;
            };
            if self.alive[k as usize] && !self.preempt_mark[k as usize] {
                self.preempt_mark[k as usize] = true;
                self.preempt_list.push(k);
            }
        }
        let mut damage = 0u32;
        for (q, t) in request.servers.iter().enumerate() {
            if self.returned_mask[q] {
                continue;
            }
            let mut freed = 0u32;
            let mut becomes_empty = true;
            for &(j, g) in &t.jobs {
                let Some(&k) = self.job_index.get(&j) else {
                    continue;
                };
                let k = k as usize;
                if self.preempt_mark[k] {
                    freed += g;
                    self.on_candidates[k] += g;
                } else if self.alive[k] {
                    becomes_empty = false;
                }
            }
            if q == p || freed == 0 {
                continue;
            }
            if !becomes_empty {
                damage += freed;
            }
        }
        for &k in &self.preempt_list {
            let k = k as usize;
            damage += self.fp_gpus[k].saturating_sub(self.on_candidates[k]);
            self.on_candidates[k] = 0;
            self.preempt_mark[k] = false;
        }
        self.coll_cache[p] = damage;
        self.coll_valid[p] = true;
        damage
    }

    /// Incremental counterpart of [`reclaim_servers`]: identical returned
    /// set, preempted set, collateral and shortfall — and identical audit
    /// records when auditing is enabled.
    pub fn reclaim(&mut self, request: &ReclaimRequest, model: CostModel) -> ReclaimOutcome {
        let _timing = lyra_obs::span::span("core.reclaim");
        self.setup(request);
        let auditing = lyra_obs::audit::is_enabled();
        let n = request.servers.len();
        let mut returned: Vec<ServerId> = Vec::new();
        let mut preempted: Vec<JobId> = Vec::new();

        while returned.len() < request.need {
            // First-in-order alive-empty candidate is free to return.
            if let Some(&p) = self.empty_queue.iter().next() {
                self.empty_queue.remove(&p);
                self.returned_mask[p as usize] = true;
                returned.push(request.servers[p as usize].id);
                continue;
            }
            let need_left = request.need - returned.len();
            let mut best = usize::MAX;
            let mut best_cost = f64::INFINITY;
            let mut best_coll = u32::MAX;
            let mut best_coll_known = false;
            let mut audit_costs = Vec::new();
            for p in 0..n {
                if self.returned_mask[p] {
                    continue;
                }
                let cost = self.cost_of(p, request, model, need_left);
                if auditing && audit_costs.len() < AUDIT_CANDIDATES {
                    audit_costs.push(lyra_obs::audit::ReclaimCandidate {
                        server: request.servers[p].id.0,
                        cost,
                        collateral_gpus: self.coll_of(p, request),
                    });
                }
                if cost < best_cost - 1e-12 {
                    best = p;
                    best_cost = cost;
                    best_coll_known = false;
                } else if (cost - best_cost).abs() <= 1e-12 {
                    // Collateral is only fetched on ties — lazily for the
                    // incumbent too, since within an iteration the value
                    // is scan-order independent.
                    if !best_coll_known {
                        best_coll = self.coll_of(best, request);
                        best_coll_known = true;
                    }
                    let coll = self.coll_of(p, request);
                    if coll < best_coll {
                        best = p;
                        best_cost = cost;
                        best_coll = coll;
                    }
                }
            }
            if best == usize::MAX {
                break; // Candidates exhausted.
            }
            let victim_p = best;
            if auditing {
                let victim = &request.servers[victim_p];
                let pre: Vec<u64> = victim
                    .jobs
                    .iter()
                    .filter(|(j, _)| {
                        self.job_index.get(j).is_some_and(|&k| self.alive[k as usize])
                    })
                    .map(|(j, _)| j.0)
                    .collect();
                let cause =
                    (!pre.is_empty()).then_some(lyra_obs::DelayCause::ReclaimPreemption);
                lyra_obs::audit::record(lyra_obs::audit::AuditRecord::ReclaimChoice {
                    need: need_left as u32,
                    candidates: audit_costs,
                    chosen: victim.id.0,
                    preempted: pre,
                    cause,
                });
            }
            self.returned_mask[victim_p] = true;
            self.touched.clear();
            for &(j, _) in &request.servers[victim_p].jobs {
                let Some(&k) = self.job_index.get(&j) else {
                    continue;
                };
                let ku = k as usize;
                if !self.alive[ku] {
                    continue;
                }
                self.alive[ku] = false;
                preempted.push(j);
                for idx in self.host_start[ku] as usize..self.host_start[ku + 1] as usize {
                    let p = self.host_list[idx];
                    let pu = p as usize;
                    self.alive_entries[pu] -= 1;
                    self.cost_valid[pu] = false;
                    self.coll_valid[pu] = false;
                    if !self.touched_mark[pu] {
                        self.touched_mark[pu] = true;
                        self.touched.push(p);
                    }
                    if self.alive_entries[pu] == 0 && !self.returned_mask[pu] {
                        self.empty_queue.insert(p);
                    }
                }
            }
            returned.push(request.servers[victim_p].id);
            // Two-hop collateral invalidation: a candidate sharing a
            // still-alive job with a cascade-touched server may see that
            // server's `becomes_empty` status flip.
            for i in 0..self.touched.len() {
                let p = self.touched[i];
                self.touched_mark[p as usize] = false;
                for &(j, _) in &request.servers[p as usize].jobs {
                    let Some(&k) = self.job_index.get(&j) else {
                        continue;
                    };
                    let ku = k as usize;
                    if !self.alive[ku] {
                        continue;
                    }
                    for idx in self.host_start[ku] as usize..self.host_start[ku + 1] as usize {
                        self.coll_valid[self.host_list[idx] as usize] = false;
                    }
                }
            }
        }

        let collateral = collateral_damage(request, &returned, &preempted);
        let shortfall = request.need.saturating_sub(returned.len());
        ReclaimOutcome {
            returned,
            preempted,
            collateral_gpus: collateral,
            shortfall,
        }
    }
}

/// Exhaustive optimal reclaiming: the minimum-preemption solution, found by
/// searching job subsets in increasing size (§7.3's optimality study).
///
/// Exponential in the number of distinct jobs — use only on small instances
/// (the paper reports the optimum's running time is ~420 000× Lyra's).
/// Returns `None` when even preempting every job cannot vacate `need`
/// servers.
pub fn reclaim_exhaustive_optimal(request: &ReclaimRequest) -> Option<ReclaimOutcome> {
    let footprints = request.footprints();
    let job_ids: Vec<JobId> = {
        let mut v: Vec<JobId> = footprints.keys().copied().collect();
        v.sort_unstable();
        v
    };

    let vacated_by = |preempt: &HashSet<JobId>| -> Vec<ServerId> {
        request
            .servers
            .iter()
            .filter(|s| s.jobs.iter().all(|(j, _)| preempt.contains(j)))
            .map(|s| s.id)
            .collect()
    };

    /// Enumerates all `k`-subsets of `job_ids[start..]` extending `combo`,
    /// keeping the candidate with the least collateral damage.
    #[allow(clippy::too_many_arguments)]
    fn enumerate(
        request: &ReclaimRequest,
        job_ids: &[JobId],
        k: usize,
        start: usize,
        combo: &mut Vec<JobId>,
        vacated_by: &dyn Fn(&HashSet<JobId>) -> Vec<ServerId>,
        best: &mut Option<ReclaimOutcome>,
    ) {
        if combo.len() == k {
            let preempt: HashSet<JobId> = combo.iter().copied().collect();
            let vacated = vacated_by(&preempt);
            if vacated.len() >= request.need {
                let returned: Vec<ServerId> = vacated.into_iter().take(request.need).collect();
                let mut preempted = combo.clone();
                preempted.sort_unstable();
                let collateral = collateral_damage(request, &returned, &preempted);
                let cand = ReclaimOutcome {
                    returned,
                    preempted,
                    collateral_gpus: collateral,
                    shortfall: 0,
                };
                let better = match best {
                    None => true,
                    Some(b) => cand.collateral_gpus < b.collateral_gpus,
                };
                if better {
                    *best = Some(cand);
                }
            }
            return;
        }
        for i in start..job_ids.len() {
            combo.push(job_ids[i]);
            enumerate(request, job_ids, k, i + 1, combo, vacated_by, best);
            combo.pop();
        }
    }

    // Smallest preemption count first: the first k with any feasible
    // solution is optimal in the primary objective.
    for k in 0..=job_ids.len() {
        let mut best: Option<ReclaimOutcome> = None;
        let mut combo = Vec::with_capacity(k);
        enumerate(request, &job_ids, k, 0, &mut combo, &vacated_by, &mut best);
        if best.is_some() {
            return best;
        }
    }
    None
}

/// Shuffles candidate order — a helper for randomised experiments that want
/// per-trial candidate permutations without touching the request itself.
pub fn shuffled_candidates<R: Rng>(request: &ReclaimRequest, rng: &mut R) -> ReclaimRequest {
    let mut r = request.clone();
    r.servers.shuffle(rng);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds Figure 5 / Table 1's example: six 8-GPU candidate servers.
    ///
    /// * servers 1, 2: job `a` spans both (half on each) — cost columns
    ///   (1, 0.5, 0.5);
    /// * server 3: job `b` fills it alone — (1, 1, 1);
    /// * server 4: 80 % of job `c`'s GPUs; `c`'s remainder sits on a
    ///   server outside the candidate set — (1, 0.8, 0.5);
    /// * server 5: jobs `d` and `e`, each holding 20 % of their GPUs here
    ///   (both span a second, non-candidate server) — (2, 0.4, 1);
    /// * server 6: 80 % of job `f`'s GPUs, remainder outside — (1, 0.8,
    ///   0.5).
    fn figure5() -> ReclaimRequest {
        let a = JobId(0);
        let b = JobId(1);
        let c = JobId(2);
        let d = JobId(3);
        let e = JobId(4);
        let f = JobId(5);
        ReclaimRequest {
            servers: vec![
                ReclaimServerView {
                    id: ServerId(1),
                    total_gpus: 8,
                    jobs: vec![(a, 4)],
                },
                ReclaimServerView {
                    id: ServerId(2),
                    total_gpus: 8,
                    jobs: vec![(a, 4)],
                },
                ReclaimServerView {
                    id: ServerId(3),
                    total_gpus: 8,
                    jobs: vec![(b, 8)],
                },
                ReclaimServerView {
                    id: ServerId(4),
                    total_gpus: 8,
                    jobs: vec![(c, 8)],
                },
                ReclaimServerView {
                    id: ServerId(5),
                    total_gpus: 8,
                    jobs: vec![(d, 2), (e, 2)],
                },
                ReclaimServerView {
                    id: ServerId(6),
                    total_gpus: 8,
                    jobs: vec![(f, 8)],
                },
            ],
            jobs: vec![
                JobFootprint {
                    id: a,
                    total_servers: 2,
                    total_gpus: 8,
                },
                JobFootprint {
                    id: b,
                    total_servers: 1,
                    total_gpus: 8,
                },
                JobFootprint {
                    id: c,
                    total_servers: 2,
                    total_gpus: 10,
                },
                JobFootprint {
                    id: d,
                    total_servers: 2,
                    total_gpus: 10,
                },
                JobFootprint {
                    id: e,
                    total_servers: 2,
                    total_gpus: 10,
                },
                JobFootprint {
                    id: f,
                    total_servers: 2,
                    total_gpus: 10,
                },
            ],
            need: 2,
        }
    }

    #[test]
    fn request_validation() {
        assert!(figure5().validate().is_ok());
        let mut bad = figure5();
        bad.servers[0].jobs.push((JobId(99), 1));
        assert!(bad.validate().is_err());
        let mut over = figure5();
        over.servers[0].jobs[0].1 = 100;
        assert!(over.validate().is_err());
    }

    #[test]
    fn validation_rejects_duplicate_candidate_servers() {
        let mut dup = figure5();
        let twin = dup.servers[2].clone();
        dup.servers.push(twin);
        let err = dup.validate().expect_err("duplicate ServerId must fail");
        assert!(err.contains("twice"), "unexpected message: {err}");
    }

    #[test]
    fn validation_rejects_duplicate_job_entries_on_one_server() {
        let mut dup = figure5();
        // Job d listed twice on server 5 — the cost sum would double-count.
        dup.servers[4].jobs.push((JobId(3), 1));
        let err = dup.validate().expect_err("duplicate job entry must fail");
        assert!(err.contains("more than once"), "unexpected message: {err}");
    }

    #[test]
    fn table1_cost_columns_match_paper() {
        let table = cost_table(&figure5());
        // (id, job-count, gpu-fraction, server-fraction)
        let by_id: HashMap<u32, (f64, f64, f64)> = table
            .into_iter()
            .map(|(id, a, b, c)| (id.0, (a, b, c)))
            .collect();
        // Server 1: 1 job, 0.5 GPU fraction, 0.5 server fraction.
        assert_eq!(by_id[&1], (1.0, 0.5, 0.5));
        assert_eq!(by_id[&2], (1.0, 0.5, 0.5));
        assert_eq!(by_id[&3], (1.0, 1.0, 1.0));
        // Server 4: 1 job, 0.8 GPU fraction, 0.5 server fraction.
        assert_eq!(by_id[&4], (1.0, 0.8, 0.5));
        // Server 5: 2 jobs, 0.2 + 0.2 GPU fraction, 0.5 + 0.5 server
        // fraction.
        let (n, g, s) = by_id[&5];
        assert_eq!(n, 2.0);
        assert!((g - 0.4).abs() < 1e-12);
        assert_eq!(s, 1.0);
        assert_eq!(by_id[&6], (1.0, 0.8, 0.5));
    }

    #[test]
    fn cost_table_reports_uncapped_server_fraction() {
        // Table 1 has no notion of remaining demand: even when `need` is
        // smaller than a job's span the reported column must stay the
        // paper's 1/servers(j). Jobs a, c, f span 2 servers > need = 1.
        let mut req = figure5();
        req.need = 1;
        let by_id: HashMap<u32, f64> = cost_table(&req)
            .into_iter()
            .map(|(id, _, _, sf)| (id.0, sf))
            .collect();
        assert_eq!(by_id[&1], 0.5);
        assert_eq!(by_id[&2], 0.5);
        assert_eq!(by_id[&3], 1.0);
        assert_eq!(by_id[&4], 0.5);
        assert_eq!(by_id[&5], 1.0);
        assert_eq!(by_id[&6], 0.5);
    }

    #[test]
    fn need_capped_cost_levels_wide_spans_in_decisions() {
        // Decision-path cost: at need_left == 1, vacating a 5-server job
        // is pure collateral beyond the first server, so it must cost as
        // much as a single-server job (satellite of the demand cap).
        let req = figure5();
        let fp = req.footprints();
        let alive: HashSet<JobId> = fp.keys().copied().collect();
        let mut wide = req.servers[0].clone(); // hosts job a
        wide.jobs = vec![(JobId(0), 4)];
        let mut fp_wide = fp.clone();
        fp_wide.get_mut(&JobId(0)).unwrap().total_servers = 5;
        let wide_cost = server_cost(&wide, &alive, &fp_wide, CostModel::ServerFraction, 1);
        let single_cost =
            server_cost(&req.servers[2], &alive, &fp, CostModel::ServerFraction, 1);
        assert_eq!(wide_cost, 1.0);
        assert_eq!(single_cost, 1.0);
        // With enough demand the paper's uncapped fraction returns.
        let uncapped = server_cost(&wide, &alive, &fp_wide, CostModel::ServerFraction, 5);
        assert!((uncapped - 0.2).abs() < 1e-12);
    }

    #[test]
    fn lyra_reclaims_spanning_job_pair() {
        // Figure 5's optimum for N_R = 2: servers 1 & 2, one preemption.
        let out = reclaim_servers(&figure5(), CostModel::ServerFraction);
        assert_eq!(out.preempted.len(), 1);
        assert_eq!(out.preempted[0], JobId(0));
        let mut returned: Vec<u32> = out.returned.iter().map(|s| s.0).collect();
        returned.sort_unstable();
        assert_eq!(returned, vec![1, 2]);
        assert_eq!(out.collateral_gpus, 0);
        assert_eq!(out.shortfall, 0);
    }

    #[test]
    fn gpu_fraction_cost_makes_the_papers_mistake() {
        // Table 1's point: GPU-fraction cost ranks server 5 cheapest, which
        // preempts two jobs.
        let out = reclaim_servers(&figure5(), CostModel::GpuFraction);
        assert!(out.preempted.len() >= 2);
    }

    #[test]
    fn optimal_matches_lyra_on_figure5() {
        let opt = reclaim_exhaustive_optimal(&figure5()).expect("feasible");
        assert_eq!(opt.preempted.len(), 1);
        assert_eq!(opt.preempted[0], JobId(0));
    }

    #[test]
    fn scf_counts_jobs_not_fractions() {
        // SCF ranks every single-job server equally; with the secondary
        // tie-break it still avoids server 5 (two jobs).
        let out = reclaim_scf(&figure5());
        assert!(!out.returned.contains(&ServerId(5)));
    }

    #[test]
    fn random_is_seed_deterministic() {
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let a = reclaim_random(&figure5(), &mut rng1);
        let b = reclaim_random(&figure5(), &mut rng2);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_servers_are_free() {
        let mut req = figure5();
        req.servers.push(ReclaimServerView {
            id: ServerId(7),
            total_gpus: 8,
            jobs: vec![],
        });
        req.need = 1;
        let out = reclaim_servers(&req, CostModel::ServerFraction);
        assert_eq!(out.returned, vec![ServerId(7)]);
        assert!(out.preempted.is_empty());
    }

    #[test]
    fn shortfall_reported_when_candidates_exhausted() {
        let mut req = figure5();
        req.need = 10;
        let out = reclaim_servers(&req, CostModel::ServerFraction);
        assert_eq!(out.returned.len(), 6);
        assert_eq!(out.shortfall, 4);
        assert_eq!(out.preempted.len(), 6);
    }

    #[test]
    fn cascade_emptied_servers_count_toward_demand() {
        // Preempting job a (spanning servers 1 and 2) vacates both with a
        // single preemption.
        let mut req = figure5();
        req.servers.retain(|s| s.id.0 == 1 || s.id.0 == 2);
        req.jobs.retain(|f| f.id == JobId(0));
        req.need = 2;
        let out = reclaim_servers(&req, CostModel::ServerFraction);
        assert_eq!(out.preempted, vec![JobId(0)]);
        assert_eq!(out.returned.len(), 2);
        assert_eq!(out.collateral_gpus, 0);
    }

    #[test]
    fn collateral_counts_gpus_outside_returned_servers() {
        // Only server 4 is a candidate; job c also holds 2 GPUs on server 6
        // (not a candidate here) → collateral = 2.
        let req = ReclaimRequest {
            servers: vec![ReclaimServerView {
                id: ServerId(4),
                total_gpus: 8,
                jobs: vec![(JobId(2), 8)],
            }],
            jobs: vec![JobFootprint {
                id: JobId(2),
                total_servers: 2,
                total_gpus: 10,
            }],
            need: 1,
        };
        let out = reclaim_servers(&req, CostModel::ServerFraction);
        assert_eq!(out.preempted, vec![JobId(2)]);
        assert_eq!(out.collateral_gpus, 2);
    }

    #[test]
    fn optimal_none_when_infeasible() {
        let req = ReclaimRequest {
            servers: vec![],
            jobs: vec![],
            need: 1,
        };
        assert!(reclaim_exhaustive_optimal(&req).is_none());
    }

    #[test]
    fn optimal_zero_preemptions_when_idle_servers_suffice() {
        let req = ReclaimRequest {
            servers: vec![
                ReclaimServerView {
                    id: ServerId(0),
                    total_gpus: 8,
                    jobs: vec![],
                },
                ReclaimServerView {
                    id: ServerId(1),
                    total_gpus: 8,
                    jobs: vec![(JobId(0), 8)],
                },
            ],
            jobs: vec![JobFootprint {
                id: JobId(0),
                total_servers: 1,
                total_gpus: 8,
            }],
            need: 1,
        };
        let opt = reclaim_exhaustive_optimal(&req).unwrap();
        assert!(opt.preempted.is_empty());
        assert_eq!(opt.returned, vec![ServerId(0)]);
    }

    #[test]
    fn collateral_cascade_emptied_candidate_is_demand_not_damage() {
        // Job a spans candidate servers 1 and 2. Preempting it from
        // server 1 cascade-empties server 2: those GPUs count toward the
        // demand, not the damage, and nothing sits outside the candidate
        // set — zero collateral.
        let req = figure5();
        let fp = req.footprints();
        let alive: HashSet<JobId> = fp.keys().copied().collect();
        let candidates: Vec<&ReclaimServerView> = req.servers.iter().collect();
        assert_eq!(collateral_of(&req.servers[0], &candidates, &alive, &fp), 0);
    }

    #[test]
    fn collateral_counts_surviving_candidate_and_remainder_gpus() {
        // Job x spans candidates 1 and 2; candidate 2 also hosts job y,
        // so preempting x leaves server 2 non-empty → x's 3 GPUs there
        // are damage. Job x's 2 GPUs on a non-candidate server are always
        // damage.
        let x = JobId(0);
        let y = JobId(1);
        let servers = vec![
            ReclaimServerView {
                id: ServerId(1),
                total_gpus: 8,
                jobs: vec![(x, 4)],
            },
            ReclaimServerView {
                id: ServerId(2),
                total_gpus: 8,
                jobs: vec![(x, 3), (y, 2)],
            },
        ];
        let req = ReclaimRequest {
            servers,
            jobs: vec![
                JobFootprint {
                    id: x,
                    total_servers: 3,
                    total_gpus: 9, // 4 + 3 on candidates, 2 outside
                },
                JobFootprint {
                    id: y,
                    total_servers: 1,
                    total_gpus: 2,
                },
            ],
            need: 1,
        };
        req.validate().unwrap();
        let fp = req.footprints();
        let alive: HashSet<JobId> = fp.keys().copied().collect();
        let candidates: Vec<&ReclaimServerView> = req.servers.iter().collect();
        // Returning server 1: 3 GPUs stranded on surviving candidate 2,
        // plus 2 GPUs on the non-candidate remainder.
        assert_eq!(collateral_of(&req.servers[0], &candidates, &alive, &fp), 5);
        // Returning server 2 preempts x and y, which cascade-empties
        // candidate 1 (demand, not damage); only x's 2 GPUs outside the
        // candidate set remain as damage.
        assert_eq!(collateral_of(&req.servers[1], &candidates, &alive, &fp), 2);
    }

    /// Random valid instance for differential tests: up to `max_servers`
    /// candidates (some possibly idle), jobs spanning 1–3 of them, plus
    /// off-candidate remainders folded into the footprints.
    fn random_request(rng: &mut StdRng, max_servers: usize) -> ReclaimRequest {
        use rand::Rng;
        let n_servers = rng.gen_range(2..=max_servers);
        let n_jobs = rng.gen_range(1..=(n_servers + 2));
        let mut servers: Vec<ReclaimServerView> = (0..n_servers)
            .map(|i| ReclaimServerView {
                id: ServerId(i as u32),
                total_gpus: 8,
                jobs: vec![],
            })
            .collect();
        let mut jobs = Vec::new();
        for j in 0..n_jobs {
            let span = rng.gen_range(1..=3usize).min(n_servers);
            let mut hosts = HashSet::new();
            while hosts.len() < span {
                hosts.insert(rng.gen_range(0..n_servers));
            }
            let mut placed = 0;
            for &h in &hosts {
                let free: u32 = 8 - servers[h].jobs.iter().map(|(_, g)| g).sum::<u32>();
                if free == 0 {
                    continue;
                }
                let g = rng.gen_range(1..=free.min(4));
                servers[h].jobs.push((JobId(j as u64), g));
                placed += g;
            }
            if placed > 0 {
                let hosts_used = servers
                    .iter()
                    .filter(|s| s.jobs.iter().any(|(id, _)| *id == JobId(j as u64)))
                    .count() as u32;
                // Sometimes the job also runs outside the candidate set.
                let outside = rng.gen_range(0..=4u32);
                let outside_hosts = u32::from(outside > 0);
                jobs.push(JobFootprint {
                    id: JobId(j as u64),
                    total_servers: hosts_used + outside_hosts,
                    total_gpus: placed + outside,
                });
            }
        }
        let need = rng.gen_range(1..=n_servers);
        let req = ReclaimRequest {
            servers,
            jobs,
            need,
        };
        req.validate().unwrap();
        req
    }

    #[test]
    fn incremental_engine_matches_from_scratch() {
        // One engine (scratch reused) across a random request sequence,
        // against the from-scratch greedy, for every cost model. Outcomes
        // must be identical field for field: returned order, preempted
        // order, collateral, shortfall.
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let mut engine = ReclaimEngine::new();
        for trial in 0..400 {
            let req = random_request(&mut rng, 12);
            for model in [
                CostModel::ServerFraction,
                CostModel::GpuFraction,
                CostModel::JobCount,
            ] {
                let scratch = reclaim_servers(&req, model);
                let inc = engine.reclaim(&req, model);
                assert_eq!(
                    inc, scratch,
                    "trial {trial} {model:?}: engine diverged on {req:?}"
                );
            }
        }
    }

    #[test]
    fn incremental_engine_handles_degenerate_requests() {
        let mut engine = ReclaimEngine::new();
        // Zero need.
        let mut req = figure5();
        req.need = 0;
        assert_eq!(
            engine.reclaim(&req, CostModel::ServerFraction),
            reclaim_servers(&req, CostModel::ServerFraction)
        );
        // No candidates.
        let empty = ReclaimRequest {
            servers: vec![],
            jobs: vec![],
            need: 3,
        };
        assert_eq!(
            engine.reclaim(&empty, CostModel::ServerFraction),
            reclaim_servers(&empty, CostModel::ServerFraction)
        );
        // Demand exceeding candidates (shortfall path) and idle servers.
        let mut big = figure5();
        big.servers.push(ReclaimServerView {
            id: ServerId(7),
            total_gpus: 8,
            jobs: vec![],
        });
        big.need = 10;
        assert_eq!(
            engine.reclaim(&big, CostModel::ServerFraction),
            reclaim_servers(&big, CostModel::ServerFraction)
        );
        // Job listed in footprints but hosted nowhere, and an entry whose
        // job has no footprint (the greedy treats it as not alive).
        let mut odd = figure5();
        odd.jobs.push(JobFootprint {
            id: JobId(77),
            total_servers: 0,
            total_gpus: 0,
        });
        odd.servers[2].jobs.push((JobId(88), 1));
        assert_eq!(
            engine.reclaim(&odd, CostModel::ServerFraction),
            reclaim_servers(&odd, CostModel::ServerFraction)
        );
    }

    #[test]
    fn heuristic_never_beats_optimal_on_random_instances() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..50 {
            // Random small instance: ≤6 servers, ≤6 jobs spanning 1-2.
            let n_servers = rng.gen_range(2..=6usize);
            let n_jobs = rng.gen_range(1..=6usize);
            let mut servers: Vec<ReclaimServerView> = (0..n_servers)
                .map(|i| ReclaimServerView {
                    id: ServerId(i as u32),
                    total_gpus: 8,
                    jobs: vec![],
                })
                .collect();
            let mut jobs = Vec::new();
            for j in 0..n_jobs {
                let span = rng.gen_range(1..=2usize).min(n_servers);
                let mut placed = 0;
                let mut hosts = HashSet::new();
                while hosts.len() < span {
                    hosts.insert(rng.gen_range(0..n_servers));
                }
                for &h in &hosts {
                    let free: u32 = 8 - servers[h].jobs.iter().map(|(_, g)| g).sum::<u32>();
                    if free == 0 {
                        continue;
                    }
                    let g = rng.gen_range(1..=free.min(4));
                    servers[h].jobs.push((JobId(j as u64), g));
                    placed += g;
                }
                if placed > 0 {
                    let hosts_used = servers
                        .iter()
                        .filter(|s| s.jobs.iter().any(|(id, _)| *id == JobId(j as u64)))
                        .count() as u32;
                    jobs.push(JobFootprint {
                        id: JobId(j as u64),
                        total_servers: hosts_used,
                        total_gpus: placed,
                    });
                }
            }
            let need = rng.gen_range(1..=n_servers);
            let req = ReclaimRequest {
                servers,
                jobs,
                need,
            };
            req.validate().unwrap();
            let lyra = reclaim_servers(&req, CostModel::ServerFraction);
            if lyra.shortfall > 0 {
                continue;
            }
            let opt = reclaim_exhaustive_optimal(&req)
                .unwrap_or_else(|| panic!("trial {trial}: optimal infeasible"));
            assert!(
                lyra.preempted.len() >= opt.preempted.len(),
                "trial {trial}: heuristic beat the optimum?"
            );
        }
    }
}
