//! Exact analysis of the two-elastic-job allocation problem (§5.1).
//!
//! The paper analyses "the outcome of different allocation strategies" for
//! two elastic jobs sharing a cluster but omits the derivation. This
//! module provides it computationally: an exact JCT evaluation of any
//! initial split under the paper's dynamics — both jobs run, and when the
//! first finishes "the other is immediately allocated more resources as
//! much as possible" (Table 3) — plus an exhaustive optimiser over all
//! feasible initial splits. The worked examples of Tables 2–4 fall out as
//! test cases, and a property test checks the two-phase heuristic against
//! this exact optimum on random instances.

use crate::job::JobSpec;
use serde::{Deserialize, Serialize};

/// Outcome of one initial allocation `(w_a, w_b)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoJobOutcome {
    /// Initial workers of job A and job B.
    pub initial: (u32, u32),
    /// Completion times of A and B.
    pub jcts: (f64, f64),
    /// Arithmetic mean of the two completion times.
    pub avg_jct: f64,
}

/// Evaluates one initial split exactly under §5.1's dynamics.
///
/// Both jobs start at `t = 0` with the given worker counts; when the
/// first completes, the survivor immediately scales to the most workers
/// the freed capacity and its own `w_max` allow. Returns `None` when the
/// split is infeasible (violates a scaling range or the GPU capacity).
///
/// # Examples
///
/// ```
/// use lyra_core::analysis::evaluate_two_job_split;
/// use lyra_core::JobSpec;
/// // Table 3's "favour B" row: A=2, B=6 → JCTs 63.33 and 20.
/// let a = JobSpec::elastic(0, 0.0, 2, 6, 1, 50.0);
/// let b = JobSpec::elastic(1, 0.0, 2, 6, 1, 20.0);
/// let out = evaluate_two_job_split(&a, &b, 8, 2, 6).unwrap();
/// assert!((out.jcts.0 - 63.333).abs() < 0.01);
/// assert!((out.jcts.1 - 20.0).abs() < 1e-9);
/// assert!((out.avg_jct - 41.667).abs() < 0.01);
/// ```
pub fn evaluate_two_job_split(
    a: &JobSpec,
    b: &JobSpec,
    capacity_gpus: u32,
    w_a: u32,
    w_b: u32,
) -> Option<TwoJobOutcome> {
    let feasible = |spec: &JobSpec, w: u32| w >= spec.w_min() && w <= spec.w_max();
    if !feasible(a, w_a) || !feasible(b, w_b) {
        return None;
    }
    if w_a * a.gpus_per_worker + w_b * b.gpus_per_worker > capacity_gpus {
        return None;
    }
    let t_a = a.running_time(w_a);
    let t_b = b.running_time(w_b);
    // The survivor regrows once the first job finishes.
    let (first_done, jct_a, jct_b) = if t_a <= t_b {
        (t_a, t_a, None)
    } else {
        (t_b, f64::NAN, Some(t_b))
    };
    let (survivor, w_now, done_at_switch) = if t_a <= t_b {
        (b, w_b, first_done)
    } else {
        (a, w_a, first_done)
    };
    // Remaining work of the survivor at the switch point.
    let work_done = survivor.service_rate(w_now, 1.0) * done_at_switch;
    let work_left = (survivor.work() - work_done).max(0.0);
    let w_grown = survivor
        .w_max()
        .min(capacity_gpus / survivor.gpus_per_worker.max(1))
        .max(survivor.w_min());
    let rate = survivor.service_rate(w_grown, 1.0);
    let tail = if rate > 0.0 {
        work_left / rate
    } else {
        f64::INFINITY
    };
    let survivor_jct = first_done + tail;
    let (jct_a, jct_b) = if t_a <= t_b {
        (jct_a, survivor_jct)
    } else {
        (survivor_jct, jct_b.expect("B finished first"))
    };
    Some(TwoJobOutcome {
        initial: (w_a, w_b),
        jcts: (jct_a, jct_b),
        avg_jct: (jct_a + jct_b) / 2.0,
    })
}

/// Exhaustively finds the initial split minimising average JCT.
///
/// Returns `None` when no feasible split exists (the base demands do not
/// fit together).
pub fn optimal_two_job_allocation(
    a: &JobSpec,
    b: &JobSpec,
    capacity_gpus: u32,
) -> Option<TwoJobOutcome> {
    let mut best: Option<TwoJobOutcome> = None;
    for w_a in a.w_min()..=a.w_max() {
        for w_b in b.w_min()..=b.w_max() {
            if let Some(out) = evaluate_two_job_split(a, b, capacity_gpus, w_a, w_b) {
                if best.is_none_or(|cur| out.avg_jct < cur.avg_jct) {
                    best = Some(out);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{PendingJobView, PoolKind, ServerView, Snapshot};
    use crate::{two_phase_allocate, AllocationConfig, GpuType};
    use proptest::prelude::*;

    fn table2_jobs() -> (JobSpec, JobSpec) {
        (
            JobSpec::elastic(0, 0.0, 2, 6, 1, 50.0),
            JobSpec::elastic(1, 0.0, 2, 6, 1, 20.0),
        )
    }

    #[test]
    fn table3_rows_reproduce_exactly() {
        let (a, b) = table2_jobs();
        let favour_a = evaluate_two_job_split(&a, &b, 8, 6, 2).unwrap();
        assert!((favour_a.jcts.0 - 50.0).abs() < 1e-9);
        assert!((favour_a.jcts.1 - 53.333).abs() < 0.01);
        assert!((favour_a.avg_jct - 51.667).abs() < 0.01);

        let favour_b = evaluate_two_job_split(&a, &b, 8, 2, 6).unwrap();
        assert!((favour_b.avg_jct - 41.667).abs() < 0.01);

        let equal = evaluate_two_job_split(&a, &b, 8, 4, 4).unwrap();
        assert!((equal.jcts.0 - 60.0).abs() < 1e-9);
        assert!((equal.jcts.1 - 30.0).abs() < 1e-9);
        assert!((equal.avg_jct - 45.0).abs() < 1e-9);
    }

    #[test]
    fn table2_optimum_favours_the_short_job() {
        // §5.1: "the optimal allocation is indeed to first satisfy job B".
        let (a, b) = table2_jobs();
        let opt = optimal_two_job_allocation(&a, &b, 8).unwrap();
        assert_eq!(opt.initial, (2, 6));
        assert!((opt.avg_jct - 41.667).abs() < 0.01);
    }

    #[test]
    fn table4_counterexample_favours_the_long_job() {
        // Table 4: A [2,3] 100 s, B [2,6] 20 s, eight workers total (the
        // table's capacity is in workers; Figure 6 adds the GPU dimension
        // separately). SJF would favour B, but favouring A is optimal
        // (62 vs 63.33).
        let a = JobSpec::elastic(0, 0.0, 2, 3, 1, 100.0);
        let b = JobSpec::elastic(1, 0.0, 2, 6, 1, 20.0);
        // Favour A: A takes its maximum 3, B the remaining 5.
        let favour_a = evaluate_two_job_split(&a, &b, 8, 3, 5).unwrap();
        assert!((favour_a.jcts.0 - 100.0).abs() < 1e-9);
        assert!((favour_a.jcts.1 - 24.0).abs() < 1e-9);
        assert!((favour_a.avg_jct - 62.0).abs() < 1e-9);

        // Favour B: B takes 6, A runs at base then grows when B ends.
        let favour_b = evaluate_two_job_split(&a, &b, 8, 2, 6).unwrap();
        assert!((favour_b.jcts.0 - 106.667).abs() < 0.01);
        assert!((favour_b.jcts.1 - 20.0).abs() < 1e-9);
        assert!((favour_b.avg_jct - 63.333).abs() < 0.01);

        let opt = optimal_two_job_allocation(&a, &b, 8).unwrap();
        assert_eq!(opt.initial, (3, 5), "prioritise A despite longer runtime");
        assert!((opt.avg_jct - 62.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_splits_are_rejected() {
        let (a, b) = table2_jobs();
        assert!(
            evaluate_two_job_split(&a, &b, 8, 1, 2).is_none(),
            "below range"
        );
        assert!(
            evaluate_two_job_split(&a, &b, 8, 7, 2).is_none(),
            "above range"
        );
        assert!(
            evaluate_two_job_split(&a, &b, 8, 6, 6).is_none(),
            "over capacity"
        );
        assert!(
            optimal_two_job_allocation(&a, &b, 3).is_none(),
            "bases do not fit"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The two-phase heuristic's initial split is never worse than the
        /// *worst* feasible split and its value is bracketed by the exact
        /// enumeration — a sanity corridor for the heuristic.
        #[test]
        fn two_phase_lands_inside_the_exact_corridor(
            min_a in 1u32..3, range_a in 1u32..4, rt_a in 10.0f64..200.0,
            min_b in 1u32..3, range_b in 1u32..4, rt_b in 10.0f64..200.0,
        ) {
            let a = JobSpec::elastic(0, 0.0, min_a, min_a + range_a, 1, rt_a);
            let b = JobSpec::elastic(1, 0.0, min_b, min_b + range_b, 1, rt_b);
            let capacity = (a.w_max() + b.w_max()).max(8) - 2;
            let Some(best) = optimal_two_job_allocation(&a, &b, capacity) else {
                return Ok(());
            };
            // Worst feasible split.
            let mut worst = best.avg_jct;
            for wa in a.w_min()..=a.w_max() {
                for wb in b.w_min()..=b.w_max() {
                    if let Some(o) = evaluate_two_job_split(&a, &b, capacity, wa, wb) {
                        worst = worst.max(o.avg_jct);
                    }
                }
            }
            // The heuristic's split, evaluated exactly.
            let snapshot = Snapshot {
                time_s: 0.0,
                servers: vec![ServerView::idle(0, PoolKind::Training, GpuType::V100, capacity)],
                pending: vec![
                    PendingJobView::fresh(a.clone()),
                    PendingJobView::fresh(b.clone()),
                ],
                running: vec![],
            };
            let out = two_phase_allocate(&snapshot, AllocationConfig::default());
            prop_assume!(out.launches.len() == 2);
            let wa = out.launches.iter().find(|(id, _)| id.0 == 0).unwrap().1;
            let wb = out.launches.iter().find(|(id, _)| id.0 == 1).unwrap().1;
            let heuristic = evaluate_two_job_split(&a, &b, capacity, wa, wb)
                .expect("heuristic split is feasible");
            prop_assert!(heuristic.avg_jct >= best.avg_jct - 1e-9);
            prop_assert!(heuristic.avg_jct <= worst + 1e-9);
        }
    }
}
